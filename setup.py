"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments that lack the
``wheel`` package (PEP-517 editable installs require it). Metadata lives in
``pyproject.toml``; this file only names what setuptools needs for the
legacy develop path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
