"""repro — Quantum-based SMT solving for the theory of strings.

A full-stack reproduction of "Quantum-Based SMT Solving for String Theory"
(Casey, Santos, Hennessee — HPDC'25): string constraints are lowered to
QUBO matrices (:mod:`repro.core`) and solved by a (simulated) quantum
annealer (:mod:`repro.anneal`, :mod:`repro.hardware`), with an SMT-LIB
front end and classical baselines (:mod:`repro.smt`).

Quickstart
----------
>>> from repro import StringQuboSolver, StringReversal
>>> solver = StringQuboSolver(seed=0)
>>> solver.solve(StringReversal("hello")).output
'olleh'

See ``examples/quickstart.py`` for the guided tour and DESIGN.md for the
system inventory.
"""

from repro.core import (
    ConstraintPipeline,
    PalindromeGeneration,
    PipelineResult,
    PipelineStage,
    RegexMatching,
    SolveResult,
    StringConcatenation,
    StringEquality,
    StringIncludes,
    StringLength,
    StringCharAt,
    StringNotEquals,
    StringPrefixOf,
    StringQuboSolver,
    StringReplace,
    StringReplaceAll,
    StringReversal,
    StringSubstr,
    StringSuffixOf,
    SubstringIndexOf,
    SubstringMatching,
)
from repro.anneal import (
    ExactSolver,
    PathIntegralAnnealer,
    SampleSet,
    SimulatedAnnealingSampler,
)
from repro.hardware import EmbeddingComposite, SimulatedQPU
from repro.qubo import BinaryQuadraticModel, QuboModel
from repro.smt import ClassicalStringSolver, QuantumSMTSolver
from repro.service import (
    BatchSolver,
    CompileCache,
    MetricsRegistry,
    RetryExhaustedError,
    RetryPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "BatchSolver",
    "BinaryQuadraticModel",
    "ClassicalStringSolver",
    "CompileCache",
    "ConstraintPipeline",
    "MetricsRegistry",
    "RetryExhaustedError",
    "RetryPolicy",
    "EmbeddingComposite",
    "ExactSolver",
    "PalindromeGeneration",
    "PathIntegralAnnealer",
    "PipelineResult",
    "PipelineStage",
    "QuantumSMTSolver",
    "QuboModel",
    "RegexMatching",
    "SampleSet",
    "SimulatedAnnealingSampler",
    "SimulatedQPU",
    "SolveResult",
    "StringConcatenation",
    "StringEquality",
    "StringIncludes",
    "StringLength",
    "StringCharAt",
    "StringNotEquals",
    "StringPrefixOf",
    "StringQuboSolver",
    "StringReplace",
    "StringReplaceAll",
    "StringReversal",
    "StringSubstr",
    "StringSuffixOf",
    "SubstringIndexOf",
    "SubstringMatching",
    "__version__",
]
