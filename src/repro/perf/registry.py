"""Declarative benchmark registry for the perf harness.

A :class:`BenchmarkSpec` is a *description* of one tracked workload —
which kind of pipeline it exercises, over which §4 operator family, at
which length / read count, under which fixed seed — never a closure. The
runner (:mod:`repro.perf.runner`) materializes specs into workloads, so
two ``python -m repro.perf run`` invocations rebuild byte-identical
instances and the committed ``BENCH_*.json`` baselines stay comparable
across machines and PRs.

Suites map 1:1 onto the committed baseline files:

* ``core``    → ``BENCH_core.json``    — end-to-end SMT solves
  (compile → embed → anneal → decode) over the paper's §4.1–§4.12
  operator families, via :class:`~repro.smt.solver.QuantumSMTSolver` and
  :class:`~repro.core.solver.StringQuboSolver`;
* ``sparse``  → ``BENCH_sparse.json``  — the raw annealing kernels
  (dense vs CSR coupling forms) from PR 2;
* ``service`` → ``BENCH_service.json`` — the batch service layer
  (compile cache cold/warm, serial/threaded executors);
* ``incremental`` → ``BENCH_incremental.json`` — push/pop session
  replay and the warm-vs-cold re-check pair backing the incremental
  architecture's headline claim (warm re-check after a single-assert
  change beats the from-scratch solve on the same instance);
* ``refine`` → ``BENCH_refine.json`` — the CEGAR refinement loop
  (:class:`~repro.smt.refine.RefinementEngine`) vs the direct pipeline
  on the same domain-prunable instances; the refined specs' fingerprints
  record per-anneal QUBO variable counts and pruned-bit totals, so the
  strictly-fewer-variables claim is baseline-checked, not just asserted;
* ``opt`` → ``BENCH_opt.json`` — weighted MaxSMT over a pinned Closest
  String instance through :class:`~repro.opt.driver.AnytimeOptimizer`:
  a single direct solve vs the anytime driver at the **same total read
  budget**, plus the exhaustive-finish path on a small instance. The
  fingerprints pin objective, bounds and status, so the committed
  baseline certifies the anytime driver matches-or-beats the direct
  solve's audited objective at equal budget.

Workload kinds understood by the runner:

* ``smt``    — generate ``instances`` scripts with
  :class:`~repro.smt.generator.InstanceGenerator` (fixed ``gen_seed``,
  explicit ``ops``), then ``check_sat`` each with a metrics-wired
  :class:`QuantumSMTSolver`;
* ``solve``  — one :mod:`repro.core` formulation driven by
  :class:`StringQuboSolver`;
* ``kernel`` — one :class:`SimulatedAnnealingSampler` call on a prebuilt
  model with a forced ``coupling_mode``;
* ``batch``  — one :class:`~repro.service.batch.BatchSolver` batch over a
  script workload, cold or warm compile cache;
* ``session`` — incremental :class:`~repro.smt.session.SolverSession`
  workloads (``mode`` selects replay / cold_recheck / warm_recheck);
* ``refine`` — one SMT-LIB script solved end to end with
  :class:`QuantumSMTSolver` under an explicit ``strategy``
  (direct or refine); refined runs fingerprint the
  :class:`~repro.smt.refine.RefineStats` counters;
* ``opt`` — one weighted Closest String instance (hard length pin plus
  per-reference/per-position ``assert-soft`` blocks) optimized with
  :class:`~repro.opt.driver.AnytimeOptimizer` under explicit restart /
  read / exhaustive-bits budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, List, Mapping, Tuple

__all__ = [
    "SUITES",
    "BenchmarkSpec",
    "register",
    "get_spec",
    "all_specs",
    "suite_specs",
    "baseline_filename",
]

#: The tracked suites, one committed baseline file each.
SUITES: Tuple[str, ...] = (
    "core", "sparse", "service", "tile", "incremental", "refine", "opt",
)

#: Workload kinds the runner knows how to build.
KINDS: Tuple[str, ...] = (
    "smt", "solve", "kernel", "batch", "session", "refine", "opt",
)


def baseline_filename(suite: str) -> str:
    """The committed baseline file for *suite* (``BENCH_<suite>.json``)."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; choose from {list(SUITES)}")
    return f"BENCH_{suite}.json"


@dataclass(frozen=True)
class BenchmarkSpec:
    """One tracked benchmark: a named, fully-parameterized workload.

    Parameters
    ----------
    name:
        Unique id, also the key in the baseline file (convention:
        ``<family>-<scale>``; e.g. ``palindrome-n12``).
    suite:
        One of :data:`SUITES`.
    kind:
        One of :data:`KINDS`; selects the workload builder.
    params:
        Keyword parameters of the workload builder. Must be
        JSON-serializable — they are echoed into the baseline file so a
        drifted spec is visible in the diff.
    description:
        One line for ``python -m repro.perf list``.
    tolerance:
        Relative tolerance band of the regression gate for this benchmark
        (0.5 = alarm beyond 1.5x the baseline median). Scaled up by the
        CI smoke job via ``--tolerance-scale``.
    """

    name: str
    suite: str
    kind: str
    params: Mapping[str, object] = field(default_factory=dict)
    description: str = ""
    tolerance: float = 0.5

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("benchmark name must be non-empty")
        if self.suite not in SUITES:
            raise ValueError(
                f"unknown suite {self.suite!r}; choose from {list(SUITES)}"
            )
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown kind {self.kind!r}; choose from {list(KINDS)}"
            )
        if self.tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {self.tolerance}")
        # Freeze params against accidental mutation after registration.
        object.__setattr__(self, "params", MappingProxyType(dict(self.params)))

    @property
    def baseline_file(self) -> str:
        return baseline_filename(self.suite)


_REGISTRY: Dict[str, BenchmarkSpec] = {}


def register(spec: BenchmarkSpec) -> BenchmarkSpec:
    """Add *spec* to the registry (unique names enforced)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark name {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> BenchmarkSpec:
    """Look one spec up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown benchmark {name!r}; registered: {known}") from None


def all_specs() -> List[BenchmarkSpec]:
    """Every registered spec, in registration order."""
    return list(_REGISTRY.values())


def suite_specs(suite: str) -> List[BenchmarkSpec]:
    """The specs of one suite, in registration order."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; choose from {list(SUITES)}")
    return [spec for spec in _REGISTRY.values() if spec.suite == suite]


# --------------------------------------------------------------------- #
# the tracked workloads
# --------------------------------------------------------------------- #
# Budgets are deliberately small (one repeat ≈ 0.1–2 s): the harness
# tracks *relative* drift of every pipeline stage, not absolute records,
# and CI runs the whole registry at --repeats 2.

# core — end-to-end solves over the §4 operator families ----------------

register(BenchmarkSpec(
    name="smt-legacy-mix",
    suite="core",
    kind="smt",
    params={
        "ops": None, "instances": 4, "min_length": 3, "max_length": 6,
        "max_constraints": 3, "gen_seed": 7, "solver_seed": 2025,
        "num_reads": 32, "num_sweeps": 300,
    },
    description="4 generated instances, historical five-op mix, n<=6",
))

register(BenchmarkSpec(
    name="smt-ops-all",
    suite="core",
    kind="smt",
    params={
        "ops": "all", "instances": 6, "min_length": 3, "max_length": 4,
        "max_constraints": 2, "gen_seed": 11, "solver_seed": 2025,
        "num_reads": 48, "num_sweeps": 300,
    },
    description="6 generated instances across all 15 §4.1–§4.12 ops, n<=4",
))

register(BenchmarkSpec(
    name="equality-n16",
    suite="core",
    kind="solve",
    params={
        "formulation": "equality", "target": "quantum strings!",
        "num_reads": 48, "num_sweeps": 400, "seed": 116,
    },
    description="§4.1 equality generation at n=16 (112 qubits, diagonal QUBO)",
))

register(BenchmarkSpec(
    name="palindrome-n12",
    suite="core",
    kind="solve",
    params={
        "formulation": "palindrome", "length": 12,
        "num_reads": 48, "num_sweeps": 400, "seed": 212,
    },
    description="§4.10-style palindrome generation at n=12 (coupled QUBO)",
))

register(BenchmarkSpec(
    name="regex-abcd-n8",
    suite="core",
    kind="solve",
    params={
        "formulation": "regex", "pattern": "a[bc]+d", "length": 8,
        "num_reads": 32, "num_sweeps": 300, "seed": 8,
    },
    description="§4.11 regex membership a[bc]+d at n=8",
))

# sparse — raw kernel throughput, dense vs CSR --------------------------

register(BenchmarkSpec(
    name="kernel-dense-n32",
    suite="sparse",
    kind="kernel",
    params={
        "length": 32, "coupling_mode": "dense",
        "num_reads": 64, "num_sweeps": 100, "seed": 2025,
    },
    description="dense coupling kernel, palindrome n=32 (224 vars)",
))

register(BenchmarkSpec(
    name="kernel-sparse-n32",
    suite="sparse",
    kind="kernel",
    params={
        "length": 32, "coupling_mode": "sparse",
        "num_reads": 64, "num_sweeps": 100, "seed": 2025,
    },
    description="CSR coupling kernel, palindrome n=32 (224 vars)",
))

register(BenchmarkSpec(
    name="kernel-dense-n64",
    suite="sparse",
    kind="kernel",
    params={
        "length": 64, "coupling_mode": "dense",
        "num_reads": 64, "num_sweeps": 80, "seed": 2025,
    },
    description="dense coupling kernel at the auto-select point (448 vars)",
))

register(BenchmarkSpec(
    name="kernel-sparse-n64",
    suite="sparse",
    kind="kernel",
    params={
        "length": 64, "coupling_mode": "sparse",
        "num_reads": 64, "num_sweeps": 80, "seed": 2025,
    },
    description="CSR coupling kernel at the auto-select point (448 vars)",
))

# service — batch layer: compile cache and worker pool ------------------

_BATCH_WORDS = ("hi", "ok", "go", "no", "up")

register(BenchmarkSpec(
    name="batch-cold-serial",
    suite="service",
    kind="batch",
    params={
        "words": _BATCH_WORDS, "repeats": 2, "executor": "serial",
        "num_workers": 1, "warm": False, "num_reads": 32,
        "num_sweeps": 300, "seed": 2025,
    },
    description="10-item batch, serial executor, cold compile cache",
))

register(BenchmarkSpec(
    name="batch-warm-serial",
    suite="service",
    kind="batch",
    params={
        "words": _BATCH_WORDS, "repeats": 2, "executor": "serial",
        "num_workers": 1, "warm": True, "num_reads": 32,
        "num_sweeps": 300, "seed": 2025,
    },
    description="10-item batch, serial executor, warm compile cache",
))

register(BenchmarkSpec(
    name="batch-cold-thread4",
    suite="service",
    kind="batch",
    params={
        "words": _BATCH_WORDS, "repeats": 2, "executor": "thread",
        "num_workers": 4, "warm": False, "num_reads": 32,
        "num_sweeps": 300, "seed": 2025,
    },
    description="10-item batch, 4-thread executor, cold compile cache",
))

# tile — block-diagonal fused batching vs the per-item reference --------
# Same 16 queued small instances and total read budget either way; the
# fused spec solves them as one block-diagonal kernel call per tile.

_TILE_WORDS = ("red", "blue", "lime", "cyan", "gold", "teal", "pink", "onyx")

register(BenchmarkSpec(
    name="tile-serial-16",
    suite="tile",
    kind="batch",
    params={
        "words": _TILE_WORDS, "repeats": 2, "executor": "serial",
        "num_workers": 1, "warm": True, "num_reads": 32,
        "num_sweeps": 200, "seed": 2025,
    },
    description="16-item batch, per-item serial solves (fusion reference)",
))

register(BenchmarkSpec(
    name="tile-fused-16",
    suite="tile",
    kind="batch",
    params={
        "words": _TILE_WORDS, "repeats": 2, "executor": "fused",
        "num_workers": 1, "warm": True, "num_reads": 32,
        "num_sweeps": 200, "seed": 2025, "tile_max": 16,
    },
    description="16-item batch fused block-diagonally (one kernel call/tile)",
))

# incremental — push/pop sessions: replay + warm-vs-cold re-check -------
# The *-recheck pair shares one instance (base equality + one extra
# length assert): the cold spec compiles and anneals base+extra from
# scratch every repeat; the warm spec answers the identical state through
# a primed session (re-push memo hit), which is the incremental
# architecture's fast path. The gate claim is warm ≥ 3× faster than cold.

_RECHECK_INSTANCE = {
    "base": '(declare-const x String)(assert (= x "gold"))',
    "extra": '(assert (= (str.len x) 4))',
    "seed": 2025, "num_reads": 48, "num_sweeps": 400,
}

register(BenchmarkSpec(
    name="incremental",
    suite="incremental",
    kind="session",
    params={
        "mode": "replay", "instances": 3, "queries": 4,
        "min_length": 3, "max_length": 4, "max_constraints": 2,
        "gen_seed": 17, "solver_seed": 2025,
        "num_reads": 32, "num_sweeps": 300,
    },
    description="replay 3 generated push/pop sessions (4 queries each) "
    "through SolverSession",
))

register(BenchmarkSpec(
    name="incremental-cold-recheck",
    suite="incremental",
    kind="session",
    params=dict(_RECHECK_INSTANCE, mode="cold_recheck"),
    description="from-scratch compile+anneal of base+extra after a "
    "single-assert change",
))

register(BenchmarkSpec(
    name="incremental-warm-recheck",
    suite="incremental",
    kind="session",
    params=dict(_RECHECK_INSTANCE, mode="warm_recheck"),
    description="session re-check of the same change "
    "(push/assert/check/pop on warm caches)",
    tolerance=3.0,
))

# refine — CEGAR loop vs the direct pipeline on prunable instances ------
# Each pair shares one script and read budget; the *-cegar spec solves it
# with strategy="refine", whose fingerprint records the per-anneal QUBO
# variable counts and pruned-bit totals (the strictly-fewer-variables
# claim lives in the committed baseline, not in prose).

_REFINE_PIN = {
    "script": '(declare-const x String)'
    '(assert (= (str.len x) 6))'
    '(assert (str.prefixof "qua" x))'
    '(assert (str.suffixof "um" x))'
    '(check-sat)',
    "seed": 2025, "num_reads": 48, "num_sweeps": 300,
}

_REFINE_CHAIN = {
    "script": '(declare-const y String)'
    '(assert (= y "spin"))'
    '(assert (not (= y "spun")))'
    '(check-sat)',
    "seed": 2025, "num_reads": 48, "num_sweeps": 300,
}

register(BenchmarkSpec(
    name="refine-pin-direct",
    suite="refine",
    kind="refine",
    params=dict(_REFINE_PIN, strategy="direct"),
    description="prefix+suffix pinned n=6 instance, direct pipeline "
    "(42-var QUBO, refinement reference)",
))

register(BenchmarkSpec(
    name="refine-pin-cegar",
    suite="refine",
    kind="refine",
    params=dict(_REFINE_PIN, strategy="refine", refine_max_rounds=4),
    description="prefix+suffix pinned n=6 instance through the CEGAR "
    "loop (35 bits clamped, 7-var reduced QUBO)",
))

register(BenchmarkSpec(
    name="refine-chain-direct",
    suite="refine",
    kind="refine",
    params=dict(_REFINE_CHAIN, strategy="direct"),
    description="equality + disequality n=4 instance, direct pipeline",
))

register(BenchmarkSpec(
    name="refine-chain-cegar",
    suite="refine",
    kind="refine",
    params=dict(_REFINE_CHAIN, strategy="refine", refine_max_rounds=4),
    description="equality + disequality n=4 instance through the CEGAR "
    "loop (string prefix fully determined by propagation)",
))

# opt — weighted MaxSMT: anytime driver vs direct solve at equal budget --
# One pinned K=3, L=4 Closest String instance (true optimum 2: majority
# vote "male" violates one soft per contested position). The direct spec
# spends its whole read budget in one cold pass; the anytime spec splits
# the SAME total budget (4 x 16 = 64 reads) across warm restarts. Both
# specs' fingerprints pin the audited objective, so the committed
# baseline is the matches-or-beats-at-equal-budget certificate. The
# exhaustive spec pins the proven-optimal finish on a 14-bit instance.

_OPT_REFS = ("kale", "male", "mole")

register(BenchmarkSpec(
    name="opt-closest-direct",
    suite="opt",
    kind="opt",
    params={
        "references": _OPT_REFS, "max_restarts": 1, "num_reads": 64,
        "num_sweeps": 300, "seed": 2025, "exhaustive_bits": 0,
    },
    description="K=3 L=4 Closest String MaxSMT, one direct solve "
    "(64 reads, annealed 28-var weighted QUBO)",
))

register(BenchmarkSpec(
    name="opt-closest-anytime",
    suite="opt",
    kind="opt",
    params={
        "references": _OPT_REFS, "max_restarts": 4, "num_reads": 16,
        "num_sweeps": 300, "seed": 2025, "exhaustive_bits": 0,
    },
    description="same instance through the anytime driver "
    "(4 warm restarts x 16 reads = the direct spec's budget)",
))

register(BenchmarkSpec(
    name="opt-closest-exhaustive",
    suite="opt",
    kind="opt",
    params={
        "references": ("hi", "ho", "my"), "max_restarts": 1,
        "num_reads": 16, "num_sweeps": 100, "seed": 2025,
        "exhaustive_bits": 16,
    },
    description="K=3 L=2 Closest String finished exhaustively "
    "(14-bit variable, status proven optimal)",
))
