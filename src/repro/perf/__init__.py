"""Performance-regression harness (``repro.perf``).

The ROADMAP's north star is "as fast as the hardware allows"; this
subpackage makes that trajectory *tracked and gated* instead of
anecdotal, in the benchmark-family discipline of the annealer-SAT
literature (fixed instance distributions, repeatable seeds):

* :mod:`~repro.perf.registry` — declarative specs of every tracked
  workload over the paper's §4 operator families (suites ``core``,
  ``sparse``, ``service``, one committed ``BENCH_<suite>.json`` each);
* :mod:`~repro.perf.workloads` — spec → runnable workload with a
  deterministic result fingerprint (same instances, same energies on
  every run; only timings differ);
* :mod:`~repro.perf.runner` — warmup/repeat control with per-stage
  compile/embed/anneal/decode attribution via
  :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.since`;
* :mod:`~repro.perf.stats` — median / MAD / bootstrap-CI statistics and
  the three-gate significance decision;
* :mod:`~repro.perf.baseline` — committed-baseline store and comparator;
* ``python -m repro.perf run|compare|update|list`` — the CLI
  (:mod:`repro.perf.__main__`), non-zero exit on significant regression.
"""

from repro.perf.baseline import (
    ComparisonReport,
    ComparisonRow,
    baseline_path,
    compare_results,
    load_baseline,
    results_to_baseline,
    write_baseline,
)
from repro.perf.registry import (
    SUITES,
    BenchmarkSpec,
    all_specs,
    baseline_filename,
    get_spec,
    register,
    suite_specs,
)
from repro.perf.runner import (
    BenchmarkResult,
    WorkloadDeterminismError,
    run_spec,
    run_suite,
)
from repro.perf.stats import bootstrap_ci, describe, is_regression, mad, median
from repro.perf.workloads import Workload, build_workload

__all__ = [
    "SUITES",
    "BenchmarkResult",
    "BenchmarkSpec",
    "ComparisonReport",
    "ComparisonRow",
    "Workload",
    "WorkloadDeterminismError",
    "all_specs",
    "baseline_filename",
    "baseline_path",
    "bootstrap_ci",
    "build_workload",
    "compare_results",
    "describe",
    "get_spec",
    "is_regression",
    "load_baseline",
    "mad",
    "median",
    "register",
    "results_to_baseline",
    "run_spec",
    "run_suite",
    "suite_specs",
    "write_baseline",
]
