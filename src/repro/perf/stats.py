"""Noise-robust statistics for the performance-regression harness.

Wall-clock samples from a shared CI box (or a laptop running a browser)
are heavy-tailed: the occasional repeat lands on a descheduled core and
takes 3x the others. Means are hopeless under that contamination, so the
harness works in medians and MADs and decides *statistical significance*
by nonparametric bootstrap:

* point estimate — :func:`median`;
* spread — :func:`mad` (median absolute deviation; the robust sigma);
* uncertainty — :func:`bootstrap_ci`, a percentile bootstrap confidence
  interval of the median (deterministic: seeded resampling);
* decision — :func:`is_regression`: a candidate is a regression only when
  its median exceeds the baseline median by more than the tolerance band
  **and** the bootstrap intervals are separated (the candidate's lower
  bound clears the baseline's upper bound scaled by half the tolerance)
  **and** the absolute slowdown exceeds ``min_abs`` seconds. All three
  gates must agree, so CI jitter on a microsecond-scale benchmark can
  never page anyone.

The tolerance/decision model is documented in DESIGN.md Appendix D.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "median",
    "mad",
    "bootstrap_ci",
    "describe",
    "is_regression",
]

#: Default resample count — cheap (the sample vectors are tiny) and stable.
DEFAULT_BOOTSTRAP = 1000

#: Default floor (seconds) under which an absolute slowdown is never
#: significant, whatever the ratio says.
DEFAULT_MIN_ABS = 0.005


def _as_array(values: Sequence[float], name: str) -> np.ndarray:
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError(f"{name} must contain at least one sample")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains non-finite samples: {array.tolist()}")
    if np.any(array < 0):
        raise ValueError(f"{name} contains negative durations: {array.tolist()}")
    return array


def median(values: Sequence[float]) -> float:
    """The sample median."""
    return float(np.median(_as_array(values, "values")))


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation around the median (unscaled)."""
    array = _as_array(values, "values")
    return float(np.median(np.abs(array - np.median(array))))


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = DEFAULT_BOOTSTRAP,
    seed: int = 0,
    stat: Callable[[np.ndarray], float] = np.median,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval of ``stat`` (default median).

    Deterministic for a fixed ``seed``; degenerates gracefully for n = 1
    (the interval collapses onto the single sample).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    if n_boot < 1:
        raise ValueError(f"n_boot must be >= 1, got {n_boot}")
    array = _as_array(values, "values")
    if array.size == 1:
        value = float(array[0])
        return value, value
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, array.size, size=(n_boot, array.size))
    stats = np.asarray([stat(array[row]) for row in indices], dtype=np.float64)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(stats, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


def describe(
    values: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = DEFAULT_BOOTSTRAP,
    seed: int = 0,
) -> Dict[str, float]:
    """Summary block stored per benchmark in the ``BENCH_*.json`` baselines."""
    array = _as_array(values, "values")
    ci_low, ci_high = bootstrap_ci(
        array, confidence=confidence, n_boot=n_boot, seed=seed
    )
    return {
        "count": int(array.size),
        "median": float(np.median(array)),
        "mad": mad(array),
        "mean": float(array.mean()),
        "min": float(array.min()),
        "max": float(array.max()),
        "ci_low": ci_low,
        "ci_high": ci_high,
    }


def is_regression(
    baseline: Sequence[float],
    candidate: Sequence[float],
    tolerance: float = 0.5,
    confidence: float = 0.95,
    min_abs: float = DEFAULT_MIN_ABS,
    n_boot: int = DEFAULT_BOOTSTRAP,
    seed: int = 0,
) -> bool:
    """Is *candidate* statistically significantly slower than *baseline*?

    Three conjunctive gates (any single ``False`` vetoes the alarm):

    1. **ratio gate** — ``median(candidate) > median(baseline) *
       (1 + tolerance)``;
    2. **separation gate** — the candidate's bootstrap lower bound exceeds
       the baseline's bootstrap upper bound stretched by half the
       tolerance (interval overlap means the medians are not resolvable
       at this noise level, so no alarm);
    3. **absolute gate** — the median slowdown exceeds ``min_abs`` seconds
       (sub-millisecond benchmarks cannot regress "significantly" by
       scheduler noise alone).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    if min_abs < 0:
        raise ValueError(f"min_abs must be >= 0, got {min_abs}")
    base = _as_array(baseline, "baseline")
    cand = _as_array(candidate, "candidate")
    base_median = float(np.median(base))
    cand_median = float(np.median(cand))
    if cand_median - base_median <= min_abs:
        return False
    if cand_median <= base_median * (1.0 + tolerance):
        return False
    _, base_high = bootstrap_ci(
        base, confidence=confidence, n_boot=n_boot, seed=seed
    )
    cand_low, _ = bootstrap_ci(
        cand, confidence=confidence, n_boot=n_boot, seed=seed + 1
    )
    return cand_low > base_high * (1.0 + tolerance / 2.0)
