"""The perf runner: warmup/repeat control with per-stage attribution.

One :func:`run_spec` call materializes a spec, performs ``warmup``
untimed repeats, then ``repeats`` timed ones. Each timed repeat runs
under a fresh snapshot of one :class:`MetricsRegistry`
(:meth:`~repro.service.metrics.MetricsRegistry.snapshot` /
:meth:`~repro.service.metrics.MetricsRegistry.since`), so the wall-clock
series is accompanied by a compile/embed/anneal/decode series for the
same repeats — the baseline records *where* the time went, and a
regression report can say "anneal grew 2.1x, compile flat".

Determinism contract: the workload fingerprint returned by every repeat
must be identical (same instances, same energies, same models). The
runner enforces this and raises :class:`WorkloadDeterminismError`
otherwise — a nondeterministic benchmark cannot be regression-gated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.perf import stats
from repro.perf.registry import BenchmarkSpec, get_spec, suite_specs
from repro.perf.workloads import build_workload
from repro.service.metrics import MetricsRegistry, MetricsSnapshot
from repro.utils.timing import measure

__all__ = [
    "WorkloadDeterminismError",
    "BenchmarkResult",
    "run_spec",
    "run_suite",
]

#: Pipeline stages reported in baselines, in pipeline order.
STAGES = ("compile", "embed", "anneal", "decode")


class WorkloadDeterminismError(RuntimeError):
    """Two repeats of one workload produced different results."""


@dataclass
class BenchmarkResult:
    """All measurements of one benchmark across its repeats."""

    name: str
    suite: str
    kind: str
    tolerance: float
    repeats: int
    warmup: int
    #: Per-repeat wall-clock seconds (the gated series).
    wall_times: List[float]
    #: Per-repeat *total* seconds per pipeline stage (attribution only).
    stage_times: Dict[str, List[float]]
    #: Counter deltas accumulated across all timed repeats.
    counters: Dict[str, int]
    #: The deterministic workload fingerprint (identical across repeats).
    workload: Dict[str, Any]
    #: Static workload metadata (vars, nnz, coupling form, digests).
    metadata: Dict[str, Any]
    params: Dict[str, Any] = field(default_factory=dict)

    def wall_summary(self) -> Dict[str, float]:
        return stats.describe(self.wall_times)

    def stage_medians(self) -> Dict[str, float]:
        return {
            name: stats.median(values)
            for name, values in sorted(self.stage_times.items())
            if values
        }

    def to_dict(self) -> Dict[str, Any]:
        """The JSON form stored per benchmark in ``BENCH_*.json``."""
        return {
            "suite": self.suite,
            "kind": self.kind,
            "tolerance": self.tolerance,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "params": dict(self.params),
            "wall_times": [round(t, 6) for t in self.wall_times],
            "wall": {k: round(v, 6) if isinstance(v, float) else v
                     for k, v in self.wall_summary().items()},
            "stage_median": {k: round(v, 6)
                             for k, v in self.stage_medians().items()},
            "counters": dict(sorted(self.counters.items())),
            "workload": self.workload,
            "metadata": self.metadata,
        }


def _params_json(spec: BenchmarkSpec) -> Dict[str, Any]:
    """Spec params coerced to plain JSON types (tuples become lists)."""
    return json.loads(json.dumps(dict(spec.params)))


def run_spec(
    spec_or_name,
    repeats: int = 5,
    warmup: int = 1,
) -> BenchmarkResult:
    """Run one benchmark spec; see the module docstring for semantics."""
    spec = (
        spec_or_name
        if isinstance(spec_or_name, BenchmarkSpec)
        else get_spec(str(spec_or_name))
    )
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")

    workload = build_workload(spec)

    for _ in range(warmup):
        workload.run(MetricsRegistry())

    registry = MetricsRegistry()
    wall_times: List[float] = []
    stage_times: Dict[str, List[float]] = {}
    fingerprint: Optional[Dict[str, Any]] = None
    for index in range(repeats):
        before = registry.snapshot()
        seconds, result = measure(workload.run, registry)
        delta = registry.since(before)
        wall_times.append(seconds)
        for name, samples in delta["histograms"].items():
            stage_times.setdefault(name, []).append(float(sum(samples)))
        if fingerprint is None:
            fingerprint = result
        elif result != fingerprint:
            raise WorkloadDeterminismError(
                f"benchmark {spec.name!r}: repeat {index} produced a "
                f"different workload result than repeat 0 — "
                f"{result!r} != {fingerprint!r}"
            )
    # Diff against an empty snapshot == counter totals over all repeats.
    counters = dict(registry.since(MetricsSnapshot())["counters"])
    assert fingerprint is not None
    return BenchmarkResult(
        name=spec.name,
        suite=spec.suite,
        kind=spec.kind,
        tolerance=spec.tolerance,
        repeats=repeats,
        warmup=warmup,
        wall_times=wall_times,
        stage_times=stage_times,
        counters=counters,
        workload=fingerprint,
        metadata=dict(workload.metadata),
        params=_params_json(spec),
    )


def run_suite(
    suite: str,
    repeats: int = 5,
    warmup: int = 1,
    specs: Optional[Sequence[BenchmarkSpec]] = None,
    progress=None,
) -> List[BenchmarkResult]:
    """Run every spec of *suite* (or an explicit spec list), in order.

    ``progress`` is an optional ``callable(spec)`` invoked before each
    benchmark (the CLI uses it for live output).
    """
    chosen = list(specs) if specs is not None else suite_specs(suite)
    results: List[BenchmarkResult] = []
    for spec in chosen:
        if progress is not None:
            progress(spec)
        results.append(run_spec(spec, repeats=repeats, warmup=warmup))
    return results
