"""Materialize :class:`~repro.perf.registry.BenchmarkSpec` into workloads.

A workload separates the three things a tracked benchmark must keep
apart:

* **construction** (untimed, done once) — generate instances, build
  models, prime caches;
* **one timed repeat** (:meth:`Workload.run`) — executes the pipeline
  under a caller-supplied :class:`~repro.service.metrics.MetricsRegistry`
  so per-stage (compile/embed/anneal/decode) attribution rides along;
* **the deterministic fingerprint** — ``run`` returns a JSON-serializable
  dict of *workload results* (statuses, models, outputs, rounded
  energies, state digests) that must be identical across repeats,
  invocations and machines at the spec's fixed seeds. Only timing fields
  may differ between two runs; the runner and the baseline comparator
  both enforce this.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List

from repro.perf.registry import BenchmarkSpec
from repro.service.metrics import MetricsRegistry

__all__ = [
    "Workload", "build_workload", "closest_string_script", "round_trip_digest",
]

#: Decimal places kept when embedding float energies in fingerprints —
#: coarse enough to absorb BLAS/SIMD summation-order noise across
#: machines, fine enough to catch any real decode/energy change.
_ENERGY_DECIMALS = 6


def round_trip_digest(*chunks: str) -> str:
    """A short stable digest of text chunks (first 16 hex of SHA-256)."""
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()[:16]


def _state_digest(states) -> str:
    """Digest of an annealer state matrix (int8, deterministic layout)."""
    import numpy as np

    array = np.ascontiguousarray(np.asarray(states, dtype=np.int8))
    h = hashlib.sha256()
    h.update(str(array.shape).encode("ascii"))
    h.update(array.tobytes())
    return h.hexdigest()[:16]


class Workload:
    """One buildable, repeatedly-runnable benchmark workload."""

    def __init__(
        self,
        spec: BenchmarkSpec,
        runner: Callable[[MetricsRegistry], Dict[str, Any]],
        metadata: Dict[str, Any],
    ) -> None:
        self.spec = spec
        self._runner = runner
        self.metadata = metadata

    def run(self, metrics: MetricsRegistry) -> Dict[str, Any]:
        """Execute one timed repeat; returns the deterministic fingerprint."""
        return self._runner(metrics)


# --------------------------------------------------------------------- #
# kind builders
# --------------------------------------------------------------------- #


def _model_metadata(model, coupling_form: str = "auto") -> Dict[str, Any]:
    from repro.qubo.sparse import sparse_stats

    stats = sparse_stats(model.to_dict(), model.num_variables)
    if coupling_form == "auto":
        coupling_form = "sparse" if stats.auto_sparse else "dense"
    return {
        "num_variables": int(model.num_variables),
        "coupling_nnz": int(stats.coupling_nnz),
        "density": round(float(stats.density), 6),
        "coupling_form": coupling_form,
    }


def _build_smt(spec: BenchmarkSpec) -> Workload:
    from repro.smt.generator import InstanceGenerator
    from repro.smt.solver import QuantumSMTSolver

    p = dict(spec.params)
    generator = InstanceGenerator(
        min_length=int(p["min_length"]),
        max_length=int(p["max_length"]),
        max_constraints=int(p["max_constraints"]),
        seed=int(p["gen_seed"]),
        ops=p.get("ops"),
    )
    instances = [generator.generate() for _ in range(int(p["instances"]))]
    scripts: List[str] = [inst.script for inst in instances]
    ops_covered = sorted({op for inst in instances for op in inst.ops})
    metadata = {
        "instances": len(scripts),
        "assertions": sum(len(inst.assertions) for inst in instances),
        "ops_covered": ops_covered,
        "scripts_digest": round_trip_digest(*scripts),
    }

    def run(metrics: MetricsRegistry) -> Dict[str, Any]:
        statuses: List[str] = []
        models: List[Dict[str, str]] = []
        for script in scripts:
            solver = QuantumSMTSolver.from_script_text(
                script,
                num_reads=int(p["num_reads"]),
                seed=int(p["solver_seed"]),
                sampler_params={"num_sweeps": int(p["num_sweeps"])},
                metrics=metrics,
            )
            result = solver.check_sat()
            statuses.append(str(result.status))
            models.append(dict(sorted(result.model.items())))
        return {
            "scripts_digest": metadata["scripts_digest"],
            "statuses": statuses,
            "models": models,
        }

    return Workload(spec, run, metadata)


def _make_formulation(p: Dict[str, Any]):
    from repro.core import PalindromeGeneration, RegexMatching, StringEquality

    kind = p["formulation"]
    if kind == "equality":
        return StringEquality(str(p["target"]))
    if kind == "palindrome":
        return PalindromeGeneration(int(p["length"]))
    if kind == "regex":
        return RegexMatching(str(p["pattern"]), int(p["length"]))
    raise ValueError(f"unknown formulation kind {kind!r}")


def _build_solve(spec: BenchmarkSpec) -> Workload:
    from repro.core.solver import StringQuboSolver

    p = dict(spec.params)
    formulation = _make_formulation(p)
    metadata = _model_metadata(formulation.build_model())

    def run(metrics: MetricsRegistry) -> Dict[str, Any]:
        solver = StringQuboSolver(
            num_reads=int(p["num_reads"]),
            seed=int(p["seed"]),
            sampler_params={"num_sweeps": int(p["num_sweeps"])},
            metrics=metrics,
        )
        result = solver.solve(formulation)
        return {
            "output": result.output,
            "ok": bool(result.ok),
            "energy": round(float(result.energy), _ENERGY_DECIMALS),
            "success_rate": round(float(result.success_rate), _ENERGY_DECIMALS),
        }

    return Workload(spec, run, metadata)


def _build_kernel(spec: BenchmarkSpec) -> Workload:
    from repro.anneal.simulated import SimulatedAnnealingSampler
    from repro.core import PalindromeGeneration

    p = dict(spec.params)
    model = PalindromeGeneration(int(p["length"])).build_model()
    mode = str(p["coupling_mode"])
    metadata = _model_metadata(model, coupling_form=mode)

    def run(metrics: MetricsRegistry) -> Dict[str, Any]:
        sampler = SimulatedAnnealingSampler()
        with metrics.time("anneal"):
            sampleset = sampler.sample_model(
                model,
                num_reads=int(p["num_reads"]),
                num_sweeps=int(p["num_sweeps"]),
                seed=int(p["seed"]),
                coupling_mode=mode,
            )
        metrics.counter("kernel.reads").inc(len(sampleset))
        return {
            "states_digest": _state_digest(sampleset.states),
            "best_energy": round(float(sampleset.first.energy), _ENERGY_DECIMALS),
            "coupling_form": sampleset.info.get("coupling_form", mode),
        }

    return Workload(spec, run, metadata)


def _batch_scripts(p: Dict[str, Any]) -> List[str]:
    return [
        f'(declare-const x String)(assert (= x "{word}"))(check-sat)'
        for word in p["words"]
    ] * int(p["repeats"])


def _build_batch(spec: BenchmarkSpec) -> Workload:
    from repro.service import CompileCache, RetryPolicy
    from repro.service.batch import BatchSolver

    p = dict(spec.params)
    scripts = _batch_scripts(p)
    warm = bool(p.get("warm", False))

    def make_solver(cache, metrics):
        return BatchSolver(
            seed=int(p["seed"]),
            num_reads=int(p["num_reads"]),
            sampler_params={"num_sweeps": int(p["num_sweeps"])},
            policy=RetryPolicy(max_attempts=3),
            cache=cache,
            metrics=metrics,
            executor=str(p["executor"]),
            num_workers=int(p["num_workers"]),
            tile_max=int(p.get("tile_max", 16)),
        )

    # A warm workload shares one cache primed at build time (untimed), so
    # every timed repeat measures the pure cache-hit path; a cold workload
    # gets a fresh cache inside each timed repeat.
    shared_cache = None
    if warm:
        shared_cache = CompileCache(maxsize=64)
        make_solver(shared_cache, MetricsRegistry()).solve_batch(scripts)

    metadata = {
        "batch_items": len(scripts),
        "unique_scripts": len(set(scripts)),
        "executor": str(p["executor"]),
        "warm_cache": warm,
        "scripts_digest": round_trip_digest(*scripts),
    }

    def run(metrics: MetricsRegistry) -> Dict[str, Any]:
        cache = shared_cache if warm else CompileCache(maxsize=64)
        report = make_solver(cache, metrics).solve_batch(scripts)
        return {
            "scripts_digest": metadata["scripts_digest"],
            "statuses": [str(status) for status in report.statuses],
            "models": [dict(sorted(item.model.items())) for item in report],
        }

    return Workload(spec, run, metadata)


def _result_fingerprint(result) -> Dict[str, Any]:
    """Deterministic projection of one :class:`SmtResult`."""
    return {
        "status": str(result.status),
        "model": dict(sorted(result.model.items())),
        "energies": {
            name: round(float(r.energy), _ENERGY_DECIMALS)
            for name, r in sorted(result.solve_results.items())
        },
    }


def _build_session(spec: BenchmarkSpec) -> Workload:
    from repro.service import CompileCache
    from repro.smt.generator import InstanceGenerator
    from repro.smt.session import SolverSession

    p = dict(spec.params)
    mode = str(p["mode"])

    if mode == "replay":
        generator = InstanceGenerator(
            min_length=int(p["min_length"]),
            max_length=int(p["max_length"]),
            max_constraints=int(p["max_constraints"]),
            seed=int(p["gen_seed"]),
            sessions=int(p["queries"]),
        )
        instances = [generator.generate() for _ in range(int(p["instances"]))]
        scripts = [inst.script for inst in instances]
        metadata = {
            "instances": len(scripts),
            "queries": sum(len(inst.expected_statuses) for inst in instances),
            "scripts_digest": round_trip_digest(*scripts),
        }

        def run(metrics: MetricsRegistry) -> Dict[str, Any]:
            fingerprints: List[List[Dict[str, Any]]] = []
            for script in scripts:
                session = SolverSession(
                    num_reads=int(p["num_reads"]),
                    seed=int(p["solver_seed"]),
                    sampler_params={"num_sweeps": int(p["num_sweeps"])},
                    metrics=metrics,
                )
                results = session.run_script_text(script)
                fingerprints.append(
                    [_result_fingerprint(r) for r in results]
                )
            return {
                "scripts_digest": metadata["scripts_digest"],
                "queries": fingerprints,
            }

        return Workload(spec, run, metadata)

    if mode not in ("cold_recheck", "warm_recheck"):
        raise ValueError(f"unknown session workload mode {mode!r}")

    base = str(p["base"])
    extra = str(p["extra"])
    solver_kwargs = dict(
        num_reads=int(p["num_reads"]),
        seed=int(p["seed"]),
        sampler_params={"num_sweeps": int(p["num_sweeps"])},
    )
    metadata = {
        "mode": mode,
        "scripts_digest": round_trip_digest(base, extra),
    }

    if mode == "cold_recheck":
        # From-scratch reference: each timed repeat compiles and anneals
        # the changed conjunction (base + extra) with a fresh solver and a
        # fresh cache, exactly what a non-incremental client pays.

        def run(metrics: MetricsRegistry) -> Dict[str, Any]:
            session = SolverSession(
                cache=CompileCache(maxsize=8), metrics=metrics, **solver_kwargs
            )
            session.assert_text(base)
            session.push()
            session.assert_text(extra)
            result = session.check_sat()
            return {
                "scripts_digest": metadata["scripts_digest"],
                "result": _result_fingerprint(result),
            }

        return Workload(spec, run, metadata)

    # warm_recheck: one shared session primed untimed at build — the base
    # state and the base+extra state are both solved once here — so every
    # timed repeat measures the incremental fast path: push, re-assert the
    # change, answer from the per-state memo, pop.
    shared = SolverSession(
        cache=CompileCache(maxsize=8), metrics=MetricsRegistry(), **solver_kwargs
    )
    shared.assert_text(base)
    shared.check_sat()
    shared.push()
    shared.assert_text(extra)
    shared.check_sat()
    shared.pop()

    def run(metrics: MetricsRegistry) -> Dict[str, Any]:
        shared.push()
        shared.assert_text(extra)
        result = shared.check_sat()
        shared.pop()
        return {
            "scripts_digest": metadata["scripts_digest"],
            "result": _result_fingerprint(result),
        }

    return Workload(spec, run, metadata)


def _build_refine(spec: BenchmarkSpec) -> Workload:
    from repro.smt.solver import QuantumSMTSolver

    p = dict(spec.params)
    script = str(p["script"])
    strategy = str(p.get("strategy", "direct"))
    metadata = {
        "strategy": strategy,
        "scripts_digest": round_trip_digest(script),
    }

    def run(metrics: MetricsRegistry) -> Dict[str, Any]:
        solver = QuantumSMTSolver.from_script_text(
            script,
            num_reads=int(p["num_reads"]),
            seed=int(p["seed"]),
            sampler_params={"num_sweeps": int(p["num_sweeps"])},
            metrics=metrics,
            strategy=strategy,
            refine_max_rounds=int(p.get("refine_max_rounds", 4)),
        )
        result = solver.check_sat()
        fingerprint = dict(
            _result_fingerprint(result),
            scripts_digest=metadata["scripts_digest"],
        )
        stats = solver.last_refine_stats
        if strategy == "refine" and stats is not None:
            # The reduction itself is part of the tracked contract: a
            # regression that stops pruning (qubo_variables creeping back
            # to full_variables) must show up as a fingerprint mismatch.
            fingerprint["refine"] = {
                "rounds": int(stats.rounds),
                "pruned_bits": int(stats.pruned_bits),
                "lemmas": int(stats.lemmas),
                "fallbacks": int(stats.fallbacks),
                "determined": int(stats.determined),
                "qubo_variables": [int(v) for v in stats.qubo_variables],
                "full_variables": [int(v) for v in stats.full_variables],
            }
        return fingerprint

    return Workload(spec, run, metadata)


def closest_string_script(references) -> str:
    """The weighted MaxSMT encoding of one Closest String instance.

    Hard: the length pin. Soft: one unit-weight ``(= (str.at x i) c)``
    block per reference per position, grouped per reference — the total
    violated weight of a candidate is exactly its summed character-Hamming
    distance to the references.
    """
    refs = [str(r) for r in references]
    length = len(refs[0])
    parts = [
        "(declare-const x String)",
        f"(assert (= (str.len x) {length}))",
    ]
    for index, ref in enumerate(refs):
        for position, char in enumerate(ref):
            parts.append(
                f'(assert-soft (= (str.at x {position}) "{char}") '
                f":weight 1 :id ref{index})"
            )
    return "".join(parts)


def _build_opt(spec: BenchmarkSpec) -> Workload:
    import math

    from repro.opt import AnytimeOptimizer
    from repro.smt.parser import parse_script

    p = dict(spec.params)
    refs = [str(r) for r in p["references"]]
    script = closest_string_script(refs)
    parsed = parse_script(script)
    metadata = {
        "references": len(refs),
        "length": len(refs[0]),
        "soft_assertions": len(parsed.soft_assertions),
        "total_reads": int(p["max_restarts"]) * int(p["num_reads"]),
        "scripts_digest": round_trip_digest(script),
    }

    def run(metrics: MetricsRegistry) -> Dict[str, Any]:
        optimizer = AnytimeOptimizer(
            num_reads=int(p["num_reads"]),
            seed=int(p["seed"]),
            sampler_params={"num_sweeps": int(p["num_sweeps"])},
            max_restarts=int(p["max_restarts"]),
            exhaustive_bits=int(p.get("exhaustive_bits", 0)),
            metrics=metrics,
        )
        result = optimizer.optimize(
            list(parsed.assertions), list(parsed.soft_assertions)
        )
        upper = float(result.upper_bound)
        # Objective, bounds and status are part of the tracked contract:
        # the anytime-matches-direct-at-equal-budget claim lives in the
        # committed baseline, not in prose.
        return {
            "scripts_digest": metadata["scripts_digest"],
            "status": str(result.status),
            "model": dict(sorted(result.model.items())),
            "objective": (
                None if result.objective is None
                else round(float(result.objective), _ENERGY_DECIMALS)
            ),
            "lower_bound": round(float(result.lower_bound), _ENERGY_DECIMALS),
            "upper_bound": (
                None if math.isinf(upper) else round(upper, _ENERGY_DECIMALS)
            ),
            "restarts": int(result.restarts),
            "reads_used": int(result.reads_used),
        }

    return Workload(spec, run, metadata)


_BUILDERS: Dict[str, Callable[[BenchmarkSpec], Workload]] = {
    "smt": _build_smt,
    "solve": _build_solve,
    "kernel": _build_kernel,
    "batch": _build_batch,
    "session": _build_session,
    "refine": _build_refine,
    "opt": _build_opt,
}


def build_workload(spec: BenchmarkSpec) -> Workload:
    """Materialize *spec* (untimed construction work happens here)."""
    try:
        builder = _BUILDERS[spec.kind]
    except KeyError:
        raise ValueError(f"no workload builder for kind {spec.kind!r}") from None
    return builder(spec)
