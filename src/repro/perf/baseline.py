"""Committed baselines (``BENCH_*.json``) and the regression comparator.

One baseline file per suite lives at the repo root and is committed, so
``git log BENCH_core.json`` *is* the performance trajectory of the
project. ``python -m repro.perf update`` rewrites them from a fresh run;
``python -m repro.perf compare`` reruns the suite and exits non-zero on a
statistically significant regression (see :mod:`repro.perf.stats` for the
decision model and DESIGN.md Appendix D for the rationale).

Comparison statuses per benchmark:

* ``ok``             — within the tolerance band (or not separable);
* ``regression``     — significantly slower → failure;
* ``improved``       — significantly faster (informational; update the
  baseline to lock the win in);
* ``new``            — no baseline entry yet → informational;
* ``missing``        — baseline entry with no registered spec →
  informational (delete it on the next ``update``);
* ``workload-drift`` — the deterministic workload fingerprint changed, so
  timings are not comparable → failure unless explicitly allowed (rerun
  ``update`` after intentional behavior changes).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.perf import stats
from repro.perf.registry import baseline_filename
from repro.perf.runner import BenchmarkResult

__all__ = [
    "SCHEMA_VERSION",
    "baseline_path",
    "results_to_baseline",
    "write_baseline",
    "load_baseline",
    "ComparisonRow",
    "ComparisonReport",
    "compare_results",
]

SCHEMA_VERSION = 1

#: Failure statuses (everything else is informational).
_FAILING = ("regression", "workload-drift")


def baseline_path(suite: str, root: str = ".") -> str:
    """Path of the committed baseline file for *suite* under *root*."""
    return os.path.join(root, baseline_filename(suite))


def results_to_baseline(
    suite: str, results: Sequence[BenchmarkResult]
) -> Dict[str, Any]:
    """The JSON document written to ``BENCH_<suite>.json``.

    Deterministic layout (sorted keys, stable rounding); no timestamps —
    the commit history already dates every baseline refresh, and
    byte-stable output keeps ``update`` diffs reviewable.
    """
    wrong = [r.name for r in results if r.suite != suite]
    if wrong:
        raise ValueError(f"results {wrong} do not belong to suite {suite!r}")
    return {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "benchmarks": {r.name: r.to_dict() for r in sorted(results, key=lambda r: r.name)},
    }


def write_baseline(
    suite: str, results: Sequence[BenchmarkResult], root: str = "."
) -> str:
    """Write the baseline file; returns its path."""
    path = baseline_path(suite, root)
    document = results_to_baseline(suite, results)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(suite: str, root: str = ".") -> Optional[Dict[str, Any]]:
    """Load a baseline document, or ``None`` when the file does not exist."""
    path = baseline_path(suite, root)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    schema = document.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline schema {schema!r} "
            f"(this build reads schema {SCHEMA_VERSION})"
        )
    return document


@dataclass
class ComparisonRow:
    """One benchmark's verdict in a comparison."""

    name: str
    status: str
    base_median: Optional[float] = None
    cand_median: Optional[float] = None
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.base_median and self.cand_median is not None:
            return self.cand_median / self.base_median
        return None

    @property
    def failed(self) -> bool:
        return self.status in _FAILING


@dataclass
class ComparisonReport:
    """All rows of one suite comparison."""

    suite: str
    rows: List[ComparisonRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(row.failed for row in self.rows)

    @property
    def regressions(self) -> List[ComparisonRow]:
        return [row for row in self.rows if row.failed]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "suite": self.suite,
            "ok": self.ok,
            "rows": [
                {
                    "name": row.name,
                    "status": row.status,
                    "base_median": row.base_median,
                    "cand_median": row.cand_median,
                    "ratio": row.ratio,
                    "note": row.note,
                }
                for row in self.rows
            ],
        }

    def text_report(self) -> str:
        header = ["benchmark", "baseline", "current", "ratio", "status"]
        table: List[List[str]] = [header]
        for row in self.rows:
            table.append([
                row.name,
                "-" if row.base_median is None else f"{row.base_median:.4f}s",
                "-" if row.cand_median is None else f"{row.cand_median:.4f}s",
                "-" if row.ratio is None else f"{row.ratio:.2f}x",
                row.status + (f" ({row.note})" if row.note else ""),
            ])
        widths = [max(len(line[i]) for line in table) for i in range(len(header))]
        lines = [f"suite {self.suite}:"]
        for index, line in enumerate(table):
            lines.append("  " + "  ".join(c.ljust(w) for c, w in zip(line, widths)))
            if index == 0:
                lines.append("  " + "  ".join("-" * w for w in widths))
        return "\n".join(lines)


def compare_results(
    baseline: Optional[Dict[str, Any]],
    results: Sequence[BenchmarkResult],
    suite: str,
    tolerance_scale: float = 1.0,
    min_abs: float = stats.DEFAULT_MIN_ABS,
    confidence: float = 0.95,
    allow_workload_drift: bool = False,
) -> ComparisonReport:
    """Diff fresh *results* against a loaded *baseline* document.

    Pure function over data (no I/O) so self-tests can feed synthetic
    timings — e.g. proving an artificially 3x-slowed benchmark trips the
    gate.
    """
    if tolerance_scale <= 0:
        raise ValueError(f"tolerance_scale must be positive, got {tolerance_scale}")
    report = ComparisonReport(suite=suite)
    entries = dict((baseline or {}).get("benchmarks", {}))

    for result in results:
        entry = entries.pop(result.name, None)
        cand_median = stats.median(result.wall_times)
        if entry is None:
            report.rows.append(ComparisonRow(
                name=result.name,
                status="new",
                cand_median=cand_median,
                note="no baseline entry; run `update` to start tracking",
            ))
            continue
        base_times = entry.get("wall_times") or []
        base_median = stats.median(base_times)
        if entry.get("workload") != result.workload:
            status = "ok" if allow_workload_drift else "workload-drift"
            report.rows.append(ComparisonRow(
                name=result.name,
                status=status,
                base_median=base_median,
                cand_median=cand_median,
                note="workload fingerprint changed; timings not comparable"
                     + (" (allowed)" if allow_workload_drift else ""),
            ))
            continue
        tolerance = float(entry.get("tolerance", result.tolerance)) * tolerance_scale
        if stats.is_regression(
            base_times, result.wall_times,
            tolerance=tolerance, confidence=confidence, min_abs=min_abs,
        ):
            status, note = "regression", f"beyond {1 + tolerance:.2f}x band"
        elif stats.is_regression(
            result.wall_times, base_times,
            tolerance=tolerance, confidence=confidence, min_abs=min_abs,
        ):
            status, note = "improved", "faster than baseline; consider `update`"
        else:
            status, note = "ok", ""
        report.rows.append(ComparisonRow(
            name=result.name,
            status=status,
            base_median=base_median,
            cand_median=cand_median,
            note=note,
        ))

    for name, entry in sorted(entries.items()):
        base_times = entry.get("wall_times") or [0.0]
        report.rows.append(ComparisonRow(
            name=name,
            status="missing",
            base_median=stats.median(base_times),
            note="baseline entry has no registered spec; `update` removes it",
        ))
    return report
