"""Command-line entry point: ``python -m repro.perf``.

Subcommands
-----------

``list``
    Show every registered benchmark spec::

        python -m repro.perf list [--suite core]

``run``
    Run suites and print the measurement table (optionally dump JSON)::

        python -m repro.perf run --suite all --repeats 5 --json run.json

``update``
    Run suites and (re)write the committed baselines at the repo root::

        python -m repro.perf update --suite all

``compare``
    Run suites, diff against the committed baselines, exit non-zero on a
    statistically significant regression (or on workload drift)::

        python -m repro.perf compare --suite all
        # CI smoke configuration — few repeats, gross-only gate:
        python -m repro.perf compare --suite all --repeats 2 \\
            --tolerance-scale 6 --min-abs 0.1

All workloads run at fixed registered seeds: two invocations produce
identical workload results (instances, energies, models) and differ only
in the timing fields.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.perf import baseline as baseline_mod
from repro.perf import stats
from repro.perf.registry import SUITES, all_specs, suite_specs
from repro.perf.runner import BenchmarkResult, run_suite

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Performance-regression harness over the tracked benchmark registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--suite", action="append", choices=(*SUITES, "all"), default=None,
            help="suite to run (repeatable; default: all)",
        )
        p.add_argument("--repeats", type=int, default=5,
                       help="timed repeats per benchmark (default 5)")
        p.add_argument("--warmup", type=int, default=1,
                       help="untimed warmup repeats per benchmark (default 1)")
        p.add_argument("--spec", action="append", default=None,
                       help="restrict to named benchmarks (repeatable; "
                            "mainly for debugging and self-tests)")

    lst = sub.add_parser("list", help="show the registered benchmark specs")
    lst.add_argument("--suite", action="append", choices=(*SUITES, "all"),
                     default=None)

    run = sub.add_parser("run", help="run suites and print measurements")
    add_run_options(run)
    run.add_argument("--json", dest="json_path", default=None,
                     help="write the full results document here")

    upd = sub.add_parser("update", help="run suites and rewrite baselines")
    add_run_options(upd)
    upd.add_argument("--bench-dir", default=".",
                     help="directory holding BENCH_*.json (default: cwd)")

    cmp_ = sub.add_parser(
        "compare", help="run suites and gate against committed baselines"
    )
    add_run_options(cmp_)
    cmp_.add_argument("--bench-dir", default=".",
                      help="directory holding BENCH_*.json (default: cwd)")
    cmp_.add_argument("--tolerance-scale", type=float, default=1.0,
                      help="multiply every per-benchmark tolerance band "
                           "(CI smoke uses a wide scale)")
    cmp_.add_argument("--min-abs", type=float, default=stats.DEFAULT_MIN_ABS,
                      help="absolute slowdown floor in seconds")
    cmp_.add_argument("--confidence", type=float, default=0.95)
    cmp_.add_argument("--allow-workload-drift", action="store_true",
                      help="downgrade fingerprint changes to informational")
    cmp_.add_argument("--json", dest="json_path", default=None,
                      help="write fresh results + verdicts here")
    return parser


def _chosen_suites(args: argparse.Namespace) -> List[str]:
    chosen = args.suite or ["all"]
    if "all" in chosen:
        return list(SUITES)
    # preserve SUITES order, drop duplicates
    return [suite for suite in SUITES if suite in chosen]


def _progress(spec) -> None:
    print(f"  running {spec.suite}/{spec.name} ...", flush=True)


def _run_suites(args: argparse.Namespace) -> Dict[str, List[BenchmarkResult]]:
    names = set(getattr(args, "spec", None) or ())
    if names:
        known = {spec.name for spec in all_specs()}
        unknown = sorted(names - known)
        if unknown:
            raise SystemExit(f"unknown benchmark specs: {unknown}")
    results: Dict[str, List[BenchmarkResult]] = {}
    for suite in _chosen_suites(args):
        specs = suite_specs(suite)
        if names:
            specs = [spec for spec in specs if spec.name in names]
            if not specs:
                continue
        print(f"suite {suite}: {len(specs)} benchmarks "
              f"({args.repeats} repeats, {args.warmup} warmup)")
        results[suite] = run_suite(
            suite, repeats=args.repeats, warmup=args.warmup, specs=specs,
            progress=_progress,
        )
    return results


def _results_table(results: List[BenchmarkResult]) -> str:
    header = ["benchmark", "median", "mad", "ci95", "stages (median s)"]
    table = [header]
    for result in results:
        summary = result.wall_summary()
        stage = " ".join(
            f"{name}={value:.4f}"
            for name, value in result.stage_medians().items()
        )
        table.append([
            result.name,
            f"{summary['median']:.4f}s",
            f"{summary['mad']:.4f}s",
            f"[{summary['ci_low']:.4f}, {summary['ci_high']:.4f}]",
            stage or "-",
        ])
    widths = [max(len(line[i]) for line in table) for i in range(len(header))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  " + "  ".join(c.ljust(w) for c, w in zip(line, widths)))
        if index == 0:
            lines.append("  " + "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _results_document(results: Dict[str, List[BenchmarkResult]]) -> Dict:
    return {
        suite: baseline_mod.results_to_baseline(suite, suite_results)
        for suite, suite_results in results.items()
    }


def _cmd_list(args: argparse.Namespace) -> int:
    suites = set(_chosen_suites(args))
    header = ["name", "suite", "kind", "tol", "description"]
    table = [header]
    for spec in all_specs():
        if spec.suite not in suites:
            continue
        table.append([
            spec.name, spec.suite, spec.kind,
            f"{spec.tolerance:.2f}", spec.description,
        ])
    widths = [max(len(line[i]) for line in table) for i in range(len(header))]
    for index, line in enumerate(table):
        print("  ".join(c.ljust(w) for c, w in zip(line, widths)))
        if index == 0:
            print("  ".join("-" * w for w in widths))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    results = _run_suites(args)
    for suite, suite_results in results.items():
        print(f"\nsuite {suite}:")
        print(_results_table(suite_results))
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(_results_document(results), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"\nresults json: {args.json_path}")
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    results = _run_suites(args)
    for suite, suite_results in results.items():
        path = baseline_mod.write_baseline(suite, suite_results,
                                           root=args.bench_dir)
        print(f"wrote {path} ({len(suite_results)} benchmarks)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = _run_suites(args)
    reports = []
    for suite, suite_results in results.items():
        document = baseline_mod.load_baseline(suite, root=args.bench_dir)
        if document is None:
            print(f"suite {suite}: no baseline at "
                  f"{baseline_mod.baseline_path(suite, args.bench_dir)} "
                  f"(run `python -m repro.perf update` first)")
            continue
        report = baseline_mod.compare_results(
            document,
            suite_results,
            suite,
            tolerance_scale=args.tolerance_scale,
            min_abs=args.min_abs,
            confidence=args.confidence,
            allow_workload_drift=args.allow_workload_drift,
        )
        print()
        print(report.text_report())
        reports.append(report)

    failed = [row for report in reports for row in report.regressions]
    if args.json_path:
        document = {
            "results": _results_document(results),
            "comparisons": [report.to_dict() for report in reports],
            "ok": not failed,
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\ncomparison json: {args.json_path}")
    if failed:
        names = ", ".join(f"{row.name} [{row.status}]" for row in failed)
        print(f"\nFAIL: significant perf regression: {names}", file=sys.stderr)
        return 1
    print("\nOK: no statistically significant regressions")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "update":
        return _cmd_update(args)
    return _cmd_compare(args)


if __name__ == "__main__":
    sys.exit(main())
