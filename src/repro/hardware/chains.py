"""Chain strength selection and chain-break resolution.

When a logical variable is embedded as a chain of physical qubits, the
chain is held together by a strong ferromagnetic coupling. Too weak and
chains *break* (physical qubits disagree); too strong and the chain term
drowns out the problem's own energy scale. After sampling, each physical
state must be *unembedded* back to logical variables, resolving any broken
chains.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.qubo.bqm import BinaryQuadraticModel
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "uniform_torque_compensation",
    "chain_break_fraction",
    "majority_vote",
    "resolve_chain_breaks",
]

Embedding = Mapping[Hashable, Sequence[Hashable]]


def uniform_torque_compensation(
    bqm: BinaryQuadraticModel, prefactor: float = 1.414
) -> float:
    """Chain strength by the uniform torque compensation heuristic.

    Estimates the coupling a chain must withstand as the RMS quadratic bias
    times the square root of the mean degree, scaled by *prefactor*
    (D-Wave's default is sqrt(2) ≈ 1.414). Falls back to the maximum
    absolute bias when the model has no quadratic terms.
    """
    if prefactor <= 0:
        raise ValueError(f"prefactor must be positive, got {prefactor}")
    quadratic = [c for c in bqm.quadratic.values() if c != 0.0]
    if quadratic:
        rms = float(np.sqrt(np.mean(np.square(quadratic))))
        degrees = [bqm.degree(v) for v in bqm.variables]
        avg_degree = float(np.mean(degrees)) if degrees else 1.0
        strength = prefactor * rms * np.sqrt(avg_degree)
    else:
        linear = [abs(b) for b in bqm.linear.values()]
        strength = prefactor * (max(linear) if linear else 1.0)
    return float(strength) if strength > 0 else 1.0


def _chain_columns(
    embedding: Embedding, variables: Sequence[Hashable]
) -> List[np.ndarray]:
    """Column indices of each chain within the physical state matrix."""
    index = {v: i for i, v in enumerate(variables)}
    columns = []
    for logical, chain in embedding.items():
        try:
            cols = np.array([index[q] for q in chain], dtype=np.int64)
        except KeyError as exc:
            raise KeyError(
                f"chain of {logical!r} references unknown physical qubit {exc}"
            ) from None
        if cols.size == 0:
            raise ValueError(f"empty chain for logical variable {logical!r}")
        columns.append(cols)
    return columns


def chain_break_fraction(
    states: np.ndarray, embedding: Embedding, variables: Sequence[Hashable]
) -> np.ndarray:
    """Per-row fraction of chains whose qubits disagree.

    Parameters
    ----------
    states:
        ``(R, num_physical)`` array of physical samples (0/1 or ±1).
    embedding:
        ``logical -> [physical...]`` chain map.
    variables:
        Column labels of *states*.
    """
    states = np.atleast_2d(np.asarray(states))
    columns = _chain_columns(embedding, variables)
    broken = np.zeros(states.shape[0], dtype=np.int64)
    for cols in columns:
        chain_vals = states[:, cols]
        broken += np.any(chain_vals != chain_vals[:, :1], axis=1)
    return broken / max(len(columns), 1)


def majority_vote(
    states: np.ndarray,
    embedding: Embedding,
    variables: Sequence[Hashable],
    seed: SeedLike = None,
) -> Tuple[np.ndarray, List[Hashable]]:
    """Unembed by per-chain majority vote (random tie-break).

    Returns ``(logical_states, logical_order)`` where ``logical_states`` is
    ``(R, num_logical)`` in the same value domain as the input.
    """
    rng = ensure_rng(seed)
    states = np.atleast_2d(np.asarray(states))
    lo = int(states.min(initial=0))
    low_value = -1 if lo < 0 else 0
    columns = _chain_columns(embedding, variables)
    order = list(embedding.keys())
    out = np.empty((states.shape[0], len(order)), dtype=np.int8)
    for j, cols in enumerate(columns):
        chain_vals = states[:, cols]
        ones = (chain_vals == 1).sum(axis=1)
        half = cols.size / 2.0
        decided_one = ones > half
        decided_low = ones < half
        out[:, j] = np.where(decided_one, 1, low_value)
        ties = ~(decided_one | decided_low)
        if ties.any():
            coin = rng.integers(0, 2, size=int(ties.sum()))
            out[ties, j] = np.where(coin == 1, 1, low_value)
    return out, order


def resolve_chain_breaks(
    states: np.ndarray,
    embedding: Embedding,
    variables: Sequence[Hashable],
    method: str = "majority",
    seed: SeedLike = None,
) -> Tuple[np.ndarray, List[Hashable], np.ndarray]:
    """Unembed physical states to logical ones.

    Parameters
    ----------
    method:
        * ``"majority"`` — per-chain majority vote (default).
        * ``"discard"`` — drop every read containing a broken chain, then
          majority-vote the survivors (trivially exact on them).

    Returns
    -------
    ``(logical_states, logical_order, kept_rows)`` where *kept_rows* indexes
    the surviving rows of the input (all rows for ``"majority"``).
    """
    states = np.atleast_2d(np.asarray(states))
    all_rows = np.arange(states.shape[0])
    if method == "majority":
        logical, order = majority_vote(states, embedding, variables, seed=seed)
        return logical, order, all_rows
    if method == "discard":
        fractions = chain_break_fraction(states, embedding, variables)
        kept = all_rows[fractions == 0.0]
        logical, order = majority_vote(states[kept], embedding, variables, seed=seed)
        return logical, order, kept
    raise ValueError(f"method must be 'majority' or 'discard', got {method!r}")
