"""The simulated quantum processing unit.

:class:`SimulatedQPU` models a physical annealer as seen from software:

* it only accepts models *native* to its qubit topology (use
  :class:`~repro.hardware.embedding.EmbeddingComposite` for anything else);
* it perturbs the programmed biases with a control-noise model before
  annealing;
* it anneals with a configurable backend — classical SA by default, or
  :class:`~repro.anneal.sqa.PathIntegralAnnealer` for transverse-field
  dynamics;
* reported energies are always those of the **clean** (noise-free) model,
  because that is what a user of real hardware observes: the device anneals
  the noisy Hamiltonian but states are scored against the submitted problem.
"""

from __future__ import annotations

from typing import Any, Optional

import networkx as nx

from repro.anneal.base import Sampler
from repro.anneal.sampleset import SampleSet
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.hardware.chimera import chimera_graph
from repro.hardware.noise import GaussianNoiseModel
from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.model import QuboModel
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["SimulatedQPU"]


class SimulatedQPU(Sampler):
    """Topology-restricted, noisy annealer.

    Parameters
    ----------
    topology:
        Hardware graph (default: Chimera ``C(4, 4, 4)``, 128 qubits).
    noise:
        A :class:`~repro.hardware.noise.GaussianNoiseModel`, or ``None``
        for an ideal device.
    backend:
        The annealing engine; default
        :class:`~repro.anneal.simulated.SimulatedAnnealingSampler`.
    name:
        Device name for reporting.
    """

    def __init__(
        self,
        topology: Optional[nx.Graph] = None,
        noise: Optional[GaussianNoiseModel] = None,
        backend: Optional[Sampler] = None,
        name: str = "simulated-qpu",
    ) -> None:
        self.topology = topology if topology is not None else chimera_graph(4)
        self.noise = noise
        self.backend = backend if backend is not None else SimulatedAnnealingSampler()
        self.name = name

    @property
    def num_qubits(self) -> int:
        return self.topology.number_of_nodes()

    @property
    def num_couplers(self) -> int:
        return self.topology.number_of_edges()

    def __repr__(self) -> str:
        return (
            f"SimulatedQPU({self.name!r}, {self.num_qubits} qubits, "
            f"{self.num_couplers} couplers, noise={self.noise!r})"
        )

    # ------------------------------------------------------------------ #

    def validate_native(self, bqm: BinaryQuadraticModel) -> None:
        """Raise ``ValueError`` unless *bqm* fits the topology directly."""
        for v in bqm.variables:
            if v not in self.topology:
                raise ValueError(f"variable {v!r} is not a qubit of {self.name}")
        for (u, v), coupling in bqm.quadratic.items():
            if coupling != 0.0 and not self.topology.has_edge(u, v):
                raise ValueError(
                    f"interaction ({u!r}, {v!r}) has no coupler on {self.name}; "
                    "use EmbeddingComposite for non-native models"
                )

    def sample_bqm(
        self, bqm: BinaryQuadraticModel, *, seed: SeedLike = None, **params: Any
    ) -> SampleSet:
        """Anneal a native model; states come back in BINARY values."""
        self.validate_native(bqm)
        rng = ensure_rng(seed)
        programmed = bqm
        if self.noise is not None:
            programmed = self.noise.apply(bqm, seed=rng)
        result = self.backend.sample_bqm(
            programmed, seed=int(rng.integers(0, 2**63 - 1)), **params
        )
        # Score against the *submitted* model, not the noisy one the device ran.
        clean = bqm if bqm.vartype.name == "BINARY" else bqm.change_vartype("BINARY")
        energies = clean.energies(result.states, order=result.variables)
        out = SampleSet(
            result.states,
            energies,
            variables=result.variables,
            num_occurrences=result.num_occurrences,
            info=result.info,
        )
        out.info.update({"device": self.name, "noisy": self.noise is not None})
        return out

    def sample_model(self, model: QuboModel, **params: Any) -> SampleSet:
        """Treat model indices as qubit labels and anneal natively."""
        bqm = BinaryQuadraticModel.from_qubo_model(model)
        return self.sample_bqm(bqm, **params)
