"""Pegasus-like topology generator.

D-Wave's Advantage machines use the Pegasus graph, whose salient advance
over Chimera is connectivity: qubit degree rises from 6 to 15, which
shortens embedding chains dramatically. The exact Pegasus construction
involves shifted track offsets whose details do not affect any experiment in
this repository; what the embedding benchmarks probe is the *degree/chain-
length trade-off*.

We therefore generate a **Pegasus-like** graph: a Chimera ``C(m, m, 4)``
skeleton enriched with the two Pegasus coupler families that create its
extra degree:

* *odd couplers* — edges between paired qubits on the same shore of a cell
  (``k`` and ``k+1`` for even ``k``), and
* *diagonal inter-cell couplers* — vertical qubits additionally couple to
  the next cell diagonally down-right, horizontal qubits to the cell
  down-left.

Interior degree lands at 10–12 versus Chimera's 6, reproducing the
qualitative hardware difference while staying honest about not matching
D-Wave's exact indexing (documented substitution; see DESIGN.md).
"""

from __future__ import annotations

import networkx as nx

from repro.hardware.chimera import chimera_graph, chimera_index

__all__ = ["pegasus_like_graph"]


def pegasus_like_graph(m: int, t: int = 4) -> nx.Graph:
    """Build the enriched (Pegasus-like) topology on an ``m x m`` grid.

    Parameters
    ----------
    m:
        Grid dimension in unit cells.
    t:
        Shore size of the underlying cells (default 4). Must be even so the
        odd-coupler pairing is total.
    """
    if t % 2:
        raise ValueError(f"shore size must be even for odd couplers, got t={t}")
    g = chimera_graph(m, m, t)
    g.graph["family"] = "pegasus-like"
    for row in range(m):
        for col in range(m):
            # Odd couplers: pair up neighbours on each shore.
            for side in (0, 1):
                for k in range(0, t, 2):
                    g.add_edge(
                        chimera_index(row, col, side, k, m, t),
                        chimera_index(row, col, side, k + 1, m, t),
                    )
            # Diagonal inter-cell couplers.
            if row + 1 < m and col + 1 < m:
                for k in range(t):
                    g.add_edge(
                        chimera_index(row, col, 0, k, m, t),
                        chimera_index(row + 1, col + 1, 0, k, m, t),
                    )
            if row + 1 < m and col - 1 >= 0:
                for k in range(t):
                    g.add_edge(
                        chimera_index(row, col, 1, k, m, t),
                        chimera_index(row + 1, col - 1, 1, k, m, t),
                    )
    return g
