"""Minor embedding: mapping logical models onto hardware topologies.

A QUBO's interaction graph is rarely a subgraph of the hardware topology;
it must be embedded as a *graph minor*: each logical variable maps to a
connected chain of physical qubits, chains are disjoint, and every logical
interaction is carried by at least one physical coupler between the
corresponding chains.

:func:`find_embedding` implements a randomized Steiner-growth heuristic in
the spirit of ``minorminer``: logical variables are embedded one at a time
(highest degree first); each new variable's chain is grown from the free
qubit minimizing the total shortest-path distance to all already-embedded
neighbour chains, taking the union of those paths.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.anneal.base import Sampler
from repro.anneal.sampleset import SampleSet
from repro.hardware.chains import (
    chain_break_fraction,
    resolve_chain_breaks,
    uniform_torque_compensation,
)
from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.vartypes import BINARY, SPIN
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "EmbeddingError",
    "find_embedding",
    "verify_embedding",
    "embed_bqm",
    "EmbeddingComposite",
]

Embedding = Dict[Hashable, List[Hashable]]


class EmbeddingError(RuntimeError):
    """Raised when no embedding can be found within the retry budget."""


# --------------------------------------------------------------------- #
# the heuristic
# --------------------------------------------------------------------- #


def find_embedding(
    source: nx.Graph,
    target: nx.Graph,
    seed: SeedLike = None,
    tries: int = 16,
) -> Embedding:
    """Embed *source* as a minor of *target*.

    Returns ``{logical: [physical, ...]}`` with connected, disjoint chains
    covering every source node. Raises :class:`EmbeddingError` when *tries*
    randomized attempts all fail.
    """
    if source.number_of_nodes() == 0:
        return {}
    if source.number_of_nodes() > target.number_of_nodes():
        raise EmbeddingError(
            f"source has {source.number_of_nodes()} nodes but target only "
            f"{target.number_of_nodes()} qubits"
        )
    rng = ensure_rng(seed)
    for _ in range(max(tries, 1)):
        embedding = _attempt(source, target, rng)
        if embedding is not None:
            return embedding
    # Dense sources defeat greedy Steiner growth; on Chimera-family
    # topologies fall back to the deterministic clique embedding, which
    # accommodates any source of up to min(rows, cols) * tile variables.
    if target.graph.get("family") in ("chimera", "pegasus-like", "zephyr-like"):
        embedding = _clique_embedding(list(source.nodes()), target)
        if embedding is not None:
            return embedding
    raise EmbeddingError(
        f"no embedding found in {tries} tries "
        "(chain growth ran out of free qubits); try a larger topology"
    )


def _clique_embedding(
    variables: Sequence[Hashable], target: nx.Graph
) -> Optional[Embedding]:
    """Canonical Chimera clique embedding with cross-shaped chains.

    Variable ``i = (a, b)`` occupies the vertical shore-``b`` qubits of the
    whole column ``a`` plus the horizontal shore-``b`` qubits of the whole
    row ``a``; the two arms meet (and couple) in the diagonal cell
    ``(a, a)``, and any two chains intersect in exactly one cell where a
    ``K_{t,t}`` edge couples them. Supports ``K_{s*t}`` with chain length
    ``rows + cols`` on an ``s = min(rows, cols)`` square.
    """
    from repro.hardware.chimera import chimera_index

    rows = target.graph.get("rows")
    cols = target.graph.get("cols")
    tile = target.graph.get("tile")
    if not all(isinstance(x, int) for x in (rows, cols, tile)):
        return None
    side = min(rows, cols)
    if len(variables) > side * tile:
        return None
    embedding: Embedding = {}
    for i, v in enumerate(variables):
        a, b = divmod(i, tile)
        chain = [chimera_index(r, a, 0, b, cols, tile) for r in range(side)]
        chain += [chimera_index(a, c, 1, b, cols, tile) for c in range(side)]
        if not all(target.has_node(q) for q in chain):
            return None
        embedding[v] = chain
    return embedding


def _attempt(
    source: nx.Graph, target: nx.Graph, rng: np.random.Generator
) -> Optional[Embedding]:
    nodes = list(source.nodes())
    # Degree-descending order with randomized tie-break.
    jitter = dict(zip(nodes, rng.random(len(nodes))))
    nodes.sort(key=lambda v: (-source.degree(v), jitter[v]))
    free = set(target.nodes())
    chains: Embedding = {}
    target_degree = dict(target.degree())

    for v in nodes:
        embedded_nbrs = [u for u in source[v] if u in chains]
        if not embedded_nbrs:
            root = _pick_seed_qubit(free, target_degree, rng)
            if root is None:
                return None
            chains[v] = [root]
            free.discard(root)
            continue
        grown = _grow_chain(target, free, [chains[u] for u in embedded_nbrs], rng)
        if grown is None:
            return None
        chains[v] = grown
        free.difference_update(grown)
    return chains


def _pick_seed_qubit(free: set, degree: Mapping, rng: np.random.Generator):
    """A random free qubit, degree-weighted to keep well-connected regions open."""
    if not free:
        return None
    candidates = list(free)
    weights = np.array([degree[q] + 1.0 for q in candidates])
    weights /= weights.sum()
    return candidates[int(rng.choice(len(candidates), p=weights))]


def _grow_chain(
    target: nx.Graph,
    free: set,
    neighbour_chains: Sequence[Sequence[Hashable]],
    rng: np.random.Generator,
) -> Optional[List[Hashable]]:
    """Pick the free root minimizing total distance to all neighbour chains,
    then take the union of the shortest paths from the root to each chain."""
    distance_maps = []
    parent_maps = []
    for chain in neighbour_chains:
        dist, parent = _multi_source_bfs(target, chain, free)
        distance_maps.append(dist)
        parent_maps.append(parent)

    # Candidate roots: free qubits reachable from every neighbour chain.
    candidates = set(distance_maps[0])
    for dist in distance_maps[1:]:
        candidates &= set(dist)
    candidates &= free
    if not candidates:
        return None
    totals = {q: sum(dist[q] for dist in distance_maps) for q in candidates}
    best_total = min(totals.values())
    best = [q for q, t in totals.items() if t == best_total]
    root = best[int(rng.integers(0, len(best)))]

    chain = {root}
    for dist, parent in zip(distance_maps, parent_maps):
        # Walk from the root back toward the neighbour chain (dist 0 nodes
        # are the chain's own qubits and are excluded).
        node = root
        while dist[node] > 0:
            node = parent[node]
            if dist[node] > 0:
                chain.add(node)
    if not all(q in free for q in chain):
        return None
    return sorted(chain, key=str)


def _multi_source_bfs(
    target: nx.Graph, sources: Sequence[Hashable], free: set
) -> Tuple[Dict[Hashable, int], Dict[Hashable, Hashable]]:
    """BFS from a chain through free qubits only.

    Chain qubits get distance 0; every other visited node is free. Returns
    ``(distance, parent)`` maps over visited nodes.
    """
    dist: Dict[Hashable, int] = {q: 0 for q in sources}
    parent: Dict[Hashable, Hashable] = {}
    queue = deque(sources)
    while queue:
        node = queue.popleft()
        for nbr in target[node]:
            if nbr in dist or nbr not in free:
                continue
            dist[nbr] = dist[node] + 1
            parent[nbr] = node
            queue.append(nbr)
    return dist, parent


# --------------------------------------------------------------------- #
# validation & model embedding
# --------------------------------------------------------------------- #


def verify_embedding(
    embedding: Mapping[Hashable, Sequence[Hashable]],
    source: nx.Graph,
    target: nx.Graph,
) -> None:
    """Raise ``ValueError`` unless *embedding* is a valid minor embedding."""
    seen: Dict[Hashable, Hashable] = {}
    for logical, chain in embedding.items():
        if not chain:
            raise ValueError(f"empty chain for {logical!r}")
        for q in chain:
            if q not in target:
                raise ValueError(f"chain of {logical!r} uses unknown qubit {q!r}")
            if q in seen:
                raise ValueError(
                    f"qubit {q!r} shared by chains of {seen[q]!r} and {logical!r}"
                )
            seen[q] = logical
        if len(chain) > 1 and not nx.is_connected(target.subgraph(chain)):
            raise ValueError(f"chain of {logical!r} is not connected: {list(chain)}")
    missing = set(source.nodes()) - set(embedding)
    if missing:
        raise ValueError(f"embedding misses source nodes: {sorted(missing, key=str)}")
    for u, v in source.edges():
        if not _chains_coupled(embedding[u], embedding[v], target):
            raise ValueError(f"no physical coupler for source edge ({u!r}, {v!r})")


def _chains_coupled(
    chain_u: Sequence[Hashable], chain_v: Sequence[Hashable], target: nx.Graph
) -> bool:
    set_v = set(chain_v)
    return any(nbr in set_v for q in chain_u for nbr in target[q])


def embed_bqm(
    bqm: BinaryQuadraticModel,
    embedding: Mapping[Hashable, Sequence[Hashable]],
    target: nx.Graph,
    chain_strength: float,
) -> BinaryQuadraticModel:
    """Build the physical SPIN model realizing *bqm* under *embedding*.

    Linear biases are split evenly over chain qubits; each logical coupling
    is split evenly over all available physical couplers between the two
    chains; intra-chain couplers get the ferromagnetic ``-chain_strength``.
    """
    if chain_strength <= 0:
        raise ValueError(f"chain_strength must be positive, got {chain_strength}")
    spin = bqm if bqm.vartype is SPIN else bqm.change_vartype(SPIN)
    physical = BinaryQuadraticModel(vartype=SPIN, offset=spin.offset)

    for logical, chain in embedding.items():
        bias = spin.get_linear(logical) / len(chain)
        for q in chain:
            physical.add_variable(q, bias)
        # Ferromagnetic chain bonds on every induced edge, offset-corrected
        # so an unbroken chain contributes zero energy.
        chain_edges = [
            (a, b) for a, b in target.subgraph(chain).edges()
        ]
        for a, b in chain_edges:
            physical.add_interaction(a, b, -chain_strength)
        physical.offset += chain_strength * len(chain_edges)

    for (u, v), coupling in spin.quadratic.items():
        couplers = [
            (a, b)
            for a in embedding[u]
            for b in embedding[v]
            if target.has_edge(a, b)
        ]
        if not couplers:
            raise ValueError(f"no physical coupler available for edge ({u!r}, {v!r})")
        share = coupling / len(couplers)
        for a, b in couplers:
            physical.add_interaction(a, b, share)
    return physical


# --------------------------------------------------------------------- #
# the composite
# --------------------------------------------------------------------- #


class EmbeddingComposite(Sampler):
    """Make a topology-restricted sampler accept arbitrary models.

    Wraps a :class:`~repro.hardware.qpu.SimulatedQPU` (or any sampler
    exposing a ``topology`` graph): finds a minor embedding, builds the
    physical model, samples it, resolves chain breaks, and rescores the
    logical states against the **original** model.

    Parameters
    ----------
    qpu:
        The wrapped device sampler.
    chain_strength:
        Fixed chain strength, or ``None`` for uniform torque compensation.
    resolve:
        Chain-break resolution: ``"majority"`` (default) or ``"discard"``.
    embedding_tries:
        Retry budget for the embedding heuristic.
    """

    def __init__(
        self,
        qpu,
        chain_strength: Optional[float] = None,
        resolve: str = "majority",
        embedding_tries: int = 16,
    ) -> None:
        if not hasattr(qpu, "topology"):
            raise TypeError("qpu must expose a `topology` graph")
        self.qpu = qpu
        self.chain_strength = chain_strength
        self.resolve = resolve
        self.embedding_tries = embedding_tries

    def sample_bqm(
        self, bqm: BinaryQuadraticModel, *, seed: SeedLike = None, **params: Any
    ) -> SampleSet:
        rng = ensure_rng(seed)
        source = bqm.interaction_graph()
        embedding = find_embedding(
            source,
            self.qpu.topology,
            seed=rng,
            tries=self.embedding_tries,
        )
        verify_embedding(embedding, source, self.qpu.topology)

        strength = (
            self.chain_strength
            if self.chain_strength is not None
            else uniform_torque_compensation(bqm.change_vartype(SPIN))
        )
        physical = embed_bqm(bqm, embedding, self.qpu.topology, strength)
        raw = self.qpu.sample_bqm(
            physical, seed=int(rng.integers(0, 2**63 - 1)), **params
        )

        fractions = chain_break_fraction(raw.states, embedding, raw.variables)
        logical_states, order, kept = resolve_chain_breaks(
            raw.states, embedding, raw.variables, method=self.resolve, seed=rng
        )
        if logical_states.shape[0] == 0:
            out = SampleSet.empty(order)
        else:
            scoring = logical_states
            if bqm.vartype is SPIN:
                scoring = (2 * logical_states.astype(int) - 1).astype(np.int8)
            energies = bqm.energies(scoring, order=order)
            out = SampleSet(
                scoring,
                energies,
                variables=order,
                num_occurrences=raw.num_occurrences[kept],
            )
        out.info.update(
            {
                "sampler": f"EmbeddingComposite({type(self.qpu).__name__})",
                "embedding": {k: list(v) for k, v in embedding.items()},
                "chain_strength": float(strength),
                "chain_break_fraction": float(fractions.mean()) if len(fractions) else 0.0,
                "max_chain_length": max((len(c) for c in embedding.values()), default=0),
                "num_physical_qubits": int(sum(len(c) for c in embedding.values())),
                "resolve": self.resolve,
            }
        )
        return out

    def sample_model(self, model, **params: Any) -> SampleSet:
        """Index-based entry point: lift to a BQM and embed."""
        bqm = BinaryQuadraticModel.from_qubo_model(model)
        result = self.sample_bqm(bqm, **params)
        # Restore integer-index column order 0..n-1.
        order = list(range(model.num_variables))
        index = {v: i for i, v in enumerate(result.variables)}
        if len(result) == 0:
            return SampleSet.empty(order)
        cols = [index[i] for i in order]
        return SampleSet(
            result.states[:, cols],
            result.energies,
            variables=order,
            num_occurrences=result.num_occurrences,
            info=result.info,
        )
