"""Simulated quantum-annealing hardware.

The paper's future work is executing its QUBOs on a physical annealer. A
physical annealer differs from the software sampler in three ways that
matter to a solver stack, and this subpackage models all three:

1. **Topology** — qubits live on a fixed sparse graph (Chimera for D-Wave
   2000Q, Pegasus for Advantage); arbitrary QUBOs must be *minor-embedded*:
   each logical variable becomes a connected *chain* of physical qubits.
   See :mod:`~repro.hardware.chimera`, :mod:`~repro.hardware.pegasus`,
   :mod:`~repro.hardware.embedding`.
2. **Chains** — chains are held together by a ferromagnetic coupling whose
   strength must be chosen, and they sometimes *break* (qubits of one chain
   disagree); broken chains must be resolved when unembedding.
   See :mod:`~repro.hardware.chains`.
3. **Noise** — the analog control system applies Gaussian errors to the
   programmed fields and couplings. See :mod:`~repro.hardware.noise`.

:class:`~repro.hardware.qpu.SimulatedQPU` ties the three together behind the
standard :class:`~repro.anneal.base.Sampler` interface, and
:class:`~repro.hardware.embedding.EmbeddingComposite` makes it accept
arbitrary (non-native) models, exactly like D-Wave's composite of the same
name.
"""

from repro.hardware.chimera import chimera_graph
from repro.hardware.pegasus import pegasus_like_graph
from repro.hardware.zephyr import zephyr_like_graph
from repro.hardware.embedding import (
    EmbeddingComposite,
    EmbeddingError,
    find_embedding,
    verify_embedding,
)
from repro.hardware.chains import (
    chain_break_fraction,
    majority_vote,
    resolve_chain_breaks,
    uniform_torque_compensation,
)
from repro.hardware.noise import GaussianNoiseModel
from repro.hardware.qpu import SimulatedQPU

__all__ = [
    "EmbeddingComposite",
    "EmbeddingError",
    "GaussianNoiseModel",
    "SimulatedQPU",
    "chain_break_fraction",
    "chimera_graph",
    "find_embedding",
    "majority_vote",
    "pegasus_like_graph",
    "resolve_chain_breaks",
    "uniform_torque_compensation",
    "verify_embedding",
    "zephyr_like_graph",
]
