"""Chimera topology generator.

Chimera ``C(m, n, t)`` — the D-Wave 2000Q working graph — is an ``m x n``
grid of unit cells; each cell is a complete bipartite ``K_{t,t}`` between
*t* "vertical" and *t* "horizontal" qubits. Vertical qubits couple to the
cells above/below, horizontal qubits to the cells left/right, so every
interior qubit has degree ``t + 2``.

Node labels are integers using the conventional linear index::

    index(row, col, side, k) = ((row * n) + col) * 2t + side * t + k

with ``side = 0`` vertical, ``side = 1`` horizontal, ``k in [0, t)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import networkx as nx

__all__ = ["chimera_graph", "chimera_index", "chimera_coordinates"]


def chimera_index(row: int, col: int, side: int, k: int, n: int, t: int) -> int:
    """Linear qubit index from Chimera coordinates."""
    return ((row * n) + col) * 2 * t + side * t + k


def chimera_coordinates(index: int, n: int, t: int) -> Tuple[int, int, int, int]:
    """Inverse of :func:`chimera_index`: ``(row, col, side, k)``."""
    cell, within = divmod(index, 2 * t)
    side, k = divmod(within, t)
    row, col = divmod(cell, n)
    return row, col, side, k


def chimera_graph(m: int, n: Optional[int] = None, t: int = 4) -> nx.Graph:
    """Build Chimera ``C(m, n, t)``.

    Parameters
    ----------
    m:
        Rows of unit cells.
    n:
        Columns of unit cells (default ``m``).
    t:
        Shore size of each ``K_{t,t}`` cell (default 4, as on hardware).

    Returns
    -------
    A :class:`networkx.Graph` with ``2 t m n`` integer-labelled nodes and
    graph attributes ``rows``, ``cols``, ``tile`` and ``family="chimera"``.
    """
    if n is None:
        n = m
    if m < 1 or n < 1 or t < 1:
        raise ValueError(f"chimera dimensions must be positive, got ({m}, {n}, {t})")
    g = nx.Graph(family="chimera", rows=m, cols=n, tile=t)
    for row in range(m):
        for col in range(n):
            # Intra-cell K_{t,t}.
            for kv in range(t):
                v = chimera_index(row, col, 0, kv, n, t)
                g.add_node(v)
                for kh in range(t):
                    h = chimera_index(row, col, 1, kh, n, t)
                    g.add_edge(v, h)
            # Inter-cell couplers.
            if row + 1 < m:
                for k in range(t):
                    g.add_edge(
                        chimera_index(row, col, 0, k, n, t),
                        chimera_index(row + 1, col, 0, k, n, t),
                    )
            if col + 1 < n:
                for k in range(t):
                    g.add_edge(
                        chimera_index(row, col, 1, k, n, t),
                        chimera_index(row, col + 1, 1, k, n, t),
                    )
    return g
