"""Zephyr-like topology generator.

Zephyr is the topology of D-Wave's Advantage2 generation, raising qubit
degree to 20 (from Pegasus's 15). As with
:mod:`~repro.hardware.pegasus`, the experiments here only depend on the
*degree/chain-length trade-off*, so we generate a **Zephyr-like** graph:
the Pegasus-like enrichment plus a second diagonal coupler family and
next-nearest-cell couplers along rows/columns, pushing interior degree to
the mid-teens. Documented substitution; see DESIGN.md.
"""

from __future__ import annotations

import networkx as nx

from repro.hardware.chimera import chimera_index
from repro.hardware.pegasus import pegasus_like_graph

__all__ = ["zephyr_like_graph"]


def zephyr_like_graph(m: int, t: int = 4) -> nx.Graph:
    """Build the Zephyr-like topology on an ``m x m`` grid.

    Parameters
    ----------
    m:
        Grid dimension in unit cells.
    t:
        Shore size (default 4; must be even).
    """
    g = pegasus_like_graph(m, t)
    g.graph["family"] = "zephyr-like"
    for row in range(m):
        for col in range(m):
            # Second diagonal family (the mirror of Pegasus-like's).
            if row + 1 < m and col - 1 >= 0:
                for k in range(t):
                    g.add_edge(
                        chimera_index(row, col, 0, k, m, t),
                        chimera_index(row + 1, col - 1, 0, k, m, t),
                    )
            if row + 1 < m and col + 1 < m:
                for k in range(t):
                    g.add_edge(
                        chimera_index(row, col, 1, k, m, t),
                        chimera_index(row + 1, col + 1, 1, k, m, t),
                    )
            # Next-nearest-cell couplers (Zephyr's long-range flavour).
            if row + 2 < m:
                for k in range(t):
                    g.add_edge(
                        chimera_index(row, col, 0, k, m, t),
                        chimera_index(row + 2, col, 0, k, m, t),
                    )
            if col + 2 < m:
                for k in range(t):
                    g.add_edge(
                        chimera_index(row, col, 1, k, m, t),
                        chimera_index(row, col + 2, 1, k, m, t),
                    )
    return g
