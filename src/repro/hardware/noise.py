"""Analog control-error model.

Physical annealers realize the programmed ``(h, J)`` imperfectly: each
field/coupler is perturbed by (approximately) independent Gaussian error,
and the programmable range is clamped. This model reproduces both effects
so solver-level mitigations (gauge averaging, rescaling) have something real
to mitigate.
"""

from __future__ import annotations

from typing import Optional

from repro.qubo.bqm import BinaryQuadraticModel
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_non_negative

__all__ = ["GaussianNoiseModel"]


class GaussianNoiseModel:
    """I.i.d. Gaussian perturbation of linear and quadratic biases.

    Parameters
    ----------
    h_sigma:
        Standard deviation of the error on linear biases (default 0.02, the
        order of magnitude D-Wave quotes for integrated control errors).
    j_sigma:
        Standard deviation of the error on couplings (default 0.01).
    h_range, j_range:
        Optional symmetric clamps ``(-r, +r)`` applied after perturbation,
        modelling the finite programmable range.
    """

    def __init__(
        self,
        h_sigma: float = 0.02,
        j_sigma: float = 0.01,
        h_range: Optional[float] = None,
        j_range: Optional[float] = None,
    ) -> None:
        self.h_sigma = check_non_negative("h_sigma", h_sigma)
        self.j_sigma = check_non_negative("j_sigma", j_sigma)
        if h_range is not None and h_range <= 0:
            raise ValueError(f"h_range must be positive, got {h_range}")
        if j_range is not None and j_range <= 0:
            raise ValueError(f"j_range must be positive, got {j_range}")
        self.h_range = h_range
        self.j_range = j_range

    def apply(
        self, bqm: BinaryQuadraticModel, seed: SeedLike = None
    ) -> BinaryQuadraticModel:
        """Return a perturbed copy of *bqm* (the input is untouched)."""
        rng = ensure_rng(seed)
        noisy = bqm.copy()
        for v in noisy.variables:
            bias = noisy.get_linear(v)
            if self.h_sigma:
                bias += rng.normal(0.0, self.h_sigma)
            if self.h_range is not None:
                bias = min(max(bias, -self.h_range), self.h_range)
            noisy.set_linear(v, bias)
        for (u, v), coupling in bqm.quadratic.items():
            perturbed = coupling
            if self.j_sigma:
                perturbed += rng.normal(0.0, self.j_sigma)
            if self.j_range is not None:
                perturbed = min(max(perturbed, -self.j_range), self.j_range)
            # add_interaction accumulates; add the delta.
            noisy.add_interaction(u, v, perturbed - coupling)
        return noisy

    def __repr__(self) -> str:
        return (
            f"GaussianNoiseModel(h_sigma={self.h_sigma}, j_sigma={self.j_sigma}, "
            f"h_range={self.h_range}, j_range={self.j_range})"
        )
