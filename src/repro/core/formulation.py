"""Base class shared by every §4 formulation.

A :class:`StringFormulation` owns the full life cycle of one constraint:

* ``build_model()`` — construct (and cache) the QUBO of the constraint;
* ``decode(state)`` — map an annealer state back to the constraint's output
  domain (a string for generation constraints, an index for *includes*);
* ``verify(decoded)`` — check the decoded output against the constraint's
  concrete semantics (the "consistency check" of classical SMT solving);
* ``ground_energy()`` — the optimal objective value when known in closed
  form, used to measure annealer success probabilities.
"""

from __future__ import annotations

import abc
from typing import Any, List, Optional

import numpy as np

from repro.core.encoding import char_to_bits, state_to_string, states_to_strings
from repro.qubo.model import QuboModel
from repro.utils.asciitab import CHAR_BITS

__all__ = ["StringFormulation", "FormulationError", "encode_char_into_diagonal"]


class FormulationError(ValueError):
    """Raised when a constraint is malformed or trivially unsatisfiable."""


def encode_char_into_diagonal(
    model: QuboModel,
    position: int,
    char: str,
    strength: float,
    accumulate: bool = False,
) -> None:
    """Write the ±strength diagonal pattern of *char* at *position*.

    The paper's core encoding move: bit *k* of the character at string
    position *p* corresponds to variable ``7 p + k``; its diagonal entry is
    ``-strength`` when the target bit is 1 (reward setting it) and
    ``+strength`` when the target bit is 0 (penalize setting it).

    With ``accumulate=False`` (default) existing entries are overwritten —
    the semantics §4.3 relies on.
    """
    bits = char_to_bits(char)
    base = position * CHAR_BITS
    for k in range(CHAR_BITS):
        value = -strength if bits[k] else strength
        if accumulate:
            model.add_linear(base + k, value)
        else:
            model.set_linear(base + k, value)


class StringFormulation(abc.ABC):
    """One string constraint, lowered to QUBO per the paper's §4."""

    #: Short machine-readable identifier (e.g. ``"equality"``).
    name: str = "abstract"

    def __init__(self, penalty_strength: float = 1.0) -> None:
        # The paper fixes A = 1 for all formulations ("we find that this
        # coefficient works best with our simulated annealer"); it is kept
        # configurable for the penalty-sweep ablation.
        if penalty_strength <= 0:
            raise FormulationError(
                f"penalty strength A must be positive, got {penalty_strength}"
            )
        self.penalty_strength = float(penalty_strength)
        self._model: Optional[QuboModel] = None

    # ------------------------------------------------------------------ #
    # model construction
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _build(self) -> QuboModel:
        """Construct the QUBO (called once; the result is cached)."""

    def build_model(self) -> QuboModel:
        """The constraint's QUBO (cached across calls)."""
        if self._model is None:
            self._model = self._build()
        return self._model

    @property
    def num_variables(self) -> int:
        return self.build_model().num_variables

    # ------------------------------------------------------------------ #
    # decode / verify
    # ------------------------------------------------------------------ #

    def decode(self, state: np.ndarray) -> Any:
        """Map an annealer state to the output domain (default: a string)."""
        return state_to_string(np.asarray(state))

    def decode_states(self, states: np.ndarray) -> List[Any]:
        """Decode a whole ``(R, n)`` batch of states at once.

        The batched counterpart of :meth:`decode`, used by success-rate
        accounting: when the formulation keeps the default string decoding
        the whole batch is decoded in one vectorized pass
        (:func:`~repro.core.encoding.states_to_strings`); formulations
        that override :meth:`decode` (index outputs, stripped paddings)
        transparently fall back to a per-row loop, so the two methods can
        never disagree.
        """
        states = np.atleast_2d(np.asarray(states))
        if type(self).decode is StringFormulation.decode:
            return states_to_strings(states)
        return [self.decode(row) for row in states]

    @abc.abstractmethod
    def verify(self, decoded: Any) -> bool:
        """Concrete-semantics check of a decoded output."""

    def ground_energy(self) -> Optional[float]:
        """Optimal objective value, or ``None`` when not known in closed form.

        For purely diagonal models the optimum is the sum of the negative
        diagonal entries (each bit independently takes its preferred
        value); subclasses with couplings override or return ``None``.
        """
        model = self.build_model()
        if model.num_interactions:
            return None
        diagonal = model.linear_vector()
        return float(np.minimum(diagonal, 0.0).sum() + model.offset)

    # ------------------------------------------------------------------ #
    # description
    # ------------------------------------------------------------------ #

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{type(self).__name__}(A={self.penalty_strength})"

    def __repr__(self) -> str:
        return self.describe()
