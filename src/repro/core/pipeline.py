"""Combining constraints (paper §4.12).

The paper combines constraints **sequentially**: the decoded output of one
solver run becomes the input of the next formulation — e.g. first reverse
``"hello"``, then feed ``"olleh"`` into a replaceAll. A pipeline is a list
of :class:`PipelineStage` objects, each a named factory that receives the
previous stage's output and returns a formulation.

The library also supports the *conjunctive* combination (summing QUBOs of
constraints over the same variables) through
:func:`repro.qubo.algebra.add_models`; the SMT compiler uses that path when
several constraints talk about one variable. This module is the paper's
sequential semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.core.formulation import StringFormulation
from repro.core.solver import SolveResult, StringQuboSolver

__all__ = ["PipelineStage", "PipelineResult", "ConstraintPipeline"]


@dataclass(frozen=True)
class PipelineStage:
    """One step of a sequential constraint pipeline.

    ``build`` receives the previous stage's decoded output (or the
    pipeline's initial input for the first stage) and returns the
    formulation to solve.
    """

    name: str
    build: Callable[[Any], StringFormulation]


@dataclass
class PipelineResult:
    """Outcome of a full pipeline run."""

    stages: List[SolveResult] = field(default_factory=list)

    @property
    def output(self) -> Any:
        """The final stage's decoded output."""
        if not self.stages:
            raise ValueError("pipeline produced no results")
        return self.stages[-1].output

    @property
    def ok(self) -> bool:
        """True when every stage verified."""
        return bool(self.stages) and all(r.ok for r in self.stages)

    @property
    def total_wall_time(self) -> float:
        return sum(r.wall_time for r in self.stages)

    def __repr__(self) -> str:
        outputs = [r.output for r in self.stages]
        return f"PipelineResult(ok={self.ok}, outputs={outputs!r})"


class ConstraintPipeline:
    """Sequential multi-constraint solving (§4.12).

    Examples
    --------
    Reverse ``"hello"`` then replace ``'e'`` with ``'a'`` (Table 1 row 1)::

        pipeline = ConstraintPipeline([
            PipelineStage("reverse", lambda prev: StringReversal(prev)),
            PipelineStage("replace_all", lambda prev: StringReplaceAll(prev, "e", "a")),
        ])
        result = pipeline.run(solver, initial="hello")
        result.output   # 'ollah'
    """

    def __init__(self, stages: Sequence[PipelineStage]) -> None:
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"stage names must be unique, got {names}")
        self.stages = list(stages)

    def run(
        self,
        solver: Optional[StringQuboSolver] = None,
        initial: Any = None,
        policy: Any = None,
        metrics: Any = None,
        **solve_params: Any,
    ) -> PipelineResult:
        """Execute all stages, threading each output into the next stage.

        Parameters
        ----------
        policy:
            Optional :class:`~repro.service.policy.RetryPolicy` applied per
            stage: a stage whose solve does not verify is retried under the
            shared robustness layer (fresh per-solve seeds make retries
            meaningful). Without a policy each stage is solved exactly once,
            the historical behavior.
        metrics:
            Optional :class:`~repro.service.metrics.MetricsRegistry`; when
            given, per-stage wall times are recorded as
            ``pipeline.stage.<name>`` histograms.
        """
        solver = solver if solver is not None else StringQuboSolver()
        result = PipelineResult()
        current = initial
        for stage in self.stages:
            formulation = stage.build(current)
            timer = (
                metrics.time(f"pipeline.stage.{stage.name}")
                if metrics is not None
                else _null_context()
            )
            with timer:
                if policy is None:
                    stage_result = solver.solve(formulation, **solve_params)
                else:
                    stage_result = self._solve_with_policy(
                        solver, formulation, stage.name, policy, **solve_params
                    )
            result.stages.append(stage_result)
            current = stage_result.output
        if metrics is not None:
            metrics.counter("pipeline.runs").inc()
            if result.ok:
                metrics.counter("pipeline.ok").inc()
        return result

    @staticmethod
    def _solve_with_policy(
        solver: StringQuboSolver,
        formulation: StringFormulation,
        stage_name: str,
        policy: Any,
        **solve_params: Any,
    ) -> SolveResult:
        """Retry an unverified stage solve under the shared policy."""
        from repro.service.policy import RetryExhaustedError

        def attempt(_index: int) -> SolveResult:
            return solver.solve(formulation, **solve_params)

        try:
            outcome = policy.run(
                attempt,
                succeeded=lambda r: r.ok,
                description=f"pipeline stage {stage_name!r}",
            )
        except RetryExhaustedError as exc:
            if exc.last_result is not None:
                return exc.last_result
            raise
        return outcome.result


def _null_context():
    import contextlib

    return contextlib.nullcontext()
