"""Palindrome generation (paper §4.10).

For every mirrored character pair ``(j, N-1-j)`` and every bit ``i`` within
the character, the objective adds the agreement gadget

    A * (x_a + x_b - 2 x_a x_b)       a = 7j + i,  b = 7(N-1-j) + i

which is 0 when the bits agree and A when they differ — so the matrix
carries ``+A`` on both diagonals and ``-2A`` on the coupling, exactly the
fragment shown in the paper's Table 1 (diag 1.00, off-diagonal −2.00).

Every mirrored bit string is a ground state (energy 0); the annealer picks
one arbitrarily, which is why the paper's sample output is the arbitrary-
looking palindrome ``OnFFnO``. An optional *printable bias* softly steers
both halves toward a mirrored printable template without breaking the
palindrome property of the ground-state set.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.encoding import encode_string, state_to_string
from repro.core.formulation import FormulationError, StringFormulation
from repro.qubo.model import QuboModel
from repro.utils.asciitab import CHAR_BITS, random_printable
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["PalindromeGeneration"]


class PalindromeGeneration(StringFormulation):
    """Generate a palindrome of a given length.

    Parameters
    ----------
    length:
        Number of characters N.
    printable_bias:
        Strength (as a fraction of A; default 0 = paper-faithful) of a soft
        diagonal preference for a mirrored printable template. Must stay
        well below A so mirror agreement dominates.
    seed:
        RNG seed for the template when *printable_bias* > 0.
    """

    name = "palindrome"

    def __init__(
        self,
        length: int,
        penalty_strength: float = 1.0,
        printable_bias: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(penalty_strength)
        if length < 1:
            raise FormulationError(f"length must be >= 1, got {length}")
        if not (0 <= printable_bias < 0.5):
            raise FormulationError(
                f"printable_bias must lie in [0, 0.5), got {printable_bias}"
            )
        self.length = int(length)
        self.printable_bias = float(printable_bias)
        self._rng = ensure_rng(seed)
        self._template: Optional[str] = None

    def template(self) -> str:
        """Mirrored printable template used when *printable_bias* > 0."""
        if self._template is None:
            half = random_printable(self._rng, (self.length + 1) // 2)
            back = half[: self.length // 2][::-1]
            self._template = half + back
        return self._template

    def _build(self) -> QuboModel:
        n = self.length
        a = self.penalty_strength
        model = QuboModel(CHAR_BITS * n)
        for j in range(n // 2):
            mirror = n - 1 - j
            for i in range(CHAR_BITS):
                front = CHAR_BITS * j + i
                back = CHAR_BITS * mirror + i
                model.add_linear(front, a)
                model.add_linear(back, a)
                model.add_quadratic(front, back, -2.0 * a)
        if self.printable_bias > 0.0:
            bias = self.printable_bias * a
            bits = encode_string(self.template())
            for idx, bit in enumerate(bits):
                model.add_linear(idx, -bias if bit else bias)
        return model

    # ------------------------------------------------------------------ #

    def verify(self, decoded: str) -> bool:
        """Bit-level mirror check (equivalent to character-level for ASCII)."""
        if len(decoded) != self.length:
            return False
        return decoded == decoded[::-1]

    def ground_energy(self) -> Optional[float]:
        if self.printable_bias > 0.0:
            # The biased optimum is the template's energy: mirror terms 0
            # plus every soft bit at its preferred value.
            bias = self.printable_bias * self.penalty_strength
            return -bias * float(encode_string(self.template()).sum())
        return 0.0

    def describe(self) -> str:
        return (
            f"PalindromeGeneration(length={self.length}, "
            f"A={self.penalty_strength}, printable_bias={self.printable_bias})"
        )
