"""The paper's contribution: QUBO formulations for string constraints.

Each module implements one of the paper's §4 formulations. All of them
share the 7-bit ASCII encoding of §4's preamble (see
:mod:`~repro.core.encoding`): a string of length *n* becomes ``7 n`` binary
variables, most-significant bit first within each character.

The formulations are *objects*: they build a
:class:`~repro.qubo.model.QuboModel`, decode annealer states back to
strings (or indices), and verify decoded solutions against the constraint's
concrete semantics. :class:`~repro.core.solver.StringQuboSolver` drives the
full Figure-1 pipeline: formulation → QUBO → annealer → decode → verify.
"""

from repro.core.encoding import (
    char_to_bits,
    decode_state,
    encode_string,
    state_to_string,
    states_to_strings,
)
from repro.core.formulation import FormulationError, StringFormulation
from repro.core.equality import StringEquality
from repro.core.concat import StringConcatenation
from repro.core.substring import SubstringMatching
from repro.core.includes import StringIncludes
from repro.core.indexof import SubstringIndexOf
from repro.core.length import StringLength
from repro.core.replace import StringReplace, StringReplaceAll
from repro.core.reverse import StringReversal
from repro.core.palindrome import PalindromeGeneration
from repro.core.regex import RegexMatching, parse_pattern, regex_matches
from repro.core.pipeline import ConstraintPipeline, PipelineResult, PipelineStage
from repro.core.solver import SolveResult, StringQuboSolver
from repro.core.affixes import (
    StringCharAt,
    StringPrefixOf,
    StringSubstr,
    StringSuffixOf,
)
from repro.core.notequals import StringNotEquals
from repro.core.closest import ClosestStringFormulation

__all__ = [
    "ClosestStringFormulation",
    "ConstraintPipeline",
    "StringCharAt",
    "StringNotEquals",
    "StringPrefixOf",
    "StringSubstr",
    "StringSuffixOf",
    "FormulationError",
    "PalindromeGeneration",
    "PipelineResult",
    "PipelineStage",
    "RegexMatching",
    "SolveResult",
    "StringConcatenation",
    "StringEquality",
    "StringFormulation",
    "StringIncludes",
    "StringLength",
    "StringQuboSolver",
    "StringReplace",
    "StringReplaceAll",
    "StringReversal",
    "SubstringIndexOf",
    "SubstringMatching",
    "char_to_bits",
    "decode_state",
    "encode_string",
    "parse_pattern",
    "regex_matches",
    "state_to_string",
    "states_to_strings",
]
