"""String replace and replaceAll (paper §4.7, §4.8).

Both are equality-style: while building the diagonal, each input position
is checked against the character to replace; matching positions get the
replacement's bit pattern, others keep their own. ``replaceAll`` substitutes
every occurrence (an operation the paper notes z3 lacks), ``replace`` only
the first.
"""

from __future__ import annotations

from repro.core.formulation import (
    FormulationError,
    StringFormulation,
    encode_char_into_diagonal,
)
from repro.qubo.model import QuboModel
from repro.utils.asciitab import CHAR_BITS, is_ascii7

__all__ = ["StringReplaceAll", "StringReplace"]


class StringReplaceAll(StringFormulation):
    """Generate *source* with every occurrence of *old* replaced by *new*.

    Parameters
    ----------
    source:
        The input string S.
    old:
        The single character x to replace.
    new:
        The single character y to substitute.
    """

    name = "replace_all"
    _count: int | None = None  # None = all occurrences

    def __init__(
        self, source: str, old: str, new: str, penalty_strength: float = 1.0
    ) -> None:
        super().__init__(penalty_strength)
        if not is_ascii7(source):
            raise FormulationError(f"source must be 7-bit ASCII: {source!r}")
        if len(old) != 1 or len(new) != 1:
            raise FormulationError(
                "the paper's formulation replaces single characters; "
                f"got old={old!r}, new={new!r}"
            )
        if not is_ascii7(old) or not is_ascii7(new):
            raise FormulationError("replacement characters must be 7-bit ASCII")
        self.source = source
        self.old = old
        self.new = new

    @property
    def expected(self) -> str:
        """The concrete result of the replacement."""
        if self._count is None:
            return self.source.replace(self.old, self.new)
        return self.source.replace(self.old, self.new, self._count)

    def _build(self) -> QuboModel:
        model = QuboModel(CHAR_BITS * len(self.source))
        # Walk the input; matching positions take the replacement's pattern.
        for position, char in enumerate(self.expected):
            encode_char_into_diagonal(model, position, char, self.penalty_strength)
        return model

    def verify(self, decoded: str) -> bool:
        if decoded != self.expected:
            return False
        if self._count is None and self.old != self.new:
            # replaceAll postcondition: no occurrences of `old` survive.
            return self.old not in decoded
        return True

    def describe(self) -> str:
        return (
            f"{type(self).__name__}(source={self.source!r}, old={self.old!r}, "
            f"new={self.new!r}, A={self.penalty_strength})"
        )


class StringReplace(StringReplaceAll):
    """Generate *source* with only the **first** occurrence replaced (§4.8)."""

    name = "replace"
    _count = 1
