"""String equality (paper §4.1).

Generate a string *S* equal to a target *T*: each of the ``7 |T|`` bits has
a diagonal entry ``-A`` when the target bit is 1 and ``+A`` when it is 0.
The QUBO is purely diagonal, so the ground state is exactly the target's
binary image and the ground energy is ``-A * popcount(f(T))``.
"""

from __future__ import annotations

from repro.core.encoding import encode_string
from repro.core.formulation import (
    FormulationError,
    StringFormulation,
    encode_char_into_diagonal,
)
from repro.qubo.model import QuboModel
from repro.utils.asciitab import CHAR_BITS, is_ascii7

__all__ = ["StringEquality"]


class StringEquality(StringFormulation):
    """Generate a string equal to *target*.

    Parameters
    ----------
    target:
        The string to generate (7-bit ASCII).
    penalty_strength:
        The paper's coefficient ``A`` (default 1).
    """

    name = "equality"

    def __init__(self, target: str, penalty_strength: float = 1.0) -> None:
        super().__init__(penalty_strength)
        if not is_ascii7(target):
            raise FormulationError(f"target must be 7-bit ASCII: {target!r}")
        self.target = target

    def _build(self) -> QuboModel:
        model = QuboModel(CHAR_BITS * len(self.target))
        for position, char in enumerate(self.target):
            encode_char_into_diagonal(model, position, char, self.penalty_strength)
        return model

    def verify(self, decoded: str) -> bool:
        return decoded == self.target

    def ground_energy(self) -> float:
        # -A per 1-bit of the target (0-bits contribute zero at x = 0).
        ones = int(encode_string(self.target).sum())
        return -self.penalty_strength * ones

    def describe(self) -> str:
        return f"StringEquality(target={self.target!r}, A={self.penalty_strength})"
