"""Substring matching (paper §4.3).

Generate a string of a given total length containing a substring. The
paper's construction encodes the substring at **every** feasible start
position, *overwriting* conflicting entries, so the substring effectively
lands at the last feasible start while residue from earlier encodings fills
part of the prefix — the paper's own example: generating a 4-character
string containing ``"cat"`` yields the encoding of ``"ccat"``.

Positions never written remain unconstrained (zero diagonal), so the
annealer may put *any* bit pattern there; the paper marks these ``?``.
Verification only checks the substring property.
"""

from __future__ import annotations

from typing import Optional

from repro.core.formulation import (
    FormulationError,
    StringFormulation,
    encode_char_into_diagonal,
)
from repro.qubo.model import QuboModel
from repro.utils.asciitab import CHAR_BITS, is_ascii7

__all__ = ["SubstringMatching"]


class SubstringMatching(StringFormulation):
    """Generate a *total_length* string that contains *substring*.

    Parameters
    ----------
    total_length:
        Length of the generated string T.
    substring:
        The required substring S (must fit: ``len(S) <= total_length``).
    """

    name = "substring"

    def __init__(
        self, total_length: int, substring: str, penalty_strength: float = 1.0
    ) -> None:
        super().__init__(penalty_strength)
        if not substring:
            raise FormulationError("substring must be non-empty")
        if not is_ascii7(substring):
            raise FormulationError(f"substring must be 7-bit ASCII: {substring!r}")
        if total_length < len(substring):
            raise FormulationError(
                f"total_length {total_length} shorter than substring "
                f"{substring!r} ({len(substring)} chars)"
            )
        self.total_length = int(total_length)
        self.substring = substring

    @property
    def last_start(self) -> int:
        """The final (winning) start position of the overwrite cascade."""
        return self.total_length - len(self.substring)

    def expected_prefix(self) -> str:
        """The deterministic portion of the encoded string.

        Writing S at starts ``0, 1, ..., last`` with overwrites leaves
        position ``p < last`` holding ``S[0]``'s encoding shifted: position
        ``p`` was last written when the start was ``p`` (it wrote ``S[0]``),
        so the prefix is ``S[0] * last`` followed by the full substring —
        e.g. ``"c" + "cat"`` = ``"ccat"``.
        """
        return self.substring[0] * self.last_start + self.substring

    def _build(self) -> QuboModel:
        model = QuboModel(CHAR_BITS * self.total_length)
        for start in range(self.last_start + 1):
            for offset, char in enumerate(self.substring):
                encode_char_into_diagonal(
                    model, start + offset, char, self.penalty_strength
                )
        return model

    def verify(self, decoded: str) -> bool:
        return len(decoded) == self.total_length and self.substring in decoded

    def describe(self) -> str:
        return (
            f"SubstringMatching(total_length={self.total_length}, "
            f"substring={self.substring!r}, A={self.penalty_strength})"
        )
