"""String includes (paper §4.4).

Decision variant of substring search: *where* in a larger string T does a
substring S begin? One indicator variable per candidate start position,
three energy terms:

* **match reward** — ``-A * (number of matching characters)`` on the
  diagonal of each candidate position (the paper's δ-sum objective);
* **one-hot penalty** — ``+B`` on every pair ``x_i x_j``, so selecting more
  than one start costs energy;
* **first-match bias** — a cumulative penalty ``C_i`` added to the diagonal
  of *full-match* positions, with ``C`` increasing by ``D`` at each further
  match, steering the annealer to the earliest occurrence (the paper's
  §4.4.3 recurrence, reproduced literally: the match at index 0 carries no
  penalty because the recurrence's ``i = 0`` branch wins).

Defaults: ``B = 2A`` and ``D = A / (2 (n - m + 1))``, chosen so a full
match (energy ``-A m + C_i``) always beats both the empty selection (0)
and any partial-match window (``>= -A (m - 1)``).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.formulation import FormulationError, StringFormulation
from repro.qubo.model import QuboModel
from repro.utils.asciitab import is_ascii7

__all__ = ["StringIncludes"]


class StringIncludes(StringFormulation):
    """Find the start index of *needle* within *haystack*.

    ``decode`` returns an **index** (or −1): the position whose indicator
    variable is set; ``verify`` checks it against Python's ``str.find``
    semantics (the earliest occurrence).

    .. note::
       The paper's objective rewards *partial* matches, so when the needle
       does not occur at all but some window shares characters with it, the
       ground state still selects that window and verification fails. This
       is a faithful reproduction of the formulation as published; see
       DESIGN.md §6.
    """

    name = "includes"

    def __init__(
        self,
        haystack: str,
        needle: str,
        penalty_strength: float = 1.0,
        one_hot_penalty: Optional[float] = None,
        first_match_increment: Optional[float] = None,
    ) -> None:
        super().__init__(penalty_strength)
        if not needle:
            raise FormulationError("needle must be non-empty")
        if not is_ascii7(haystack) or not is_ascii7(needle):
            raise FormulationError("strings must be 7-bit ASCII")
        if len(needle) > len(haystack):
            raise FormulationError(
                f"needle {needle!r} longer than haystack {haystack!r}"
            )
        self.haystack = haystack
        self.needle = needle
        self.num_positions = len(haystack) - len(needle) + 1
        a = self.penalty_strength
        # B must dominate the reward of a *second* full-match selection
        # (-A m), or the one-hot constraint is not actually enforced.
        self.one_hot_penalty = (
            float(one_hot_penalty)
            if one_hot_penalty is not None
            else a * (len(needle) + 1.0)
        )
        self.first_match_increment = (
            float(first_match_increment)
            if first_match_increment is not None
            else a / (2.0 * self.num_positions)
        )
        if self.one_hot_penalty <= 0:
            raise FormulationError("one_hot_penalty B must be positive")
        if self.first_match_increment < 0:
            raise FormulationError("first_match_increment D must be non-negative")

    # ------------------------------------------------------------------ #

    def match_counts(self) -> np.ndarray:
        """δ-sum per window: matching characters of S against T at each start."""
        counts = np.zeros(self.num_positions, dtype=np.int64)
        for i in range(self.num_positions):
            window = self.haystack[i : i + len(self.needle)]
            counts[i] = sum(a == b for a, b in zip(window, self.needle))
        return counts

    def full_match_positions(self) -> List[int]:
        """Start indices where the whole needle matches."""
        m = len(self.needle)
        return [
            i
            for i in range(self.num_positions)
            if self.haystack[i : i + m] == self.needle
        ]

    def cumulative_penalties(self) -> np.ndarray:
        """The paper's ``C_i`` sequence (§4.4.3), computed literally."""
        m = len(self.needle)
        c = np.zeros(self.num_positions, dtype=np.float64)
        for i in range(self.num_positions):
            if i == 0:
                c[i] = 0.0
            elif self.haystack[i : i + m] == self.needle:
                c[i] = c[i - 1] + self.first_match_increment
            else:
                c[i] = c[i - 1]
        return c

    def _build(self) -> QuboModel:
        model = QuboModel(self.num_positions)
        a = self.penalty_strength
        counts = self.match_counts()
        penalties = self.cumulative_penalties()
        full = set(self.full_match_positions())
        for i in range(self.num_positions):
            diagonal = -a * float(counts[i])
            if i in full:
                diagonal += penalties[i]
            model.set_linear(i, diagonal)
        for i in range(self.num_positions):
            for j in range(i + 1, self.num_positions):
                model.set_quadratic(i, j, self.one_hot_penalty)
        return model

    # ------------------------------------------------------------------ #

    def decode(self, state: np.ndarray) -> int:
        """The selected start index; −1 when no indicator is set.

        When the one-hot penalty failed to enforce uniqueness, the earliest
        selected index is reported (and ``verify`` will catch mismatches).
        """
        state = np.asarray(state)
        selected = np.nonzero(state == 1)[0]
        return int(selected[0]) if selected.size else -1

    def verify(self, decoded: int) -> bool:
        return decoded == self.haystack.find(self.needle)

    def ground_energy(self) -> Optional[float]:
        """Exact optimum, by inspection of the one-hot structure.

        The one-hot penalty makes multi-selection dominated, so the optimum
        is the best single-selection energy (or 0 for no selection). Only
        valid when ``B > A * len(needle)`` — with a weaker user-supplied B
        the true optimum may select several windows, and ``None`` is
        returned.
        """
        a = self.penalty_strength
        if self.one_hot_penalty <= a * len(self.needle):
            return None
        counts = self.match_counts()
        penalties = self.cumulative_penalties()
        full = set(self.full_match_positions())
        best = 0.0
        for i in range(self.num_positions):
            energy = -a * float(counts[i])
            if i in full:
                energy += penalties[i]
            best = min(best, energy)
        return best

    def describe(self) -> str:
        return (
            f"StringIncludes(haystack={self.haystack!r}, needle={self.needle!r}, "
            f"A={self.penalty_strength}, B={self.one_hot_penalty}, "
            f"D={self.first_match_increment})"
        )
