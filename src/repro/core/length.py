"""String length (paper §4.6).

The paper's formulation works at the **bit level**: to say "the string has
length L", the first ``7 L`` diagonal entries are ``-A`` (those bits should
be 1) and the remaining ``7 (n - L)`` are ``+A`` (those bits should be 0).

Reproduced literally as ``mode="paper"`` — with the caveat (DESIGN.md §6)
that an all-ones character is ``0x7F`` (DEL), so the ground state decodes
to DEL-padding rather than readable text. ``mode="decodable"`` is our
documented variant: content positions get a *soft* printable preference and
pad positions are pinned to NUL, so the decoded prefix is a readable string
of exactly L characters followed by NULs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.formulation import (
    FormulationError,
    StringFormulation,
    encode_char_into_diagonal,
)
from repro.qubo.model import QuboModel
from repro.utils.asciitab import CHAR_BITS, random_printable
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["StringLength"]

_NUL = "\x00"
_DEL = "\x7f"


class StringLength(StringFormulation):
    """Constrain an *n*-character buffer to an effective length *L*.

    Parameters
    ----------
    buffer_length:
        Number of character slots n.
    length:
        Desired length L (``0 <= L <= n``).
    mode:
        ``"paper"`` (default) — the literal §4.6 objective: first ``7 L``
        bits 1, rest 0. ``"decodable"`` — printable content, NUL padding.
    soft_factor:
        Strength multiplier for the soft printable preference in
        ``"decodable"`` mode (default 0.5).
    seed:
        RNG seed for the random printable targets in ``"decodable"`` mode.
    """

    name = "length"

    def __init__(
        self,
        buffer_length: int,
        length: int,
        penalty_strength: float = 1.0,
        mode: str = "paper",
        soft_factor: float = 0.5,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(penalty_strength)
        if buffer_length < 0:
            raise FormulationError(f"buffer_length must be >= 0, got {buffer_length}")
        if not (0 <= length <= buffer_length):
            raise FormulationError(
                f"length must lie in [0, {buffer_length}], got {length}"
            )
        if mode not in ("paper", "decodable"):
            raise FormulationError(f"mode must be 'paper' or 'decodable', got {mode!r}")
        if not (0 < soft_factor < 1):
            raise FormulationError(f"soft_factor must lie in (0, 1), got {soft_factor}")
        self.buffer_length = int(buffer_length)
        self.length = int(length)
        self.mode = mode
        self.soft_factor = float(soft_factor)
        self._rng = ensure_rng(seed)
        self._content: Optional[str] = None

    def content_characters(self) -> str:
        """Soft targets for the content positions (``decodable`` mode)."""
        if self._content is None:
            self._content = random_printable(self._rng, self.length)
        return self._content

    def _build(self) -> QuboModel:
        n_bits = CHAR_BITS * self.buffer_length
        model = QuboModel(n_bits)
        a = self.penalty_strength
        if self.mode == "paper":
            boundary = CHAR_BITS * self.length
            for bit in range(n_bits):
                model.set_linear(bit, -a if bit < boundary else a)
            return model
        content = self.content_characters()
        for position in range(self.buffer_length):
            if position < self.length:
                encode_char_into_diagonal(
                    model, position, content[position], self.soft_factor * a
                )
            else:
                encode_char_into_diagonal(model, position, _NUL, a)
        return model

    # ------------------------------------------------------------------ #

    def decode(self, state: np.ndarray):
        """Paper mode returns the raw bit vector; decodable mode a string."""
        if self.mode == "paper":
            return np.asarray(state).astype(np.int8)
        from repro.core.encoding import state_to_string

        return state_to_string(np.asarray(state)).rstrip(_NUL)

    def verify(self, decoded) -> bool:
        if self.mode == "paper":
            bits = np.asarray(decoded)
            boundary = CHAR_BITS * self.length
            return bool(
                bits.size == CHAR_BITS * self.buffer_length
                and np.all(bits[:boundary] == 1)
                and np.all(bits[boundary:] == 0)
            )
        return len(decoded) == self.length and _NUL not in decoded

    def effective_length(self, decoded) -> int:
        """Measured length of a decoded solution, in characters."""
        if self.mode == "paper":
            bits = np.asarray(decoded)
            # Count leading all-ones characters (the paper's DEL padding).
            chars = bits.reshape(-1, CHAR_BITS)
            full = np.all(chars == 1, axis=1)
            run = 0
            for flag in full:
                if not flag:
                    break
                run += 1
            return run
        return len(decoded)

    def describe(self) -> str:
        return (
            f"StringLength(buffer={self.buffer_length}, L={self.length}, "
            f"mode={self.mode!r}, A={self.penalty_strength})"
        )
