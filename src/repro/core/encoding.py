"""7-bit ASCII string <-> binary-variable encoding (paper §4, preamble).

The paper defines ``bin : Σ -> {0,1}^7`` mapping each character to a 7-bit
vector, and ``f : Σ^n -> {0,1}^{7n}`` concatenating per-character vectors:
``f(s) = bin(s_1) ‖ bin(s_2) ‖ ... ‖ bin(s_n)``.

Bit order is **most-significant first**, matching the paper's worked
example: 'a' = 97 = ``1100001`` gives diagonal ``[-A,-A,+A,+A,+A,+A,-A]``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.asciitab import ALPHABET_SIZE, CHAR_BITS

__all__ = [
    "char_to_bits",
    "bits_to_char",
    "encode_string",
    "state_to_string",
    "states_to_strings",
    "decode_state",
    "variable_index",
]

#: Shift amounts producing MSB-first bit order.
_SHIFTS = np.arange(CHAR_BITS - 1, -1, -1, dtype=np.uint8)


def char_to_bits(char: str) -> np.ndarray:
    """``bin(c)``: the 7-bit MSB-first vector of one character."""
    if len(char) != 1:
        raise ValueError(f"expected a single character, got {char!r}")
    code = ord(char)
    if code >= ALPHABET_SIZE:
        raise ValueError(
            f"character {char!r} (code point {code}) does not fit in "
            f"{CHAR_BITS}-bit ASCII"
        )
    return ((code >> _SHIFTS) & 1).astype(np.int8)


def bits_to_char(bits: np.ndarray) -> str:
    """Inverse of :func:`char_to_bits`."""
    bits = np.asarray(bits)
    if bits.shape != (CHAR_BITS,):
        raise ValueError(f"expected {CHAR_BITS} bits, got shape {bits.shape}")
    code = int((bits.astype(np.int64) << _SHIFTS).sum())
    return chr(code)


def encode_string(text: str) -> np.ndarray:
    """``f(s)``: the ``7 |s|`` binary vector of a whole string (vectorized)."""
    if not text:
        return np.zeros(0, dtype=np.int8)
    codes = np.frombuffer(text.encode("ascii", errors="strict"), dtype=np.uint8)
    if np.any(codes >= ALPHABET_SIZE):
        raise ValueError(f"string contains non-7-bit characters: {text!r}")
    bits = (codes[:, None] >> _SHIFTS[None, :]) & 1
    return bits.reshape(-1).astype(np.int8)


def state_to_string(state: np.ndarray) -> str:
    """Decode a ``7 n`` binary vector back to its *n*-character string."""
    state = np.asarray(state)
    if state.ndim != 1 or state.size % CHAR_BITS:
        raise ValueError(
            f"state length {state.size} is not a multiple of {CHAR_BITS}"
        )
    if state.size == 0:
        return ""
    bits = state.reshape(-1, CHAR_BITS).astype(np.int64)
    codes = (bits << _SHIFTS[None, :]).sum(axis=1)
    return "".join(chr(int(c)) for c in codes)


def states_to_strings(states: np.ndarray) -> list:
    """Decode a whole ``(R, 7 n)`` batch of states in one vectorized pass.

    The batched counterpart of :func:`state_to_string` — one reshape and
    one shift-accumulate for the entire sample set instead of a Python
    loop building a per-row assignment dict. This is the hot path of
    success-rate accounting over thousands of reads.
    """
    states = np.asarray(states)
    if states.ndim == 1:
        states = states[None, :]
    if states.ndim != 2 or states.shape[1] % CHAR_BITS:
        raise ValueError(
            f"state width {states.shape[-1]} is not a multiple of {CHAR_BITS}"
        )
    num_reads = states.shape[0]
    if states.shape[1] == 0:
        return [""] * num_reads
    bits = states.reshape(num_reads, -1, CHAR_BITS).astype(np.int64)
    codes = (bits << _SHIFTS[None, None, :]).sum(axis=2)
    return ["".join(map(chr, row)) for row in codes.tolist()]


#: Alias used by formulation decode() implementations.
decode_state = state_to_string


def variable_index(position: int, bit: int) -> int:
    """Index of bit *bit* (0 = MSB) of the character at *position*."""
    if bit < 0 or bit >= CHAR_BITS:
        raise ValueError(f"bit must lie in [0, {CHAR_BITS}), got {bit}")
    if position < 0:
        raise ValueError(f"position must be non-negative, got {position}")
    return position * CHAR_BITS + bit
