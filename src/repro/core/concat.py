"""String concatenation (paper §4.2).

The paper treats concatenation exactly like equality: the desired output is
the known string ``s1 ‖ s2``, encoded into the diagonal. The formulation
keeps the two operands so the verifier can check both halves independently.
"""

from __future__ import annotations

from repro.core.equality import StringEquality
from repro.core.formulation import FormulationError
from repro.utils.asciitab import is_ascii7

__all__ = ["StringConcatenation"]


class StringConcatenation(StringEquality):
    """Generate the concatenation of *left* and *right*."""

    name = "concat"

    def __init__(self, left: str, right: str, penalty_strength: float = 1.0) -> None:
        if not is_ascii7(left):
            raise FormulationError(f"left operand must be 7-bit ASCII: {left!r}")
        if not is_ascii7(right):
            raise FormulationError(f"right operand must be 7-bit ASCII: {right!r}")
        super().__init__(left + right, penalty_strength)
        self.left = left
        self.right = right

    def verify(self, decoded: str) -> bool:
        return (
            decoded == self.left + self.right
            and decoded.startswith(self.left)
            and decoded.endswith(self.right)
        )

    def describe(self) -> str:
        return (
            f"StringConcatenation(left={self.left!r}, right={self.right!r}, "
            f"A={self.penalty_strength})"
        )
