"""Affix and window constraints: prefixof, suffixof, at, substr.

The paper's future work asks for "more formulations based on this
preliminary work for other string constraints". These four are direct
corollaries of the §4.5 indexOf-generation scheme (strong window, soft
filler), covering the remaining core SMT-LIB string operations:

* ``str.prefixof`` — the window pinned at index 0;
* ``str.suffixof`` — the window pinned at the end;
* ``str.at``       — a one-character window at a given index;
* ``str.substr``   — generation of a known slice of a ground string
  (an equality against ``source[offset : offset+count]``, SMT-LIB
  out-of-range semantics included).
"""

from __future__ import annotations

from repro.core.equality import StringEquality
from repro.core.formulation import FormulationError
from repro.core.indexof import SubstringIndexOf
from repro.utils.asciitab import is_ascii7
from repro.utils.rng import SeedLike

__all__ = ["StringPrefixOf", "StringSuffixOf", "StringCharAt", "StringSubstr"]


class StringPrefixOf(SubstringIndexOf):
    """Generate a *total_length* string starting with *prefix*."""

    name = "prefixof"

    def __init__(
        self,
        total_length: int,
        prefix: str,
        penalty_strength: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(
            total_length, prefix, 0, penalty_strength=penalty_strength, seed=seed
        )
        self.prefix = prefix

    def verify(self, decoded: str) -> bool:
        return len(decoded) == self.total_length and decoded.startswith(self.prefix)

    def describe(self) -> str:
        return (
            f"StringPrefixOf(total_length={self.total_length}, "
            f"prefix={self.prefix!r}, A={self.penalty_strength})"
        )


class StringSuffixOf(SubstringIndexOf):
    """Generate a *total_length* string ending with *suffix*."""

    name = "suffixof"

    def __init__(
        self,
        total_length: int,
        suffix: str,
        penalty_strength: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        if len(suffix) > total_length:
            raise FormulationError(
                f"suffix {suffix!r} longer than total length {total_length}"
            )
        super().__init__(
            total_length,
            suffix,
            total_length - len(suffix),
            penalty_strength=penalty_strength,
            seed=seed,
        )
        self.suffix = suffix

    def verify(self, decoded: str) -> bool:
        return len(decoded) == self.total_length and decoded.endswith(self.suffix)

    def describe(self) -> str:
        return (
            f"StringSuffixOf(total_length={self.total_length}, "
            f"suffix={self.suffix!r}, A={self.penalty_strength})"
        )


class StringCharAt(SubstringIndexOf):
    """Generate a *total_length* string with *char* at *index* (str.at)."""

    name = "charat"

    def __init__(
        self,
        total_length: int,
        char: str,
        index: int,
        penalty_strength: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        if len(char) != 1:
            raise FormulationError(f"str.at pins a single character, got {char!r}")
        super().__init__(
            total_length, char, index, penalty_strength=penalty_strength, seed=seed
        )
        self.char = char

    def verify(self, decoded: str) -> bool:
        return (
            len(decoded) == self.total_length and decoded[self.index] == self.char
        )

    def describe(self) -> str:
        return (
            f"StringCharAt(total_length={self.total_length}, char={self.char!r}, "
            f"index={self.index}, A={self.penalty_strength})"
        )


class StringSubstr(StringEquality):
    """Generate ``source[offset : offset + count]`` (str.substr semantics).

    SMT-LIB: out-of-range offsets yield the empty string; the count is
    clipped to the available suffix.
    """

    name = "substr"

    def __init__(
        self,
        source: str,
        offset: int,
        count: int,
        penalty_strength: float = 1.0,
    ) -> None:
        if not is_ascii7(source):
            raise FormulationError(f"source must be 7-bit ASCII: {source!r}")
        if offset < 0 or count < 0 or offset > len(source):
            slice_value = ""
        else:
            slice_value = source[offset : offset + count]
        super().__init__(slice_value, penalty_strength)
        self.source = source
        self.slice_offset = offset
        self.slice_count = count

    def verify(self, decoded: str) -> bool:
        return decoded == self.target

    def describe(self) -> str:
        return (
            f"StringSubstr(source={self.source!r}, offset={self.slice_offset}, "
            f"count={self.slice_count}, A={self.penalty_strength})"
        )
