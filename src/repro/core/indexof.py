"""Substring indexOf — generation variant (paper §4.5).

Generate a string of length *t* containing substring *S* at index *p*. The
window positions get **strong** constraints (``2A`` by default) encoding S;
every other position gets a **soft** constraint (``0.1A``) so "other valid
ASCII characters can be generated" there — the paper's Table 1 example
generates ``qphiqp`` for "length 6, 'hi' at index 2".

The soft target is drawn per position from the printable alphabet (the
paper leaves the choice open: any valid character may appear); pass
``soft_target`` to pin it for deterministic tests.
"""

from __future__ import annotations

from typing import Optional

from repro.core.formulation import (
    FormulationError,
    StringFormulation,
    encode_char_into_diagonal,
)
from repro.qubo.model import QuboModel
from repro.utils.asciitab import CHAR_BITS, is_ascii7, random_printable
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["SubstringIndexOf"]


class SubstringIndexOf(StringFormulation):
    """Generate a *total_length* string with *substring* at *index*.

    Parameters
    ----------
    total_length:
        Length t of the generated string.
    substring:
        The substring S to pin.
    index:
        The start position of S (0-based).
    strong_factor:
        Multiplier on A for the pinned window (paper suggests 2).
    soft_factor:
        Multiplier on A for the free positions (paper suggests 0.1).
    soft_target:
        Optional single character used as the soft preference at every free
        position; default draws a random printable character per position.
    seed:
        RNG seed for the random soft targets.
    """

    name = "indexof"

    def __init__(
        self,
        total_length: int,
        substring: str,
        index: int,
        penalty_strength: float = 1.0,
        strong_factor: float = 2.0,
        soft_factor: float = 0.1,
        soft_target: Optional[str] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(penalty_strength)
        if not substring:
            raise FormulationError("substring must be non-empty")
        if not is_ascii7(substring):
            raise FormulationError(f"substring must be 7-bit ASCII: {substring!r}")
        if index < 0 or index + len(substring) > total_length:
            raise FormulationError(
                f"substring {substring!r} at index {index} does not fit in "
                f"length {total_length}"
            )
        if strong_factor <= 0 or soft_factor < 0:
            raise FormulationError(
                "strong_factor must be positive and soft_factor non-negative"
            )
        if soft_factor >= strong_factor:
            raise FormulationError(
                "soft constraints must be weaker than strong ones "
                f"(soft={soft_factor}, strong={strong_factor})"
            )
        if soft_target is not None and (
            len(soft_target) != 1 or not is_ascii7(soft_target)
        ):
            raise FormulationError(
                f"soft_target must be a single 7-bit character, got {soft_target!r}"
            )
        self.total_length = int(total_length)
        self.substring = substring
        self.index = int(index)
        self.strong_factor = float(strong_factor)
        self.soft_factor = float(soft_factor)
        self.soft_target = soft_target
        self._rng = ensure_rng(seed)
        self._soft_chars: Optional[str] = None

    @property
    def window(self) -> range:
        """Positions pinned to the substring."""
        return range(self.index, self.index + len(self.substring))

    def soft_characters(self) -> str:
        """The per-position soft targets (drawn once, then cached)."""
        if self._soft_chars is None:
            chars = []
            for position in range(self.total_length):
                if position in self.window:
                    chars.append(self.substring[position - self.index])
                elif self.soft_target is not None:
                    chars.append(self.soft_target)
                else:
                    chars.append(random_printable(self._rng, 1))
            self._soft_chars = "".join(chars)
        return self._soft_chars

    def _build(self) -> QuboModel:
        model = QuboModel(CHAR_BITS * self.total_length)
        strong = self.strong_factor * self.penalty_strength
        soft = self.soft_factor * self.penalty_strength
        targets = self.soft_characters()
        for position in range(self.total_length):
            in_window = position in self.window
            encode_char_into_diagonal(
                model,
                position,
                targets[position],
                strong if in_window else soft,
            )
        return model

    def verify(self, decoded: str) -> bool:
        return (
            len(decoded) == self.total_length
            and decoded[self.index : self.index + len(self.substring)]
            == self.substring
        )

    def describe(self) -> str:
        return (
            f"SubstringIndexOf(total_length={self.total_length}, "
            f"substring={self.substring!r}, index={self.index}, "
            f"A={self.penalty_strength}, strong={self.strong_factor}, "
            f"soft={self.soft_factor})"
        )
