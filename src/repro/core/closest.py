"""Closest String as a QUBO over the 7-bit encoding (arXiv 2310.12852).

Given K reference strings of a common length L, find the string minimizing
its Hamming distance to the references **measured over the 7-bit encoding**
(the number of differing encoded bits). Two objectives are supported:

``metric="total"``
    Minimize the *sum* of the bit-Hamming distances. Each encoded bit is
    independent, so the QUBO is purely diagonal: bit ``v`` with ``k_v``
    references voting 1 gets linear coefficient ``A (K - 2 k_v)`` and
    contributes ``A k_v`` to the offset, making the energy exactly
    ``A * total_distance``. The optimum is the bitwise majority vote.

``metric="max"``
    Minimize the *maximum* bit-Hamming distance (the classical Closest
    String objective). The bound ``U`` and one slack ``s_r`` per reference
    are binary-expanded into auxiliary bits, and each reference contributes
    the squared-residual penalty ``P (dist_r(x) + s_r - U)^2``; the
    objective term is ``A * U``. With ``P = 2 A`` a unit under-bid of ``U``
    costs more penalty than it saves objective (savings ``A δ`` vs penalty
    ``P δ²``), so every energy minimum has ``U = max_r dist_r(x)`` and
    energy ``A * U`` — no bound can be bought by violating a residual.

The string bits occupy indices ``[0, 7 L)`` as in every §4 formulation;
``metric="max"`` appends its auxiliary counters after them, advertised via
``num_string_bits`` so composition and decoding slice correctly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.encoding import encode_string, state_to_string
from repro.core.formulation import FormulationError, StringFormulation
from repro.qubo.model import QuboModel
from repro.utils.asciitab import CHAR_BITS

__all__ = ["ClosestStringFormulation"]


def _add_squared_linear(
    model: QuboModel, coeffs: Dict[int, float], constant: float, scale: float
) -> None:
    """Accumulate ``scale * (constant + sum_i coeffs[i] x_i)^2`` into *model*.

    Uses ``x² = x`` for binary variables, so squares fold onto the diagonal.
    """
    model.offset = model.offset + scale * constant * constant
    items = sorted(coeffs.items())
    for pos, (i, ci) in enumerate(items):
        model.add_linear(i, scale * (ci * ci + 2.0 * constant * ci))
        for j, cj in items[pos + 1 :]:
            model.add_quadratic(i, j, scale * 2.0 * ci * cj)


class ClosestStringFormulation(StringFormulation):
    """Closest String over K same-length references (see module docstring)."""

    name = "closest_string"

    def __init__(
        self,
        references: Sequence[str],
        metric: str = "total",
        penalty_strength: float = 1.0,
    ) -> None:
        super().__init__(penalty_strength)
        refs = list(references)
        if not refs:
            raise FormulationError("closest string needs at least one reference")
        length = len(refs[0])
        if any(len(r) != length for r in refs):
            raise FormulationError(
                f"all references must share one length, got {sorted(set(map(len, refs)))}"
            )
        if length == 0:
            raise FormulationError("references must be non-empty")
        if metric not in ("total", "max"):
            raise FormulationError(f"metric must be 'total' or 'max', got {metric!r}")
        self.references = refs
        self.metric = metric
        self.length = length
        #: Encoded reference bits, shape (K, 7 L).
        self._ref_bits = np.stack([encode_string(r) for r in refs])
        self.num_string_bits = length * CHAR_BITS

    # ------------------------------------------------------------------ #
    # model construction
    # ------------------------------------------------------------------ #

    @property
    def _bound_bits(self) -> int:
        """Bits in the binary expansion of the bound / each slack counter."""
        return int(self.num_string_bits).bit_length()

    def _build(self) -> QuboModel:
        a = self.penalty_strength
        n = self.num_string_bits
        ones = self._ref_bits.sum(axis=0)  # votes for 1 per encoded bit
        k = len(self.references)
        if self.metric == "total":
            model = QuboModel(n)
            for v in range(n):
                model.set_linear(v, a * (k - 2.0 * ones[v]))
            model.offset = a * float(ones.sum())
            return model
        # metric == "max": x | U bits | one slack block per reference.
        b = self._bound_bits
        model = QuboModel(n + b * (1 + k))
        bound_base = n
        for j in range(b):
            model.add_linear(bound_base + j, a * (1 << j))
        penalty = 2.0 * a
        for r in range(k):
            slack_base = n + b * (1 + r)
            # dist_r(x) + s_r - U as a linear form over binary variables.
            coeffs: Dict[int, float] = {}
            for v in range(n):
                coeffs[v] = 1.0 - 2.0 * float(self._ref_bits[r, v])
            for j in range(b):
                coeffs[slack_base + j] = float(1 << j)
                coeffs[bound_base + j] = -float(1 << j)
            _add_squared_linear(
                model, coeffs, constant=float(self._ref_bits[r].sum()), scale=penalty
            )
        return model

    # ------------------------------------------------------------------ #
    # decode / objective / verify
    # ------------------------------------------------------------------ #

    def decode(self, state) -> str:
        return state_to_string(np.asarray(state)[: self.num_string_bits])

    def distances(self, candidate: str) -> List[int]:
        """Bit-Hamming distance of *candidate* to each reference."""
        if len(candidate) != self.length:
            raise FormulationError(
                f"candidate length {len(candidate)} != reference length {self.length}"
            )
        bits = encode_string(candidate)
        return [int(np.sum(bits != row)) for row in self._ref_bits]

    def objective(self, candidate: str) -> int:
        """The metric value of *candidate* (total or max bit distance)."""
        dists = self.distances(candidate)
        return max(dists) if self.metric == "max" else int(sum(dists))

    def optimum(self) -> int:
        """The true optimal objective value.

        ``total`` has the closed-form majority-vote optimum. ``max`` is
        solved by scanning candidate bounds: bit positions where all
        references agree are free; a candidate built from per-bit majority
        is optimal for even vote splits too, so the optimum is computed by
        exhaustive search over the at-most-``min(K-1, n)`` contested
        patterns via majority rounding — for the small reference sets this
        formulation targets, a direct exhaustive check over reference
        combinations is exact and cheap.
        """
        k = len(self.references)
        ones = self._ref_bits.sum(axis=0)
        if self.metric == "total":
            return int(np.minimum(ones, k - ones).sum())
        # Exhaustive over bit choices restricted to contested positions is
        # exponential; instead binary-search the bound with a greedy
        # certificate only when K <= 2, else brute-force contested bits up
        # to a budget.
        if k == 1:
            return 0
        contested = np.flatnonzero((ones > 0) & (ones < k))
        if len(contested) <= 20:
            best = None
            base = self._ref_bits[0].copy()
            agree = ones == k  # bits that are 1 everywhere
            base[:] = 0
            base[agree] = 1
            for mask in range(1 << len(contested)):
                cand = base.copy()
                for idx, v in enumerate(contested):
                    cand[v] = (mask >> idx) & 1
                worst = int(np.max(np.sum(cand[None, :] != self._ref_bits, axis=1)))
                if best is None or worst < best:
                    best = worst
            return int(best)
        raise FormulationError(
            f"exact max-metric optimum needs <= 20 contested bits, "
            f"got {len(contested)}"
        )

    def verify(self, decoded: str) -> bool:
        """Feasibility check: any string of the reference length qualifies."""
        return isinstance(decoded, str) and len(decoded) == self.length

    def ground_energy(self):
        """``A * optimum`` — exact for both metrics (see ``optimum``)."""
        try:
            return self.penalty_strength * float(self.optimum())
        except FormulationError:
            return None

    def describe(self) -> str:
        return (
            f"ClosestStringFormulation(K={len(self.references)}, L={self.length}, "
            f"metric={self.metric!r}, A={self.penalty_strength})"
        )
