"""Negative constraints: generate a string NOT equal to a target.

Why this needs new machinery: "x differs from t" is a penalty on the
**conjunction** of all ``7n`` bits matching the target — a degree-``7n``
monomial, far beyond quadratic. The standard reduction (see
:mod:`repro.qubo.hubo` for the general HUBO route) chains auxiliary AND
variables:

    a_1 = y_1 AND y_2,   a_k = a_{k-1} AND y_{k+1},   ...

where ``y_k`` is the *match literal* of bit k: ``x_k`` when the target bit
is 1, ``1 - x_k`` when it is 0. Every gadget stays **quadratic in x**
because complementing an input of the Rosenberg penalty

    P_and(a; u, v) = 3a + uv - 2au - 2av

only shifts linear terms. The final auxiliary equals 1 exactly when the
whole string matches the target, and a large positive bias on it makes
every non-target string a ground state. A soft printable preference keeps
the generated witness readable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.encoding import encode_string, state_to_string
from repro.core.formulation import FormulationError, StringFormulation
from repro.qubo.model import QuboModel
from repro.utils.asciitab import CHAR_BITS, is_ascii7, random_printable
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["StringNotEquals", "add_and_gadget"]

#: A literal: (variable index, negated?) — value is x or 1 - x.
Literal = Tuple[int, bool]


def add_and_gadget(
    model: QuboModel,
    output: int,
    left: Literal,
    right: Literal,
    strength: float,
) -> None:
    """Accumulate ``strength * P_and(output; left, right)`` into *model*.

    Supports complemented inputs: substituting ``u = 1 - x`` into the
    Rosenberg penalty expands into constants, linear and quadratic terms —
    all still QUBO-expressible. At every zero-penalty state,
    ``output = left AND right``.
    """
    lv, ln = left
    rv, rn = right
    if output in (lv, rv):
        raise FormulationError("AND gadget output must be a fresh variable")
    s = float(strength)
    # 3a
    model.add_linear(output, 3.0 * s)

    # u v  where u = x_l (or 1 - x_l), v = x_r (or 1 - x_r)
    # (x)(y) = xy; (1-x)(y) = y - xy; (x)(1-y) = x - xy; (1-x)(1-y) = 1 - x - y + xy
    if ln and rn:
        model.offset += s
        model.add_linear(lv, -s)
        model.add_linear(rv, -s)
        model.add_quadratic(lv, rv, s)
    elif ln:
        model.add_linear(rv, s)
        model.add_quadratic(lv, rv, -s)
    elif rn:
        model.add_linear(lv, s)
        model.add_quadratic(lv, rv, -s)
    else:
        model.add_quadratic(lv, rv, s)

    # -2 a u: a(1-x) = a - ax
    for var, negated in (left, right):
        if negated:
            model.add_linear(output, -2.0 * s)
            model.add_quadratic(output, var, 2.0 * s)
        else:
            model.add_quadratic(output, var, -2.0 * s)


class StringNotEquals(StringFormulation):
    """Generate a *length*-character string different from *target*.

    Parameters
    ----------
    target:
        The forbidden string.
    mismatch_penalty:
        Bias placed on the final match indicator (default ``4 A``; any
        value above the total soft-bias gain works).
    gadget_strength:
        Rosenberg penalty scale (default ``2 * mismatch_penalty`` so no
        gadget is ever worth violating).
    printable_bias:
        Soft preference (fraction of A) for a random printable template, so
        the witness decodes readably. The template is re-drawn if it
        happens to equal the target.
    """

    name = "not_equals"

    def __init__(
        self,
        target: str,
        penalty_strength: float = 1.0,
        mismatch_penalty: Optional[float] = None,
        gadget_strength: Optional[float] = None,
        printable_bias: float = 0.25,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(penalty_strength)
        if not target:
            raise FormulationError(
                "an empty target is unsatisfiable at length 0; nothing to generate"
            )
        if not is_ascii7(target):
            raise FormulationError(f"target must be 7-bit ASCII: {target!r}")
        if not (0 < printable_bias < 1):
            raise FormulationError(
                f"printable_bias must lie in (0, 1), got {printable_bias}"
            )
        self.target = target
        a = self.penalty_strength
        self.mismatch_penalty = (
            float(mismatch_penalty) if mismatch_penalty is not None else 4.0 * a
        )
        self.gadget_strength = (
            float(gadget_strength)
            if gadget_strength is not None
            else 2.0 * self.mismatch_penalty
        )
        if self.mismatch_penalty <= 0 or self.gadget_strength <= 0:
            raise FormulationError("penalties must be positive")
        self.printable_bias = float(printable_bias)
        self._rng = ensure_rng(seed)
        self._template: Optional[str] = None

    # ------------------------------------------------------------------ #

    @property
    def num_string_bits(self) -> int:
        return CHAR_BITS * len(self.target)

    def template(self) -> str:
        """The soft printable target (guaranteed different from *target*)."""
        if self._template is None:
            while True:
                candidate = random_printable(self._rng, len(self.target))
                if candidate != self.target:
                    self._template = candidate
                    break
        return self._template

    def match_literals(self) -> List[Literal]:
        """Per-bit literals that are 1 exactly when the bit matches target."""
        bits = encode_string(self.target)
        return [(k, not bool(b)) for k, b in enumerate(bits)]

    def _build(self) -> QuboModel:
        n_bits = self.num_string_bits
        literals = self.match_literals()
        num_aux = n_bits - 1
        model = QuboModel(n_bits + num_aux)

        # Soft printable preference on the string bits.
        bias = self.printable_bias * self.penalty_strength
        for k, bit in enumerate(encode_string(self.template())):
            model.add_linear(k, -bias if bit else bias)

        # AND chain over the match literals.
        if n_bits == 1:
            # Single bit: the "conjunction" is the literal itself.
            var, negated = literals[0]
            if negated:
                model.offset += self.mismatch_penalty
                model.add_linear(var, -self.mismatch_penalty)
            else:
                model.add_linear(var, self.mismatch_penalty)
            return model

        aux = n_bits  # first auxiliary variable index
        add_and_gadget(
            model, aux, literals[0], literals[1], self.gadget_strength
        )
        for k in range(2, n_bits):
            nxt = n_bits + k - 1
            add_and_gadget(
                model, nxt, (aux, False), literals[k], self.gadget_strength
            )
            aux = nxt
        # Penalize the full-match indicator.
        model.add_linear(aux, self.mismatch_penalty)
        return model

    # ------------------------------------------------------------------ #

    def decode(self, state: np.ndarray) -> str:
        return state_to_string(np.asarray(state)[: self.num_string_bits])

    def verify(self, decoded: str) -> bool:
        return len(decoded) == len(self.target) and decoded != self.target

    def ground_energy(self) -> Optional[float]:
        # Template differs from target, so every gadget can be satisfied,
        # the match indicator is 0, and all soft biases are collected.
        bias = self.printable_bias * self.penalty_strength
        return -bias * float(encode_string(self.template()).sum())

    def describe(self) -> str:
        return (
            f"StringNotEquals(target={self.target!r}, A={self.penalty_strength}, "
            f"P={self.mismatch_penalty}, gadget={self.gadget_strength})"
        )
