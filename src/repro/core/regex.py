"""Regex matching (paper §4.11), plus the extended operator set.

The paper supports **literal characters**, **character classes** ``[...]``,
and **plus** ``+``. Its future work calls for "more formulations based on
this preliminary work"; this module additionally implements the natural
next operators under the same fixed-output-length scheme:

* ``*`` — zero or more repetitions,
* ``?`` — zero or one occurrence,
* ``.`` — any printable character (a large class).

Each token carries a repetition range ``(min_count, max_count)``:
literal/class = (1, 1), ``+`` = (1, ∞), ``*`` = (0, ∞), ``?`` = (0, 1).
Generation targets a fixed output length; repeatable tokens absorb the
slack ("we consider the plus constraint as a literal when it appears after
a literal, and a character class when it appears after a character class").

Per-position objectives:

* literal — the usual ±A diagonal pattern of the character;
* class — the patterns of all member characters, each weighted ``A/|chars|``
  ("equal and shared preference"). Bits shared by all members keep full
  strength; bits on which members disagree partially or fully cancel, so
  every member is a ground state.

This module also provides a standalone backtracking matcher for the same
subset (:func:`regex_matches`) used for verification, plus the fixed-length
expansion logic shared with the SMT front end and the classical solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Union

from repro.core.formulation import (
    FormulationError,
    StringFormulation,
)
from repro.core.encoding import char_to_bits
from repro.qubo.model import QuboModel
from repro.utils.asciitab import CHAR_BITS, PRINTABLE_MAX, PRINTABLE_MIN, is_ascii7

__all__ = [
    "RegexToken",
    "RegexMatching",
    "parse_pattern",
    "regex_matches",
    "expand_to_length",
    "DOT_CHARS",
]

#: The character set matched by ``.`` — printable ASCII.
DOT_CHARS: FrozenSet[str] = frozenset(
    chr(c) for c in range(PRINTABLE_MIN, PRINTABLE_MAX + 1)
)

_UNBOUNDED: Optional[int] = None


@dataclass(frozen=True)
class RegexToken:
    """One element of the subset: a character set with a repetition range.

    ``plus=True`` is the paper's original modifier and equivalent to
    ``min_count=1, max_count=None``.
    """

    chars: FrozenSet[str]
    plus: bool = False
    min_count: int = field(default=1)
    max_count: Optional[int] = field(default=1)

    def __post_init__(self) -> None:
        if not self.chars:
            raise FormulationError("empty character class")
        for c in self.chars:
            if len(c) != 1 or not is_ascii7(c):
                raise FormulationError(f"invalid class member: {c!r}")
        if self.plus:
            object.__setattr__(self, "min_count", 1)
            object.__setattr__(self, "max_count", _UNBOUNDED)
        if self.min_count < 0:
            raise FormulationError(f"negative min_count: {self.min_count}")
        if self.max_count is not None and self.max_count < self.min_count:
            raise FormulationError(
                f"max_count {self.max_count} < min_count {self.min_count}"
            )

    @property
    def is_literal(self) -> bool:
        return len(self.chars) == 1

    @property
    def repeatable(self) -> bool:
        """Can this token absorb extra positions beyond its minimum?"""
        return self.max_count is None or self.max_count > self.min_count

    def with_modifier(self, modifier: str) -> "RegexToken":
        """Apply a postfix modifier (one of ``+ * ?``)."""
        if self.min_count != 1 or self.max_count != 1:
            raise FormulationError(f"double modifier on {self.describe()!r}")
        if modifier == "+":
            return RegexToken(self.chars, plus=True)
        ranges = {"*": (0, _UNBOUNDED), "?": (0, 1)}
        lo, hi = ranges[modifier]
        return RegexToken(self.chars, min_count=lo, max_count=hi)

    def accepts(self, char: str) -> bool:
        return char in self.chars

    def describe(self) -> str:
        if self.chars == DOT_CHARS:
            body = "."
        elif self.is_literal:
            body = next(iter(self.chars))
        else:
            body = "[" + "".join(sorted(self.chars)) + "]"
        suffix = {
            (1, 1): "",
            (1, _UNBOUNDED): "+",
            (0, _UNBOUNDED): "*",
            (0, 1): "?",
        }.get((self.min_count, self.max_count), f"{{{self.min_count},{self.max_count}}}")
        return body + suffix


# --------------------------------------------------------------------- #
# parsing
# --------------------------------------------------------------------- #

_MODIFIERS = set("+*?")


def parse_pattern(pattern: str) -> List[RegexToken]:
    """Parse the supported subset into a token list.

    Literals (with ``\\`` escapes for specials), classes ``[abc]`` with
    simple ranges ``[a-z]``, the dot, and postfix ``+ * ?``.
    """
    if not pattern:
        raise FormulationError("empty pattern")
    tokens: List[RegexToken] = []
    i = 0
    n = len(pattern)
    while i < n:
        c = pattern[i]
        if c in _MODIFIERS:
            if not tokens:
                raise FormulationError(f"{c!r} with nothing to repeat")
            tokens[-1] = tokens[-1].with_modifier(c)
            i += 1
        elif c == "[":
            chars, i = _parse_class(pattern, i + 1)
            tokens.append(RegexToken(frozenset(chars)))
        elif c == "]":
            raise FormulationError(f"unmatched ']' at position {i}")
        elif c == ".":
            tokens.append(RegexToken(DOT_CHARS))
            i += 1
        elif c == "\\":
            if i + 1 >= n:
                raise FormulationError("dangling escape at end of pattern")
            tokens.append(RegexToken(frozenset(pattern[i + 1])))
            i += 2
        else:
            if not is_ascii7(c):
                raise FormulationError(f"non-ASCII literal {c!r}")
            tokens.append(RegexToken(frozenset(c)))
            i += 1
    return tokens


def _parse_class(pattern: str, start: int) -> tuple:
    chars: List[str] = []
    i = start
    n = len(pattern)
    while i < n and pattern[i] != "]":
        c = pattern[i]
        if c == "\\":
            if i + 1 >= n:
                raise FormulationError("dangling escape inside class")
            chars.append(pattern[i + 1])
            i += 2
            continue
        if (
            i + 2 < n
            and pattern[i + 1] == "-"
            and pattern[i + 2] != "]"
        ):
            lo, hi = ord(c), ord(pattern[i + 2])
            if hi < lo:
                raise FormulationError(
                    f"inverted range {c}-{pattern[i + 2]} in class"
                )
            chars.extend(chr(code) for code in range(lo, hi + 1))
            i += 3
            continue
        chars.append(c)
        i += 1
    if i >= n:
        raise FormulationError("unterminated character class")
    if not chars:
        raise FormulationError("empty character class")
    return chars, i + 1


# --------------------------------------------------------------------- #
# matching (verification semantics)
# --------------------------------------------------------------------- #


def regex_matches(pattern: Union[str, Sequence[RegexToken]], text: str) -> bool:
    """Full-match of *text* against the subset pattern (backtracking)."""
    tokens = parse_pattern(pattern) if isinstance(pattern, str) else list(pattern)
    return _match(tokens, text, 0, 0)


def _match(tokens: List[RegexToken], text: str, ti: int, si: int) -> bool:
    if ti == len(tokens):
        return si == len(text)
    token = tokens[ti]
    # Greedy with backtracking over the token's admissible repeat counts.
    limit = si
    hard_cap = len(text) if token.max_count is None else si + token.max_count
    while limit < min(len(text), hard_cap) and token.accepts(text[limit]):
        limit += 1
    lowest = si + token.min_count
    for end in range(limit, lowest - 1, -1):
        if end - si < token.min_count:
            break
        if _match(tokens, text, ti + 1, end):
            return True
    return False


# --------------------------------------------------------------------- #
# fixed-length expansion
# --------------------------------------------------------------------- #


def expand_to_length(
    tokens: Sequence[RegexToken], length: int, policy: str = "last"
) -> List[FrozenSet[str]]:
    """Assign each output position a character set, for a fixed length.

    Every token consumes its ``min_count`` positions; the remaining slack
    goes to repeatable tokens, bounded by their ``max_count`` — all of it
    to the **last** repeatable token first (``policy="last"``, which
    reproduces the paper's ``a[bc]+`` → ``abcbb``-shaped outputs), or
    round-robin (``policy="spread"``).
    """
    tokens = list(tokens)
    if policy not in ("last", "spread"):
        raise FormulationError(f"policy must be 'last' or 'spread', got {policy!r}")
    minimum = sum(t.min_count for t in tokens)
    slack = length - minimum
    if slack < 0:
        raise FormulationError(
            f"pattern needs at least {minimum} characters, got length {length}"
        )
    capacity = [
        (None if t.max_count is None else t.max_count - t.min_count)
        for t in tokens
    ]
    repeatable = [i for i, c in enumerate(capacity) if c is None or c > 0]
    total_capacity = (
        float("inf")
        if any(capacity[i] is None for i in repeatable)
        else sum(capacity[i] for i in repeatable)
    )
    if slack > total_capacity:
        raise FormulationError(
            f"pattern matches at most {minimum + int(total_capacity)} characters; "
            f"cannot stretch to {length}"
        )
    repeats = [t.min_count for t in tokens]
    remaining = slack
    if remaining:
        if policy == "last":
            for i in reversed(repeatable):
                room = remaining if capacity[i] is None else min(capacity[i], remaining)
                repeats[i] += room
                remaining -= room
                if not remaining:
                    break
        else:
            while remaining:
                progressed = False
                for i in repeatable:
                    used = repeats[i] - tokens[i].min_count
                    if capacity[i] is not None and used >= capacity[i]:
                        continue
                    repeats[i] += 1
                    remaining -= 1
                    progressed = True
                    if not remaining:
                        break
                if not progressed:
                    raise FormulationError("internal: slack distribution stalled")
    positions: List[FrozenSet[str]] = []
    for token, count in zip(tokens, repeats):
        positions.extend([token.chars] * count)
    assert len(positions) == length
    return positions


# --------------------------------------------------------------------- #
# the formulation
# --------------------------------------------------------------------- #


class RegexMatching(StringFormulation):
    """Generate a *length*-character string matching *pattern*.

    Parameters
    ----------
    pattern:
        Pattern in the supported subset (literals, classes, dot, ``+ * ?``),
        either a string or a pre-parsed token list.
    length:
        Output length (the paper generates at a fixed length).
    expand_policy:
        How slack distributes over repeatable tokens (``"last"`` or
        ``"spread"``).
    """

    name = "regex"

    def __init__(
        self,
        pattern: Union[str, Sequence[RegexToken]],
        length: int,
        penalty_strength: float = 1.0,
        expand_policy: str = "last",
    ) -> None:
        super().__init__(penalty_strength)
        self.pattern = pattern if isinstance(pattern, str) else None
        self.tokens = (
            parse_pattern(pattern) if isinstance(pattern, str) else list(pattern)
        )
        self.length = int(length)
        self.expand_policy = expand_policy
        self.positions = expand_to_length(self.tokens, self.length, expand_policy)

    def _build(self) -> QuboModel:
        model = QuboModel(CHAR_BITS * self.length)
        a = self.penalty_strength
        for position, chars in enumerate(self.positions):
            base = CHAR_BITS * position
            share = a / len(chars)
            for char in sorted(chars):
                bits = char_to_bits(char)
                for k in range(CHAR_BITS):
                    model.add_linear(base + k, -share if bits[k] else share)
        return model

    def verify(self, decoded: str) -> bool:
        return len(decoded) == self.length and regex_matches(self.tokens, decoded)

    def describe(self) -> str:
        shown = self.pattern or "".join(t.describe() for t in self.tokens)
        return (
            f"RegexMatching(pattern={shown!r}, length={self.length}, "
            f"A={self.penalty_strength}, policy={self.expand_policy!r})"
        )
