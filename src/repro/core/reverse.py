"""String reversal (paper §4.9).

The reverse of the input is a known string, so the formulation encodes the
reversed string into the diagonal, exactly like equality.
"""

from __future__ import annotations

from repro.core.equality import StringEquality
from repro.core.formulation import FormulationError
from repro.utils.asciitab import is_ascii7

__all__ = ["StringReversal"]


class StringReversal(StringEquality):
    """Generate the reverse of *source*."""

    name = "reverse"

    def __init__(self, source: str, penalty_strength: float = 1.0) -> None:
        if not is_ascii7(source):
            raise FormulationError(f"source must be 7-bit ASCII: {source!r}")
        super().__init__(source[::-1], penalty_strength)
        self.source = source

    def verify(self, decoded: str) -> bool:
        return decoded == self.source[::-1]

    def describe(self) -> str:
        return f"StringReversal(source={self.source!r}, A={self.penalty_strength})"
