"""The Figure-1 driver: formulation → QUBO → annealer → decode → verify.

:class:`StringQuboSolver` owns a sampler (the paper uses D-Wave's simulated
annealer; any :class:`~repro.anneal.base.Sampler` plugs in, including the
simulated QPU behind an embedding composite) and runs one constraint at a
time, returning a :class:`SolveResult` with the decoded output, its
verification status, and sampling statistics.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.anneal.base import Sampler
from repro.anneal.sampleset import SampleSet
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.core.formulation import StringFormulation
from repro.utils.rng import SeedLike, spawn_rngs
from repro.utils.timing import Timer

__all__ = ["StringQuboSolver", "SolveResult", "result_from_sampleset"]


@dataclass
class SolveResult:
    """Outcome of solving one string constraint."""

    formulation: StringFormulation
    sampleset: SampleSet
    output: Any
    ok: bool
    energy: float
    ground_energy: Optional[float]
    success_rate: float
    wall_time: float
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def reached_ground(self) -> Optional[bool]:
        """Whether the best sample hit the known optimum (None if unknown)."""
        if self.ground_energy is None:
            return None
        return bool(self.energy <= self.ground_energy + 1e-9)

    def __repr__(self) -> str:
        return (
            f"SolveResult(output={self.output!r}, ok={self.ok}, "
            f"energy={self.energy:.6g}, success_rate={self.success_rate:.2f})"
        )


class StringQuboSolver:
    """Drive string formulations through a sampler.

    Parameters
    ----------
    sampler:
        Any :class:`~repro.anneal.base.Sampler`; default a fresh
        :class:`~repro.anneal.simulated.SimulatedAnnealingSampler`.
    num_reads:
        Default reads per solve (overridable per call).
    seed:
        Base seed; per-solve seeds are spawned from it so repeated solves
        differ but the whole sequence is reproducible.
    sampler_params:
        Extra fixed parameters forwarded to every ``sample_model`` call
        (e.g. ``num_sweeps``).
    metrics:
        Optional :class:`~repro.service.metrics.MetricsRegistry`; when
        given, ``embed`` (QUBO construction), ``anneal`` (sampling) and
        ``decode`` (decode + verify) stage timings are recorded into it.
    """

    def __init__(
        self,
        sampler: Optional[Sampler] = None,
        num_reads: int = 64,
        seed: SeedLike = None,
        sampler_params: Optional[Dict[str, Any]] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        self.sampler = sampler if sampler is not None else SimulatedAnnealingSampler()
        self.num_reads = num_reads
        self.sampler_params = dict(sampler_params or {})
        self.metrics = metrics
        (self._rng,) = spawn_rngs(seed, 1)

    def _stage(self, name: str):
        """Timing context for one pipeline stage (no-op without metrics)."""
        if self.metrics is None:
            return contextlib.nullcontext()
        return self.metrics.time(name)

    def solve(
        self, formulation: StringFormulation, **overrides: Any
    ) -> SolveResult:
        """Build, sample, decode and verify one constraint."""
        params = {**self.sampler_params, **overrides}
        params.setdefault("num_reads", self.num_reads)
        params.setdefault("seed", int(self._rng.integers(0, 2**63 - 1)))

        with Timer() as timer:
            with self._stage("embed"):
                model = formulation.build_model()
            with self._stage("anneal"):
                sampleset = self.sampler.sample_model(model, **params)
        wall = timer.elapsed

        with self._stage("decode"):
            return result_from_sampleset(formulation, sampleset, wall_time=wall)

    @staticmethod
    def _success_rate(
        formulation: StringFormulation, sampleset: SampleSet
    ) -> float:
        return _success_rate(formulation, sampleset)


def result_from_sampleset(
    formulation: StringFormulation,
    sampleset: SampleSet,
    wall_time: float = 0.0,
) -> SolveResult:
    """Decode, verify and score a sample set into a :class:`SolveResult`.

    The back half of :meth:`StringQuboSolver.solve`, shared with the fused
    batch engine (:mod:`repro.service.fused`), which produces sample sets
    through tiled solves rather than per-formulation ``sample_model``
    calls but reports results in the identical shape.
    """
    best = sampleset.first
    best_state = best.state(sampleset.variables)
    output = formulation.decode(best_state)
    ok = bool(formulation.verify(output))
    return SolveResult(
        formulation=formulation,
        sampleset=sampleset,
        output=output,
        ok=ok,
        energy=best.energy,
        ground_energy=formulation.ground_energy(),
        success_rate=_success_rate(formulation, sampleset),
        wall_time=wall_time,
        info=dict(sampleset.info),
    )


def _success_rate(formulation: StringFormulation, sampleset: SampleSet) -> float:
    """Occurrence-weighted fraction of reads whose decoding verifies.

    Decodes straight off the ``(R, n)`` state matrix through the
    formulation's batched :meth:`~StringFormulation.decode_states`
    instead of materializing a per-row :class:`Sample` dict and
    re-decoding in a Python loop — the historical hot spot for large
    read counts.
    """
    if len(sampleset) == 0:
        return 0.0
    decoded = formulation.decode_states(sampleset.states)
    weights = sampleset.num_occurrences
    total = int(weights.sum())
    if not total:
        return 0.0
    good = sum(
        int(weight)
        for output, weight in zip(decoded, weights)
        if formulation.verify(output)
    )
    return good / total
