"""Checked-in SMT-LIB regression corpus for the differential oracle.

Shrunk campaign failures are persisted as ``.smt2`` files under
``tests/corpus/`` and replayed on every run of the verification suite,
so a once-found miss can never silently regress into a soundness bug.

File format — plain SMT-LIB 2.6 with a machine-readable comment header:

.. code-block:: text

    ; expect: sat
    ; seed instance: witness x="ab"
    (declare-const x String)
    (assert (= (str.len x) 2))
    (check-sat)

``; expect:`` declares the ground-truth status (``sat``/``unsat``/
``unknown``); every other leading ``;`` line is free-form provenance.
A *multi-query* case — a script with ``push``/``pop`` and several
``check-sat`` commands — carries one ``; expect:`` line per query, in
query order, and is replayed query by query: the harness walks the
assertion stack with :func:`~repro.smt.session.iter_check_states` and
feeds each flattened frame state through
:meth:`~repro.verify.oracle.DifferentialOracle.check` with its declared
expectation. A corpus replay **fails** only on soundness bugs — a
completeness miss on a known-sat query is recorded but tolerated,
because annealing misses are stochastic facts, not regressions.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.smt import ast
from repro.smt.parser import parse_script
from repro.smt.printer import render_script
from repro.smt.session import iter_check_states
from repro.smt.status import SolveStatus
from repro.verify.oracle import DifferentialOracle, OracleReport, Verdict

__all__ = [
    "CorpusCase",
    "CorpusReport",
    "load_corpus",
    "replay_corpus",
    "save_case",
]

_EXPECT_RE = re.compile(r"^;\s*expect:\s*(\S+)\s*$", re.MULTILINE)
_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")


@dataclass
class CorpusCase:
    """One corpus file, parsed and ready to replay."""

    name: str
    path: str
    script: str
    assertions: List[ast.Term]
    expected: Optional[SolveStatus] = None
    #: One entry per ``; expect:`` header line, in query order
    #: (``expected`` stays the first entry for single-query callers).
    expected_statuses: List[SolveStatus] = field(default_factory=list)
    #: The flattened assertion stack at each ``check-sat``.
    queries: List[List[ast.Term]] = field(default_factory=list)

    def __repr__(self) -> str:
        expect = self.expected.value if self.expected else "?"
        return (
            f"CorpusCase({self.name!r}, {len(self.assertions)} assertions, "
            f"{max(len(self.queries), 1)} queries, expect={expect})"
        )


@dataclass
class CorpusReport:
    """Outcome of replaying a corpus directory through the oracle."""

    cases: List[Dict[str, Any]] = field(default_factory=list)
    verdicts: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.cases)

    @property
    def soundness_bugs(self) -> int:
        return self.verdicts.get(Verdict.SOUNDNESS_BUG.value, 0)

    @property
    def ok(self) -> bool:
        return self.soundness_bugs == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "verdicts": dict(sorted(self.verdicts.items())),
            "cases": list(self.cases),
            "ok": self.ok,
        }

    def text_report(self) -> str:
        lines = [f"corpus replay: {self.total} cases"]
        for case in self.cases:
            lines.append(
                f"  {case['name']:<40s} {case['verdict']}"
            )
        lines.append(f"  result: {'OK' if self.ok else 'FAILING'}")
        return "\n".join(lines)


def load_corpus(directory: str) -> List[CorpusCase]:
    """Load every ``.smt2`` case under *directory* (sorted by name)."""
    if not os.path.isdir(directory):
        return []
    cases: List[CorpusCase] = []
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".smt2"):
            continue
        path = os.path.join(directory, entry)
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        expected_statuses = [
            SolveStatus.from_value(value) for value in _EXPECT_RE.findall(text)
        ]
        script = parse_script(text)
        cases.append(
            CorpusCase(
                name=entry[: -len(".smt2")],
                path=path,
                script=text,
                assertions=list(script.assertions),
                expected=expected_statuses[0] if expected_statuses else None,
                expected_statuses=expected_statuses,
                queries=[
                    flattened for _index, flattened in iter_check_states(script)
                ],
            )
        )
    return cases


def save_case(
    directory: str,
    name: str,
    assertions: Sequence[ast.Term],
    *,
    expected: Optional[SolveStatus] = None,
    comment: str = "",
) -> str:
    """Write one corpus case; returns the file path.

    The header carries the ``; expect:`` status plus one provenance
    comment line, followed by the rendered script (declarations included,
    so the file is a complete standalone SMT-LIB input).
    """
    if not _NAME_RE.match(name):
        raise ValueError(f"corpus case names must be filename-safe, got {name!r}")
    os.makedirs(directory, exist_ok=True)
    header: List[str] = []
    if expected is not None:
        header.append(f"expect: {SolveStatus.from_value(expected).value}")
    header.extend(comment.splitlines())
    body = render_script(list(assertions), header=header)
    path = os.path.join(directory, f"{name}.smt2")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(body)
    return path


#: Verdicts ordered least- to most-severe; a multi-query case reports the
#: worst of its per-query verdicts at case level.
_SEVERITY = (
    Verdict.AGREE_SAT,
    Verdict.AGREE_UNSAT,
    Verdict.UNRESOLVED,
    Verdict.COMPLETENESS_MISS,
    Verdict.SOUNDNESS_BUG,
)


def _replay_case(
    case: CorpusCase, oracle: DifferentialOracle
) -> Dict[str, Any]:
    """One case record: single-query direct, multi-query stack-walked."""
    if len(case.queries) <= 1:
        oracle_report: OracleReport = oracle.check(
            case.assertions, expected=case.expected
        )
        return {
            "name": case.name,
            "expected": case.expected.value if case.expected else None,
            "verdict": oracle_report.verdict.value,
            "quantum_status": oracle_report.quantum_status.value,
            "reference_status": oracle_report.reference_status.value,
        }

    queries: List[Dict[str, Any]] = []
    worst = _SEVERITY[0]
    for index, flattened in enumerate(case.queries):
        expected = (
            case.expected_statuses[index]
            if index < len(case.expected_statuses)
            else None
        )
        oracle_report = oracle.check(flattened, expected=expected)
        if _SEVERITY.index(oracle_report.verdict) > _SEVERITY.index(worst):
            worst = oracle_report.verdict
        queries.append(
            {
                "query": index,
                "expected": expected.value if expected else None,
                "verdict": oracle_report.verdict.value,
                "quantum_status": oracle_report.quantum_status.value,
                "reference_status": oracle_report.reference_status.value,
            }
        )
    return {
        "name": case.name,
        "expected": case.expected.value if case.expected else None,
        "verdict": worst.value,
        "quantum_status": queries[-1]["quantum_status"],
        "reference_status": queries[-1]["reference_status"],
        "queries": queries,
    }


def replay_corpus(
    directory: str,
    oracle: Optional[DifferentialOracle] = None,
) -> CorpusReport:
    """Replay every corpus case through the differential oracle.

    The per-case verdict counted into the report is the case's worst
    per-query verdict, so a soundness bug at *any* frame depth fails the
    replay.
    """
    oracle = oracle if oracle is not None else DifferentialOracle(seed=0)
    report = CorpusReport()
    for case in load_corpus(directory):
        record = _replay_case(case, oracle)
        verdict = record["verdict"]
        report.verdicts[verdict] = report.verdicts.get(verdict, 0) + 1
        report.cases.append(record)
    return report
