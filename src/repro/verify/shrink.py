"""Delta-debugging minimizer for failing conjunctions.

When a differential campaign finds a failure (a completeness miss, a
metamorphic violation, or — worst case — a soundness bug), the raw
instance is rarely the story: most of its constraints are bystanders.
:func:`shrink` reduces the conjunction while a caller-supplied *failure
predicate* keeps holding, in two phases:

1. **assertion minimization** — greedy ddmin: repeatedly try dropping
   each assertion (largest-first single removals to a fixpoint, which for
   the campaign's small conjunctions is exhaustive);
2. **literal shrinking** — every string literal is shortened (halving,
   chopping ends) and canonicalized toward ``"a..."``, and every integer
   literal is pulled toward zero, one edit at a time, as long as the
   predicate still fails.

The result carries a minimal SMT-LIB repro script (rendered through
:mod:`repro.smt.printer`) ready to be checked into ``tests/corpus/``.

The predicate receives a candidate conjunction and returns ``True`` when
the candidate **still exhibits the failure**. Predicates must be total:
exceptions they raise are treated as "does not fail" so a shrink can
never crash the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.smt import ast
from repro.smt.printer import render_script

__all__ = ["ShrinkResult", "shrink"]

Predicate = Callable[[List[ast.Term]], bool]


@dataclass
class ShrinkResult:
    """A minimized failing conjunction."""

    assertions: List[ast.Term]
    script: str
    original_count: int
    evaluations: int
    rounds: int
    exhausted_budget: bool = False

    def __repr__(self) -> str:
        return (
            f"ShrinkResult({self.original_count} -> {len(self.assertions)} "
            f"assertions, {self.evaluations} predicate evaluations)"
        )


def shrink(
    assertions: Sequence[ast.Term],
    predicate: Predicate,
    *,
    max_evaluations: int = 500,
    shrink_literals: bool = True,
) -> ShrinkResult:
    """Minimize *assertions* while *predicate* keeps returning ``True``.

    Raises :class:`ValueError` when the predicate does not hold on the
    initial conjunction (nothing to shrink).
    """
    state = _Budget(max_evaluations)
    current = list(assertions)
    if not _holds(predicate, current, state):
        raise ValueError(
            "the failure predicate does not hold on the original "
            "conjunction; nothing to shrink"
        )

    rounds = 0
    changed = True
    while changed and not state.exhausted:
        changed = False
        rounds += 1
        current, dropped = _drop_assertions(current, predicate, state)
        changed = changed or dropped
        if shrink_literals:
            current, edited = _shrink_literals(current, predicate, state)
            changed = changed or edited

    return ShrinkResult(
        assertions=current,
        script=render_script(current),
        original_count=len(list(assertions)),
        evaluations=state.used,
        rounds=rounds,
        exhausted_budget=state.exhausted,
    )


# --------------------------------------------------------------------- #
# phase 1: assertion minimization
# --------------------------------------------------------------------- #


def _drop_assertions(
    current: List[ast.Term], predicate: Predicate, state: "_Budget"
) -> Tuple[List[ast.Term], bool]:
    changed = False
    # Try chunk removals first (classic ddmin halving) for fast progress
    # on larger conjunctions, then single removals to a fixpoint.
    for chunk in _chunks(len(current)):
        if state.exhausted or len(current) <= 1:
            break
        i = 0
        while i < len(current) and not state.exhausted:
            candidate = current[:i] + current[i + chunk :]
            if candidate and _holds(predicate, candidate, state):
                current = candidate
                changed = True
            else:
                i += 1
    return current, changed


def _chunks(n: int) -> List[int]:
    sizes: List[int] = []
    size = max(1, n // 2)
    while size > 1:
        sizes.append(size)
        size //= 2
    sizes.append(1)
    return sizes


# --------------------------------------------------------------------- #
# phase 2: literal shrinking
# --------------------------------------------------------------------- #


def _shrink_literals(
    current: List[ast.Term], predicate: Predicate, state: "_Budget"
) -> Tuple[List[ast.Term], bool]:
    changed = False
    progress = True
    while progress and not state.exhausted:
        progress = False
        for index, assertion in enumerate(current):
            for edited in _literal_edits(assertion):
                if state.exhausted:
                    break
                candidate = list(current)
                candidate[index] = edited
                if _holds(predicate, candidate, state):
                    current = candidate
                    changed = True
                    progress = True
                    break  # re-enumerate edits of the new assertion
    return current, changed


def _literal_edits(assertion: ast.Term):
    """Yield copies of *assertion* with exactly one literal made smaller."""
    sites = _literal_sites(assertion)
    for path, leaf in sites:
        if isinstance(leaf, ast.StrLit):
            for smaller in _smaller_strings(leaf.value):
                yield _replace_at(assertion, path, ast.StrLit(smaller))
        elif isinstance(leaf, ast.IntLit):
            for smaller in _smaller_ints(leaf.value):
                yield _replace_at(assertion, path, ast.IntLit(smaller))


def _smaller_strings(value: str) -> List[str]:
    out: List[str] = []
    n = len(value)
    if n == 0:
        return out
    if n > 1:
        out.append(value[: n // 2])
        out.append(value[n // 2 :])
        out.append(value[1:])
        out.append(value[:-1])
    canonical = "a" * n
    if value != canonical:
        out.append(canonical)
    # Per-character canonicalization toward 'a'.
    for i, c in enumerate(value):
        if c != "a":
            out.append(value[:i] + "a" + value[i + 1 :])
    seen: set = set()
    unique = []
    for s in out:
        if s not in seen:
            seen.add(s)
            unique.append(s)
    return unique


def _smaller_ints(value: int) -> List[int]:
    out: List[int] = []
    if value > 0:
        out.extend({value // 2, value - 1, 0, 1} - {value})
    elif value < 0:
        out.extend({value // 2, value + 1, 0} - {value})
    return sorted(set(out), key=abs)


# ---- literal-site bookkeeping (paths are child-field sequences) ------- #

_CHILD_FIELDS = {
    ast.Concat: ("parts",),
    ast.Replace: ("source", "old", "new"),
    ast.Reverse: ("source",),
    ast.At: ("source", "index"),
    ast.Substr: ("source", "offset", "count"),
    ast.Length: ("source",),
    ast.Contains: ("haystack", "needle"),
    ast.PrefixOf: ("prefix", "string"),
    ast.SuffixOf: ("suffix", "string"),
    ast.IndexOf: ("haystack", "needle", "start"),
    ast.InRe: ("string",),  # the regex side is not literal-shrunk
    ast.Eq: ("lhs", "rhs"),
    ast.Not: ("operand",),
}


def _literal_sites(term: ast.Term, path: Tuple = ()) -> List[Tuple[Tuple, ast.Term]]:
    if isinstance(term, (ast.StrLit, ast.IntLit)):
        return [(path, term)]
    fields = _CHILD_FIELDS.get(type(term))
    if fields is None:
        return []
    sites: List[Tuple[Tuple, ast.Term]] = []
    for name in fields:
        child = getattr(term, name)
        if name == "parts":
            for i, part in enumerate(child):
                sites.extend(_literal_sites(part, path + (("parts", i),)))
        else:
            sites.extend(_literal_sites(child, path + ((name, None),)))
    return sites


def _replace_at(term: ast.Term, path: Tuple, replacement: ast.Term) -> ast.Term:
    if not path:
        return replacement
    (name, index), rest = path[0], path[1:]
    if name == "parts":
        parts = list(term.parts)
        parts[index] = _replace_at(parts[index], rest, replacement)
        return type(term)(tuple(parts))
    kwargs = {}
    for field_name in _CHILD_FIELDS[type(term)]:
        kwargs[field_name] = getattr(term, field_name)
    if isinstance(term, ast.Replace):
        kwargs["replace_all"] = term.replace_all
    kwargs[name] = _replace_at(kwargs[name], rest, replacement)
    return type(term)(**kwargs)


# --------------------------------------------------------------------- #
# predicate budget
# --------------------------------------------------------------------- #


@dataclass
class _Budget:
    limit: int
    used: int = 0

    @property
    def exhausted(self) -> bool:
        return self.used >= self.limit


def _holds(predicate: Predicate, candidate: List[ast.Term], state: _Budget) -> bool:
    if state.exhausted:
        return False
    state.used += 1
    try:
        return bool(predicate(list(candidate)))
    except Exception:
        return False
