"""Command-line entry point: ``python -m repro.verify``.

Subcommands
-----------

``campaign``
    Run a seeded differential fuzz campaign::

        python -m repro.verify campaign --instances 30 --seed 7 \\
            --json out/campaign.json --corpus-dir tests/corpus

``corpus``
    Replay the checked-in regression corpus::

        python -m repro.verify corpus --dir tests/corpus

``sessions``
    Fuzz incremental push/pop sessions against from-scratch solving::

        python -m repro.verify sessions --instances 20 --seed 0 \\
            --json out/sessions.json

``opt``
    Run a weighted-MaxSMT optimality campaign (and/or replay the
    weighted corpus)::

        python -m repro.verify opt --instances 30 --seed 0 \\
            --corpus-dir tests/corpus/opt --json out/opt.json

``shrink``
    Delta-debug one failing SMT-LIB script down to a minimal repro::

        python -m repro.verify shrink failing.smt2 --expect sat

Exit status is non-zero when a soundness bug, equivalence mismatch or
metamorphic violation is found, so every subcommand gates cleanly in CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.smt.generator import ALL_OPS
from repro.smt.parser import parse_script
from repro.smt.status import SolveStatus
from repro.verify.campaign import CampaignConfig, run_campaign
from repro.verify.corpus import replay_corpus
from repro.verify.oracle import DifferentialOracle
from repro.verify.sessions import run_session_campaign
from repro.verify.shrink import shrink


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential verification harness for the quantum string solver.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    camp = sub.add_parser("campaign", help="run a seeded fuzz campaign")
    camp.add_argument("--instances", type=int, default=200)
    camp.add_argument("--seed", type=int, default=0)
    camp.add_argument(
        "--ops",
        default="all",
        help=f"'all' or comma-separated subset of: {', '.join(ALL_OPS)}",
    )
    camp.add_argument("--unsat-ratio", type=float, default=0.15)
    camp.add_argument("--max-length", type=int, default=4)
    camp.add_argument("--num-reads", type=int, default=64)
    camp.add_argument("--num-sweeps", type=int, default=None)
    camp.add_argument("--max-attempts", type=int, default=3)
    camp.add_argument("--strategy", choices=("direct", "refine"),
                      default="direct",
                      help="quantum-side solve strategy (refine = CEGAR loop)")
    camp.add_argument("--refine-max-rounds", type=int, default=4,
                      help="refinement round budget (with --strategy refine)")
    camp.add_argument("--reference", choices=("classical", "dpllt"),
                      default="classical")
    camp.add_argument("--max-wall-time", type=float, default=None,
                      help="wall-clock budget in seconds")
    camp.add_argument("--no-shrink", action="store_true",
                      help="keep failures unshrunk")
    camp.add_argument("--metamorphic", action="store_true",
                      help="also check metamorphic relations on sat instances")
    camp.add_argument("--corpus-dir", default=None,
                      help="write shrunk failures into this corpus directory")
    camp.add_argument("--workers", type=int, default=1,
                      help=">1 precomputes quantum results on a thread pool")
    camp.add_argument("--json", dest="json_path", default=None,
                      help="write the deterministic JSON report here")

    corp = sub.add_parser("corpus", help="replay the regression corpus")
    corp.add_argument("--dir", dest="directory", default="tests/corpus")
    corp.add_argument("--seed", type=int, default=0)
    corp.add_argument("--num-reads", type=int, default=64)
    corp.add_argument("--strategy", choices=("direct", "refine"),
                      default="direct",
                      help="quantum-side solve strategy for the replay")
    corp.add_argument("--refine-max-rounds", type=int, default=4)
    corp.add_argument("--json", dest="json_path", default=None)

    sess = sub.add_parser(
        "sessions", help="fuzz incremental sessions vs from-scratch solving"
    )
    sess.add_argument("--instances", type=int, default=20)
    sess.add_argument("--seed", type=int, default=0)
    sess.add_argument("--queries", type=int, default=4,
                      help="check-sat queries per generated session")
    sess.add_argument("--min-length", type=int, default=2)
    sess.add_argument("--max-length", type=int, default=4)
    sess.add_argument("--max-constraints", type=int, default=2)
    sess.add_argument("--num-reads", type=int, default=64)
    sess.add_argument("--num-sweeps", type=int, default=None)
    sess.add_argument("--max-attempts", type=int, default=3)
    sess.add_argument("--json", dest="json_path", default=None,
                      help="write the deterministic JSON report here")

    opt = sub.add_parser(
        "opt", help="weighted-MaxSMT optimality campaign + corpus replay"
    )
    opt.add_argument("--instances", type=int, default=100)
    opt.add_argument("--seed", type=int, default=0)
    opt.add_argument(
        "--ops",
        default="all",
        help=f"'all' or comma-separated subset of: {', '.join(ALL_OPS)}",
    )
    opt.add_argument("--soft", type=int, default=3,
                     help="soft assertions drawn per instance")
    opt.add_argument("--infeasible-ratio", type=float, default=0.1)
    opt.add_argument("--max-length", type=int, default=3)
    opt.add_argument("--num-reads", type=int, default=64)
    opt.add_argument("--num-sweeps", type=int, default=None)
    opt.add_argument("--max-restarts", type=int, default=4)
    opt.add_argument("--exhaustive-bits", type=int, default=16,
                     help="exhaustive-finish threshold in string bits")
    opt.add_argument("--deadline-ms", type=float, default=None,
                     help="anytime wall-clock budget per optimize call")
    opt.add_argument("--max-wall-time", type=float, default=None,
                     help="campaign wall-clock budget in seconds")
    opt.add_argument("--corpus-dir", default=None,
                     help="also replay this weighted corpus directory")
    opt.add_argument("--json", dest="json_path", default=None,
                     help="write the deterministic JSON report here")

    shr = sub.add_parser("shrink", help="minimize a failing SMT-LIB script")
    shr.add_argument("script", help="path to the .smt2 file to minimize")
    shr.add_argument("--expect", choices=("sat", "unsat"), default="sat",
                     help="ground-truth status of the script")
    shr.add_argument("--seed", type=int, default=0)
    shr.add_argument("--num-reads", type=int, default=64)
    shr.add_argument("--max-evaluations", type=int, default=500)
    shr.add_argument("--out", default=None,
                     help="write the minimized script here (default: stdout)")
    return parser


def _cmd_campaign(args: argparse.Namespace) -> int:
    ops = "all" if args.ops == "all" else [
        op.strip() for op in args.ops.split(",") if op.strip()
    ]
    config = CampaignConfig(
        instances=args.instances,
        seed=args.seed,
        ops=ops,
        unsat_ratio=args.unsat_ratio,
        max_length=args.max_length,
        num_reads=args.num_reads,
        num_sweeps=args.num_sweeps,
        max_attempts=args.max_attempts,
        strategy=args.strategy,
        refine_max_rounds=args.refine_max_rounds,
        reference=args.reference,
        max_wall_time=args.max_wall_time,
        shrink_failures=not args.no_shrink,
        metamorphic=args.metamorphic,
        corpus_dir=args.corpus_dir,
        num_workers=args.workers,
    )
    report = run_campaign(config)
    print(report.text_report())
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"json report: {args.json_path}")
    return 0 if report.ok else 1


def _cmd_corpus(args: argparse.Namespace) -> int:
    oracle = DifferentialOracle(
        seed=args.seed,
        num_reads=args.num_reads,
        strategy=args.strategy,
        refine_max_rounds=args.refine_max_rounds,
    )
    report = replay_corpus(args.directory, oracle)
    print(report.text_report())
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report.to_dict(), indent=2) + "\n")
    return 0 if report.ok else 1


def _cmd_sessions(args: argparse.Namespace) -> int:
    report = run_session_campaign(
        instances=args.instances,
        seed=args.seed,
        queries=args.queries,
        min_length=args.min_length,
        max_length=args.max_length,
        max_constraints=args.max_constraints,
        num_reads=args.num_reads,
        num_sweeps=args.num_sweeps,
        max_attempts=args.max_attempts,
    )
    print(report.text_report())
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"json report: {args.json_path}")
    return 0 if report.ok else 1


def _cmd_opt(args: argparse.Namespace) -> int:
    from repro.opt import AnytimeOptimizer
    from repro.verify.optimality import (
        OptCampaignConfig,
        OptimalityOracle,
        replay_opt_corpus,
        run_opt_campaign,
    )

    ops = "all" if args.ops == "all" else [
        op.strip() for op in args.ops.split(",") if op.strip()
    ]
    config = OptCampaignConfig(
        instances=args.instances,
        seed=args.seed,
        ops=ops,
        soft=args.soft,
        infeasible_ratio=args.infeasible_ratio,
        max_length=args.max_length,
        num_reads=args.num_reads,
        num_sweeps=args.num_sweeps,
        max_restarts=args.max_restarts,
        exhaustive_bits=args.exhaustive_bits,
        deadline_ms=args.deadline_ms,
        max_wall_time=args.max_wall_time,
    )
    report = run_opt_campaign(config)
    print(report.text_report())
    ok = report.ok
    payload = report.to_dict()
    if args.corpus_dir:
        corpus_report = replay_opt_corpus(
            args.corpus_dir,
            optimizer=AnytimeOptimizer(
                seed=args.seed, num_reads=args.num_reads
            ),
            oracle=OptimalityOracle(),
        )
        print(
            f"opt corpus replay: {corpus_report['total']} cases, "
            f"{corpus_report['failures']} failures"
        )
        for case in corpus_report["cases"]:
            marker = "ok" if case["ok"] else f"FAIL: {case['reason']}"
            print(f"  {case['name']:<40s} {case['status']:<10s} {marker}")
        ok = ok and corpus_report["ok"]
        payload = {"campaign": payload, "corpus": corpus_report}
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2) + "\n")
        print(f"json report: {args.json_path}")
    return 0 if ok else 1


def _cmd_shrink(args: argparse.Namespace) -> int:
    with open(args.script, "r", encoding="utf-8") as handle:
        script = parse_script(handle.read())
    assertions = list(script.assertions)
    expected = SolveStatus.from_value(args.expect)
    oracle = DifferentialOracle(seed=args.seed, num_reads=args.num_reads)

    baseline = oracle.check(assertions, expected=expected)
    verdict = baseline.verdict
    if verdict.is_agreement:
        print(f"nothing to shrink: oracle verdict is {verdict.value}")
        return 0

    def still_fails(candidate) -> bool:
        return oracle.check(candidate, expected=expected).verdict is verdict

    result = shrink(assertions, still_fails,
                    max_evaluations=args.max_evaluations)
    print(
        f"shrunk {result.original_count} -> {len(result.assertions)} "
        f"assertions in {result.evaluations} evaluations "
        f"(verdict held: {verdict.value})",
        file=sys.stderr,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(result.script)
        print(f"minimized script: {args.out}", file=sys.stderr)
    else:
        print(result.script, end="")
    return 1 if verdict.is_bug else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "corpus":
        return _cmd_corpus(args)
    if args.command == "sessions":
        return _cmd_sessions(args)
    if args.command == "opt":
        return _cmd_opt(args)
    return _cmd_shrink(args)


if __name__ == "__main__":
    sys.exit(main())
