"""The optimality oracle: ``repro.opt`` vs. an exact classical reference.

The MaxSMT analogue of :mod:`repro.verify.oracle`. Every optimizer answer
is audited on two axes:

* **soundness** — a ``feasible``/``optimal`` result's model must satisfy
  every hard assertion under the concrete semantics, and its *claimed*
  objective must equal the re-audited violated soft weight
  (:func:`repro.opt.driver.audit_cost` is the single source of truth).
  Bounds must bracket the audited cost, and the claimed lower bound must
  never exceed the cost of any concretely-known model. Any breach is a
  ``SOUNDNESS_BUG`` — a campaign must finish with zero.
* **optimality** — on instances the classical reference can enumerate
  exhaustively, a claimed ``optimal`` must match the reference optimum.
  A reference strictly beating a claimed optimum is a soundness bug; an
  anytime ``feasible`` above the optimum is an expected ``SUBOPTIMAL``,
  tracked but tolerated (annealing is stochastic).

The reference (:class:`OptimalityOracle.reference_optimize`) enumerates
candidate strings the same way :class:`~repro.smt.classical
.ClassicalStringSolver` does — hard-implied lengths, the constraint fill
alphabet plus one escape character — keeping an incumbent and stopping
early at the ground-cost floor. It is complete relative to its fill
alphabet and length bound, the same relativity contract the decision
baseline documents; verdicts are chosen so that relativity can only ever
produce ``UNRESOLVED``, never a false ``SOUNDNESS_BUG``.

The module also carries the weighted fuzz campaign
(:func:`run_opt_campaign`) with its per-instance **gap-certificate
check** (``hard_scale * hard_gap > soft_budget`` whenever any soft
constraint was encoded), and the weighted-corpus replay
(:func:`replay_opt_corpus`) over ``tests/corpus/opt``.
"""

from __future__ import annotations

import enum
import itertools
import json
import os
import random
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.opt.driver import AnytimeOptimizer, audit_cost
from repro.opt.result import OptimizeResult, OptStatus
from repro.service.metrics import MetricsRegistry
from repro.smt import ast
from repro.smt.classical import ClassicalStringSolver
from repro.smt.generator import ALL_OPS, GeneratedInstance, InstanceGenerator
from repro.smt.parser import parse_script
from repro.smt.theory import TheoryError, eval_formula
from repro.utils.timing import Timer

__all__ = [
    "OptVerdict",
    "OptOracleReport",
    "OptimalityOracle",
    "ReferenceOptimum",
    "OptCampaignConfig",
    "OptCampaignReport",
    "run_opt_campaign",
    "replay_opt_corpus",
    "certificate_violation",
]

#: Objective comparisons tolerate float noise at this scale (weights are
#: small integers, so anything below this is a genuine mismatch).
_EPS = 1e-9


class OptVerdict(str, enum.Enum):
    """Classification of one optimizer-vs-reference comparison."""

    #: Claimed optimal, audit passed, matches the reference optimum.
    AGREE_OPTIMAL = "agree_optimal"
    #: Feasible, audit passed, objective equals the reference optimum
    #: (found the optimum without claiming the proof).
    AGREE_FEASIBLE = "agree_feasible"
    #: Feasible, audit passed, objective strictly above the reference
    #: optimum — the expected anytime gap, tracked but tolerated.
    SUBOPTIMAL = "suboptimal"
    #: Both sides refuted the hard assertions.
    AGREE_INFEASIBLE = "agree_infeasible"
    #: Wrong claim: infeasible model, mis-reported objective, broken
    #: bounds, or a claimed optimum the reference strictly beats.
    SOUNDNESS_BUG = "soundness_bug"
    #: Unknown on an instance with a concretely-known feasible model.
    COMPLETENESS_MISS = "completeness_miss"
    #: No comparable definite answer on either side.
    UNRESOLVED = "unresolved"

    __str__ = str.__str__
    __format__ = str.__format__

    @property
    def is_bug(self) -> bool:
        return self is OptVerdict.SOUNDNESS_BUG


@dataclass
class ReferenceOptimum:
    """Outcome of one classical reference optimization."""

    status: OptStatus
    model: Dict[str, str] = field(default_factory=dict)
    objective: Optional[float] = None
    #: False when a budget stopped enumeration before it finished — the
    #: objective is then only an upper bound on the true optimum.
    complete: bool = True
    nodes: int = 0
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status.value,
            "model": dict(sorted(self.model.items())),
            "objective": self.objective,
            "complete": self.complete,
            "reason": self.reason,
        }


@dataclass
class OptOracleReport:
    """Outcome of one optimality check."""

    verdict: OptVerdict
    opt_status: OptStatus
    reference_status: OptStatus
    objective: Optional[float] = None
    reference_objective: Optional[float] = None
    audited_cost: Optional[float] = None
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict.value,
            "opt_status": self.opt_status.value,
            "reference_status": self.reference_status.value,
            "objective": self.objective,
            "reference_objective": self.reference_objective,
            "audited_cost": self.audited_cost,
            "reason": self.reason,
        }

    def __repr__(self) -> str:
        return (
            f"OptOracleReport({self.verdict.value}, "
            f"objective={self.objective!r}, "
            f"reference={self.reference_objective!r})"
        )


def certificate_violation(certificate: Dict[str, Any]) -> Optional[str]:
    """The gap-certificate property; a message iff it is violated.

    Whenever at least one soft constraint was encoded into the QUBO, the
    weighted compiler must have scaled the hard side strictly above the
    total soft budget: ``hard_scale * hard_gap > soft_budget``. This is
    what guarantees no weighted sum of soft violations can ever pay for a
    hard violation at the energy level.
    """
    if not certificate or not certificate.get("num_soft_encoded"):
        return None
    hard_scale = float(certificate.get("hard_scale", 0.0))
    hard_gap = float(certificate.get("hard_gap", 0.0))
    soft_budget = float(certificate.get("soft_budget", 0.0))
    if hard_scale * hard_gap > soft_budget:
        return None
    return (
        f"gap certificate violated: hard_scale({hard_scale}) * "
        f"hard_gap({hard_gap}) = {hard_scale * hard_gap} "
        f"<= soft_budget({soft_budget})"
    )


class OptimalityOracle:
    """Audit optimizer results against an exact classical reference.

    Parameters
    ----------
    max_length:
        Length-scan bound for variables with no exact hard length fact.
    node_budget:
        Candidate-enumeration cap; exceeding it degrades the reference to
        an incomplete upper bound (never to a wrong verdict).
    """

    def __init__(
        self,
        *,
        max_length: int = 6,
        node_budget: int = 500_000,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if node_budget < 1:
            raise ValueError(f"node_budget must be >= 1, got {node_budget}")
        self.max_length = max_length
        self.node_budget = node_budget
        self.metrics = metrics
        self._baseline = ClassicalStringSolver(max_length=max_length)

    # ------------------------------------------------------------------ #
    # the classical reference
    # ------------------------------------------------------------------ #

    def reference_optimize(
        self,
        assertions: Sequence[ast.Term],
        soft_assertions: Sequence[ast.SoftAssertion],
    ) -> ReferenceOptimum:
        """Exhaustive-with-incumbent reference optimum.

        Decomposes the objective per variable (the fragment is
        single-variable, ground softs contribute a fixed cost) and
        enumerates each variable's candidate space — hard-implied lengths
        over the fill alphabet of its hard *and* soft constraints.
        """
        assertions = list(assertions)
        softs = list(soft_assertions)
        for assertion in assertions:
            if not ast.free_string_variables(assertion):
                if not eval_formula(assertion, {}):
                    return ReferenceOptimum(
                        status=OptStatus.INFEASIBLE,
                        reason=f"ground assertion false: {assertion!r}",
                    )

        ground_cost = 0.0
        per_var_soft: Dict[str, List[ast.SoftAssertion]] = {}
        for soft in softs:
            variables = ast.free_string_variables(soft.term)
            if not variables:
                if not eval_formula(soft.term, {}):
                    ground_cost += float(soft.weight)
                continue
            if len(variables) > 1:
                return ReferenceOptimum(
                    status=OptStatus.UNKNOWN,
                    complete=False,
                    reason=f"multi-variable soft term: {soft.term!r}",
                )
            (variable,) = variables
            per_var_soft.setdefault(variable, []).append(soft)

        per_var_hard: Dict[str, List[ast.Term]] = {}
        for assertion in assertions:
            variables = ast.free_string_variables(assertion)
            if len(variables) > 1:
                return ReferenceOptimum(
                    status=OptStatus.UNKNOWN,
                    complete=False,
                    reason=f"multi-variable assertion: {assertion!r}",
                )
            if variables:
                (variable,) = variables
                per_var_hard.setdefault(variable, []).append(assertion)

        model: Dict[str, str] = {}
        objective = ground_cost
        nodes = 0
        complete = True
        for variable in sorted(set(per_var_hard) | set(per_var_soft)):
            outcome = self._optimize_variable(
                variable,
                per_var_hard.get(variable, []),
                per_var_soft.get(variable, []),
                self.node_budget - nodes,
            )
            nodes += outcome["nodes"]
            complete = complete and outcome["complete"]
            if outcome["value"] is None:
                if outcome["complete"]:
                    return ReferenceOptimum(
                        status=OptStatus.INFEASIBLE,
                        nodes=nodes,
                        reason=(
                            f"{variable!r}: no feasible candidate "
                            f"(relative to fill alphabet, length <= "
                            f"{self.max_length})"
                        ),
                    )
                return ReferenceOptimum(
                    status=OptStatus.UNKNOWN,
                    nodes=nodes,
                    complete=False,
                    reason=f"{variable!r}: node budget exhausted",
                )
            model[variable] = outcome["value"]
            objective += outcome["cost"]
        status = OptStatus.OPTIMAL if complete else OptStatus.FEASIBLE
        if self.metrics is not None:
            self.metrics.counter("opt.oracle.references").inc()
        return ReferenceOptimum(
            status=status,
            model=model,
            objective=objective,
            complete=complete,
            nodes=nodes,
        )

    def _optimize_variable(
        self,
        variable: str,
        hard: List[ast.Term],
        softs: List[ast.SoftAssertion],
        budget: int,
    ) -> Dict[str, Any]:
        """Min-cost feasible value of one variable, incumbent-pruned."""
        lengths = self._baseline._candidate_lengths(variable, hard)
        fill = self._baseline._fill_alphabet(hard + [s.term for s in softs])
        weighted = [(float(s.weight), s.term) for s in softs]
        best_value: Optional[str] = None
        best_cost = 0.0
        nodes = 0
        for length in lengths:
            for chars in itertools.product(fill, repeat=length):
                nodes += 1
                if nodes > budget:
                    return {
                        "value": best_value,
                        "cost": best_cost,
                        "nodes": nodes,
                        "complete": False,
                    }
                candidate = "".join(chars)
                try:
                    feasible, cost = audit_cost(
                        hard, weighted, {variable: candidate}
                    )
                except TheoryError:
                    continue
                if feasible and (best_value is None or cost < best_cost):
                    best_value, best_cost = candidate, cost
                    if cost == 0.0:
                        return {
                            "value": best_value,
                            "cost": best_cost,
                            "nodes": nodes,
                            "complete": True,
                        }
        return {
            "value": best_value,
            "cost": best_cost,
            "nodes": nodes,
            "complete": True,
        }

    # ------------------------------------------------------------------ #
    # classification
    # ------------------------------------------------------------------ #

    def check(
        self,
        assertions: Sequence[ast.Term],
        soft_assertions: Sequence[ast.SoftAssertion],
        result: OptimizeResult,
        reference: Optional[ReferenceOptimum] = None,
    ) -> OptOracleReport:
        """Audit one optimizer result; runs the reference when not given."""
        if reference is None:
            reference = self.reference_optimize(assertions, soft_assertions)
        report = self.classify(assertions, soft_assertions, result, reference)
        if self.metrics is not None:
            self.metrics.counter("opt.oracle.checks").inc()
            self.metrics.counter(f"opt.oracle.{report.verdict.value}").inc()
        return report

    def classify(
        self,
        assertions: Sequence[ast.Term],
        soft_assertions: Sequence[ast.SoftAssertion],
        result: OptimizeResult,
        reference: ReferenceOptimum,
    ) -> OptOracleReport:
        """Pure classification of an (optimizer, reference) outcome pair."""
        assertions = list(assertions)
        weighted = [(float(s.weight), s.term) for s in soft_assertions]
        status = OptStatus.from_value(result.status)
        ref_objective = reference.objective

        def _report(verdict: OptVerdict, reason: str, cost=None):
            return OptOracleReport(
                verdict=verdict,
                opt_status=status,
                reference_status=reference.status,
                objective=result.objective,
                reference_objective=ref_objective,
                audited_cost=cost,
                reason=reason,
            )

        if status.is_feasible:
            try:
                feasible, cost = audit_cost(assertions, weighted, result.model)
            except TheoryError as exc:
                return _report(
                    OptVerdict.SOUNDNESS_BUG,
                    f"model does not evaluate: {exc}",
                )
            if not feasible:
                return _report(
                    OptVerdict.SOUNDNESS_BUG,
                    "model violates a hard assertion — hard feasibility was "
                    "traded for soft weight",
                    cost,
                )
            if result.objective is None or abs(cost - result.objective) > _EPS:
                return _report(
                    OptVerdict.SOUNDNESS_BUG,
                    f"claimed objective {result.objective!r} but the model "
                    f"re-audits to {cost}",
                    cost,
                )
            if not (result.lower_bound - _EPS <= cost <= result.upper_bound + _EPS):
                return _report(
                    OptVerdict.SOUNDNESS_BUG,
                    f"bounds [{result.lower_bound}, {result.upper_bound}] do "
                    f"not bracket the audited cost {cost}",
                    cost,
                )
            if ref_objective is not None:
                if result.lower_bound > ref_objective + _EPS:
                    return _report(
                        OptVerdict.SOUNDNESS_BUG,
                        f"claimed lower bound {result.lower_bound} exceeds a "
                        f"concrete model's cost {ref_objective}",
                        cost,
                    )
                if cost < ref_objective - _EPS:
                    # The audited model beats the reference "optimum":
                    # the reference's fill alphabet missed a model. Not a
                    # bug on the optimizer's side — but nothing to agree on.
                    return _report(
                        OptVerdict.UNRESOLVED,
                        f"audited cost {cost} beats the reference optimum "
                        f"{ref_objective} (reference alphabet gap)",
                        cost,
                    )
                if status is OptStatus.OPTIMAL:
                    if reference.complete and cost > ref_objective + _EPS:
                        return _report(
                            OptVerdict.SOUNDNESS_BUG,
                            f"claimed optimal at {cost} but the reference "
                            f"found {ref_objective}",
                            cost,
                        )
                    if not reference.complete and cost > ref_objective + _EPS:
                        return _report(
                            OptVerdict.SOUNDNESS_BUG,
                            f"claimed optimal at {cost} but an incomplete "
                            f"reference already found {ref_objective}",
                            cost,
                        )
                    if not reference.complete:
                        return _report(
                            OptVerdict.UNRESOLVED,
                            "optimality unconfirmed: reference enumeration "
                            "was budget-capped",
                            cost,
                        )
                    return _report(
                        OptVerdict.AGREE_OPTIMAL,
                        "optimum matches the exhaustive reference",
                        cost,
                    )
                if abs(cost - ref_objective) <= _EPS:
                    return _report(
                        OptVerdict.AGREE_FEASIBLE,
                        "objective equals the reference optimum "
                        "(no optimality claim made)",
                        cost,
                    )
                return _report(
                    OptVerdict.SUBOPTIMAL,
                    f"anytime gap: {cost} vs reference {ref_objective}",
                    cost,
                )
            if reference.status is OptStatus.INFEASIBLE:
                return _report(
                    OptVerdict.UNRESOLVED,
                    "reference refuted but an audited feasible model exists "
                    "(reference alphabet/length relativity)",
                    cost,
                )
            return _report(
                OptVerdict.UNRESOLVED,
                f"audit passed; reference gave no optimum "
                f"({reference.reason})",
                cost,
            )

        if status is OptStatus.INFEASIBLE:
            if ref_objective is not None:
                return _report(
                    OptVerdict.SOUNDNESS_BUG,
                    f"claimed infeasible but the reference found a model "
                    f"of cost {ref_objective}",
                )
            if reference.status is OptStatus.INFEASIBLE:
                return _report(OptVerdict.AGREE_INFEASIBLE, "both refuted")
            return _report(
                OptVerdict.UNRESOLVED,
                f"refutation unconfirmed (reference: {reference.reason})",
            )

        # Optimizer unknown.
        if ref_objective is not None:
            return _report(
                OptVerdict.COMPLETENESS_MISS,
                f"unknown on an instance with a feasible model of cost "
                f"{ref_objective} ({result.reason})",
            )
        return _report(
            OptVerdict.UNRESOLVED,
            f"both sides indefinite (optimizer: {result.reason}; "
            f"reference: {reference.reason})",
        )


# --------------------------------------------------------------------- #
# the weighted fuzz campaign
# --------------------------------------------------------------------- #


@dataclass
class OptCampaignConfig:
    """Knobs of one weighted-MaxSMT fuzz campaign."""

    instances: int = 100
    seed: int = 0
    ops: Union[str, Sequence[str]] = "all"
    #: Soft assertions drawn per instance.
    soft: int = 3
    #: Fraction of instances with hard-infeasible cores.
    infeasible_ratio: float = 0.1
    min_length: int = 1
    max_length: int = 3
    max_constraints: int = 2
    # Optimizer configuration.
    num_reads: int = 64
    num_sweeps: Optional[int] = None
    max_restarts: int = 4
    penalty_strength: float = 1.0
    exhaustive_bits: int = 16
    deadline_ms: Optional[float] = None
    # Reference bounds.
    reference_max_length: int = 6
    node_budget: int = 500_000
    max_wall_time: Optional[float] = None

    def resolved_ops(self) -> List[str]:
        if isinstance(self.ops, str):
            if self.ops != "all":
                raise ValueError(
                    f"ops must be 'all' or a sequence of operator names, "
                    f"got {self.ops!r}"
                )
            return list(ALL_OPS)
        return list(self.ops)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "instances": self.instances,
            "seed": self.seed,
            "ops": self.resolved_ops(),
            "soft": self.soft,
            "infeasible_ratio": self.infeasible_ratio,
            "min_length": self.min_length,
            "max_length": self.max_length,
            "max_constraints": self.max_constraints,
            "num_reads": self.num_reads,
            "num_sweeps": self.num_sweeps,
            "max_restarts": self.max_restarts,
            "penalty_strength": self.penalty_strength,
            "exhaustive_bits": self.exhaustive_bits,
        }


_OPT_VERDICT_ORDER = (
    OptVerdict.AGREE_OPTIMAL,
    OptVerdict.AGREE_FEASIBLE,
    OptVerdict.SUBOPTIMAL,
    OptVerdict.AGREE_INFEASIBLE,
    OptVerdict.SOUNDNESS_BUG,
    OptVerdict.COMPLETENESS_MISS,
    OptVerdict.UNRESOLVED,
)


@dataclass
class OptCampaignReport:
    """Aggregated outcome of one weighted campaign."""

    config: OptCampaignConfig
    instances_run: int = 0
    completed: bool = True
    verdicts: Dict[str, int] = field(default_factory=dict)
    coverage: Dict[str, int] = field(default_factory=dict)
    certificate_checks: int = 0
    certificate_violations: int = 0
    failures: List[Dict[str, Any]] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def soundness_bugs(self) -> int:
        return self.verdicts.get(OptVerdict.SOUNDNESS_BUG.value, 0)

    @property
    def ok(self) -> bool:
        """No soundness bugs and no gap-certificate violations."""
        return self.soundness_bugs == 0 and self.certificate_violations == 0

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON payload (no timings, no cache state)."""
        return {
            "config": self.config.to_dict(),
            "instances_run": self.instances_run,
            "completed": self.completed,
            "verdicts": {
                v.value: self.verdicts.get(v.value, 0)
                for v in _OPT_VERDICT_ORDER
            },
            "coverage": {
                op: self.coverage.get(op, 0) for op in sorted(self.coverage)
            },
            "certificate_checks": self.certificate_checks,
            "certificate_violations": self.certificate_violations,
            "failures": list(self.failures),
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    def text_report(self) -> str:
        lines = [
            f"opt campaign: {self.instances_run} instances, "
            f"seed={self.config.seed}, soft={self.config.soft}",
            f"  wall time    : {self.wall_time:.2f}s"
            + ("" if self.completed else "  (budget exhausted)"),
            "  verdicts     : "
            + ", ".join(
                f"{v.value}={self.verdicts.get(v.value, 0)}"
                for v in _OPT_VERDICT_ORDER
            ),
            f"  certificates : {self.certificate_checks} checked, "
            f"{self.certificate_violations} violated",
        ]
        cov = ", ".join(
            f"{op}={self.coverage.get(op, 0)}" for op in sorted(self.coverage)
        )
        lines.append(f"  op coverage  : {cov}")
        for failure in self.failures:
            lines.append(
                f"  FAILURE #{failure['index']} [{failure['kind']}]: "
                f"{failure['reason']}"
            )
        lines.append(f"  result       : {'OK' if self.ok else 'FAILING'}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"OptCampaignReport({self.instances_run} instances, "
            f"{self.soundness_bugs} soundness bugs, "
            f"{self.certificate_violations} certificate violations)"
        )


def run_opt_campaign(
    config: Optional[OptCampaignConfig] = None,
    *,
    metrics: Optional[MetricsRegistry] = None,
) -> OptCampaignReport:
    """Run one seeded weighted-MaxSMT fuzz campaign."""
    config = config if config is not None else OptCampaignConfig()
    metrics = metrics if metrics is not None else MetricsRegistry()
    sampler_params: Dict[str, Any] = {}
    if config.num_sweeps is not None:
        sampler_params["num_sweeps"] = config.num_sweeps
    optimizer = AnytimeOptimizer(
        num_reads=config.num_reads,
        seed=config.seed,
        sampler_params=sampler_params,
        penalty_strength=config.penalty_strength,
        max_restarts=config.max_restarts,
        deadline_ms=config.deadline_ms,
        exhaustive_bits=config.exhaustive_bits,
        metrics=metrics,
    )
    oracle = OptimalityOracle(
        max_length=config.reference_max_length,
        node_budget=config.node_budget,
        metrics=metrics,
    )
    generator = InstanceGenerator(
        min_length=config.min_length,
        max_length=config.max_length,
        max_constraints=config.max_constraints,
        seed=config.seed,
        ops=config.resolved_ops(),
        soft=config.soft,
    )
    coin = random.Random(config.seed ^ 0x5EED)
    instances: List[GeneratedInstance] = []
    for _ in range(config.instances):
        if coin.random() < config.infeasible_ratio:
            instances.append(generator.generate_unsat())
        else:
            instances.append(generator.generate())

    report = OptCampaignReport(config=config)
    timer = Timer().start()
    for index, instance in enumerate(instances):
        if (
            config.max_wall_time is not None
            and timer.elapsed > config.max_wall_time
        ):
            report.completed = False
            break
        _run_opt_one(optimizer, oracle, report, index, instance)
        metrics.counter("opt.campaign.instances").inc()
    report.wall_time = timer.stop()
    metrics.counter("opt.campaign.runs").inc()
    metrics.observe("opt.campaign.wall", report.wall_time)
    if not report.ok:
        metrics.counter("opt.campaign.failing").inc()
    return report


def _run_opt_one(
    optimizer: AnytimeOptimizer,
    oracle: OptimalityOracle,
    report: OptCampaignReport,
    index: int,
    instance: GeneratedInstance,
) -> None:
    result = optimizer.optimize(
        list(instance.assertions), list(instance.soft_assertions)
    )
    oracle_report = oracle.check(
        instance.assertions, instance.soft_assertions, result
    )
    report.instances_run += 1
    verdict = oracle_report.verdict
    report.verdicts[verdict.value] = report.verdicts.get(verdict.value, 0) + 1
    for op in instance.ops:
        report.coverage[op] = report.coverage.get(op, 0) + 1

    if result.certificate:
        report.certificate_checks += 1
        violation = certificate_violation(result.certificate)
        if violation is not None:
            report.certificate_violations += 1
            report.failures.append(
                {
                    "index": index,
                    "kind": "gap_certificate",
                    "ops": list(instance.ops),
                    "reason": violation,
                    "script": instance.script,
                }
            )
    if verdict in (OptVerdict.SOUNDNESS_BUG, OptVerdict.COMPLETENESS_MISS):
        report.failures.append(
            {
                "index": index,
                "kind": verdict.value,
                "ops": list(instance.ops),
                "reason": oracle_report.reason,
                "script": instance.script,
            }
        )


# --------------------------------------------------------------------- #
# weighted corpus replay
# --------------------------------------------------------------------- #

_EXPECT_RE = re.compile(r"^;\s*expect:\s*(\S+)\s*$", re.MULTILINE)
_EXPECT_OBJECTIVE_RE = re.compile(
    r"^;\s*expect-objective:\s*(\S+)\s*$", re.MULTILINE
)


def replay_opt_corpus(
    directory: str,
    optimizer: Optional[AnytimeOptimizer] = None,
    oracle: Optional[OptimalityOracle] = None,
) -> Dict[str, Any]:
    """Replay every weighted ``.smt2`` case under *directory*.

    Case headers: ``; expect: optimal|feasible|infeasible|unknown`` pins
    the expected status class, ``; expect-objective: <number>`` the known
    optimum. A replay **fails** only on soundness bugs or on a claimed
    optimum differing from a pinned ``expect-objective`` — an anytime
    result landing above a pinned optimum without claiming optimality is
    recorded but tolerated, exactly like decision-corpus completeness
    misses.
    """
    optimizer = (
        optimizer if optimizer is not None else AnytimeOptimizer(seed=0)
    )
    oracle = oracle if oracle is not None else OptimalityOracle()
    cases: List[Dict[str, Any]] = []
    failures = 0
    if os.path.isdir(directory):
        entries = sorted(
            e for e in os.listdir(directory) if e.endswith(".smt2")
        )
    else:
        entries = []
    for entry in entries:
        path = os.path.join(directory, entry)
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        script = parse_script(text)
        expected_status = None
        match = _EXPECT_RE.search(text)
        if match:
            expected_status = OptStatus.from_value(match.group(1))
        expected_objective = None
        match = _EXPECT_OBJECTIVE_RE.search(text)
        if match:
            expected_objective = float(match.group(1))
        result = optimizer.optimize(
            list(script.assertions), list(script.soft_assertions)
        )
        oracle_report = oracle.check(
            script.assertions, script.soft_assertions, result
        )
        case_ok = not oracle_report.verdict.is_bug
        reason = oracle_report.reason
        if (
            expected_objective is not None
            and result.status is OptStatus.OPTIMAL
            and result.objective is not None
            and abs(result.objective - expected_objective) > _EPS
        ):
            case_ok = False
            reason = (
                f"claimed optimum {result.objective} != pinned "
                f"expect-objective {expected_objective}"
            )
        if (
            expected_status is OptStatus.INFEASIBLE
            and OptStatus.from_value(result.status).is_feasible
        ):
            case_ok = False
            reason = "feasible result on a case pinned infeasible"
        if not case_ok:
            failures += 1
        cases.append(
            {
                "name": entry[: -len(".smt2")],
                "expected": (
                    expected_status.value if expected_status else None
                ),
                "expected_objective": expected_objective,
                "status": OptStatus.from_value(result.status).value,
                "objective": result.objective,
                "verdict": oracle_report.verdict.value,
                "ok": case_ok,
                "reason": reason if not case_ok else "",
            }
        )
    return {
        "total": len(cases),
        "failures": failures,
        "cases": cases,
        "ok": failures == 0,
    }
