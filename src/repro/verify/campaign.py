"""Seeded differential fuzz campaigns over the instance generator.

A campaign draws random planted-witness instances from
:class:`repro.smt.InstanceGenerator` (every §4.1–§4.12 operator family),
pushes each through the :class:`~repro.verify.oracle.DifferentialOracle`,
tracks per-operator coverage, shrinks every failure to a minimal repro,
and emits two reports:

* :meth:`CampaignReport.to_json` — **deterministic** JSON: at a fixed
  seed the bytes are identical run-to-run and, critically, identical
  whether the compile cache is cold or warm (cache state and wall-clock
  timings are deliberately excluded; they live in the text report).
* :meth:`CampaignReport.text_report` — a human summary with timings and
  cache statistics.

Budgets: ``instances`` bounds the campaign size; ``max_wall_time``
(seconds) stops a serial campaign early (the JSON then records
``"completed": false`` — determinism is only promised for completed
campaigns). With ``num_workers > 1`` the quantum side is precomputed by
:class:`repro.service.batch.BatchSolver` over a thread pool; because
every item reuses the same base seed, the parallel path classifies
exactly like the serial one.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.service.cache import CompileCache
from repro.service.metrics import MetricsRegistry
from repro.smt import ast
from repro.utils.timing import Timer
from repro.smt.generator import ALL_OPS, GeneratedInstance, InstanceGenerator
from repro.smt.printer import render_script
from repro.smt.status import SolveStatus
from repro.verify.metamorphic import (
    RELATIONS,
    MetamorphicViolation,
    check_relation,
)
from repro.verify.oracle import DifferentialOracle, OracleReport, Verdict
from repro.verify.shrink import shrink

__all__ = ["CampaignConfig", "CampaignReport", "FailureRecord", "run_campaign"]


@dataclass
class CampaignConfig:
    """Knobs of one fuzz campaign (all defaulted, all JSON-serializable)."""

    #: Instance budget.
    instances: int = 200
    #: Master seed: drives the generator, the sat/unsat coin and the
    #: quantum solver. Two campaigns with equal configs produce
    #: byte-identical JSON reports.
    seed: int = 0
    #: Operator families to draw from ("all" or a subset of
    #: :data:`repro.smt.generator.ALL_OPS`).
    ops: Union[str, Sequence[str]] = "all"
    #: Fraction of instances planted unsatisfiable.
    unsat_ratio: float = 0.15
    # Generator shape.
    min_length: int = 1
    max_length: int = 4
    max_constraints: int = 3
    # Quantum-solver configuration.
    num_reads: int = 64
    max_attempts: int = 3
    num_sweeps: Optional[int] = None
    penalty_strength: float = 1.0
    #: Quantum-side solve strategy: "direct" or "refine" (the CEGAR loop).
    strategy: str = "direct"
    #: Refinement round budget per check (strategy="refine" only).
    refine_max_rounds: int = 4
    #: Reference engine: "classical" or "dpllt".
    reference: str = "classical"
    reference_max_length: int = 12
    #: Optional wall-clock budget in seconds (serial mode only).
    max_wall_time: Optional[float] = None
    #: Delta-debug failures into minimal repro scripts.
    shrink_failures: bool = True
    shrink_budget: int = 300
    #: Also exercise the metamorphic relations on satisfiable instances.
    metamorphic: bool = False
    #: Directory to write shrunk failures into as ``.smt2`` corpus cases.
    corpus_dir: Optional[str] = None
    #: ``> 1`` precomputes quantum results with a BatchSolver thread pool.
    num_workers: int = 1

    def resolved_ops(self) -> List[str]:
        if isinstance(self.ops, str):
            if self.ops != "all":
                raise ValueError(
                    f"ops must be 'all' or a sequence of operator names, "
                    f"got {self.ops!r}"
                )
            return list(ALL_OPS)
        return list(self.ops)

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic config echo for the JSON report."""
        return {
            "instances": self.instances,
            "seed": self.seed,
            "ops": self.resolved_ops(),
            "unsat_ratio": self.unsat_ratio,
            "min_length": self.min_length,
            "max_length": self.max_length,
            "max_constraints": self.max_constraints,
            "num_reads": self.num_reads,
            "max_attempts": self.max_attempts,
            "num_sweeps": self.num_sweeps,
            "penalty_strength": self.penalty_strength,
            "strategy": self.strategy,
            "refine_max_rounds": self.refine_max_rounds,
            "reference": self.reference,
            "shrink_failures": self.shrink_failures,
            "metamorphic": self.metamorphic,
        }


@dataclass
class FailureRecord:
    """One campaign failure (oracle verdict or metamorphic violation)."""

    index: int
    kind: str  # verdict value or "metamorphic:<relation>"
    ops: List[str]
    reason: str
    script: str
    original_assertions: int = 0
    shrunk_script: str = ""
    shrunk_assertions: int = 0
    shrink_evaluations: int = 0
    corpus_file: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "ops": list(self.ops),
            "reason": self.reason,
            "script": self.script,
            "original_assertions": self.original_assertions,
            "shrunk_script": self.shrunk_script,
            "shrunk_assertions": self.shrunk_assertions,
            "shrink_evaluations": self.shrink_evaluations,
            "corpus_file": self.corpus_file,
        }


_VERDICT_ORDER = (
    Verdict.AGREE_SAT,
    Verdict.AGREE_UNSAT,
    Verdict.SOUNDNESS_BUG,
    Verdict.COMPLETENESS_MISS,
    Verdict.UNRESOLVED,
)


@dataclass
class CampaignReport:
    """Aggregated outcome of one campaign."""

    config: CampaignConfig
    instances_run: int = 0
    completed: bool = True
    verdicts: Dict[str, int] = field(default_factory=dict)
    coverage: Dict[str, int] = field(default_factory=dict)
    metamorphic_checks: int = 0
    metamorphic_violations: int = 0
    failures: List[FailureRecord] = field(default_factory=list)
    wall_time: float = 0.0
    cache_hits: int = 0

    @property
    def soundness_bugs(self) -> int:
        return self.verdicts.get(Verdict.SOUNDNESS_BUG.value, 0)

    @property
    def completeness_misses(self) -> int:
        return self.verdicts.get(Verdict.COMPLETENESS_MISS.value, 0)

    @property
    def ok(self) -> bool:
        """No soundness bugs and no metamorphic violations."""
        return self.soundness_bugs == 0 and self.metamorphic_violations == 0

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON payload.

        Wall-clock timings and cache statistics are *excluded* on purpose:
        the contract is that this dictionary is byte-identical at a fixed
        seed regardless of cache temperature or machine speed.
        """
        return {
            "config": self.config.to_dict(),
            "instances_run": self.instances_run,
            "completed": self.completed,
            "verdicts": {
                v.value: self.verdicts.get(v.value, 0) for v in _VERDICT_ORDER
            },
            "coverage": {op: self.coverage.get(op, 0)
                         for op in sorted(self.coverage)},
            "metamorphic_checks": self.metamorphic_checks,
            "metamorphic_violations": self.metamorphic_violations,
            "failures": [f.to_dict() for f in self.failures],
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    def text_report(self) -> str:
        """Human-oriented summary (includes timings and cache stats)."""
        lines = [
            f"campaign: {self.instances_run} instances, seed={self.config.seed}, "
            f"ops={len(self.config.resolved_ops())}, "
            f"reference={self.config.reference}",
            f"  wall time     : {self.wall_time:.2f}s"
            + ("" if self.completed else "  (budget exhausted)"),
            f"  cache hits    : {self.cache_hits}",
            "  verdicts      : "
            + ", ".join(
                f"{v.value}={self.verdicts.get(v.value, 0)}"
                for v in _VERDICT_ORDER
            ),
        ]
        if self.metamorphic_checks:
            lines.append(
                f"  metamorphic   : {self.metamorphic_checks} checks, "
                f"{self.metamorphic_violations} violations"
            )
        cov = ", ".join(
            f"{op}={self.coverage.get(op, 0)}" for op in sorted(self.coverage)
        )
        lines.append(f"  op coverage   : {cov}")
        for failure in self.failures:
            shrunk = (
                f"shrunk {failure.original_assertions}->"
                f"{failure.shrunk_assertions} assertions"
                if failure.shrunk_script
                else "not shrunk"
            )
            lines.append(
                f"  FAILURE #{failure.index} [{failure.kind}] {shrunk}: "
                f"{failure.reason}"
            )
            if failure.corpus_file:
                lines.append(f"    corpus: {failure.corpus_file}")
        lines.append(f"  result        : {'OK' if self.ok else 'FAILING'}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"CampaignReport({self.instances_run} instances, "
            f"{self.soundness_bugs} soundness bugs, "
            f"{self.completeness_misses} completeness misses)"
        )


# --------------------------------------------------------------------- #
# campaign driver
# --------------------------------------------------------------------- #


def run_campaign(
    config: Optional[CampaignConfig] = None,
    *,
    cache: Optional[CompileCache] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> CampaignReport:
    """Run one seeded differential campaign and return its report."""
    config = config if config is not None else CampaignConfig()
    metrics = metrics if metrics is not None else MetricsRegistry()
    cache = cache if cache is not None else CompileCache(maxsize=512)

    sampler_params: Dict[str, Any] = {}
    if config.num_sweeps is not None:
        sampler_params["num_sweeps"] = config.num_sweeps
    oracle = DifferentialOracle(
        seed=config.seed,
        num_reads=config.num_reads,
        sampler_params=sampler_params,
        max_attempts=config.max_attempts,
        penalty_strength=config.penalty_strength,
        reference=config.reference,
        max_length=config.reference_max_length,
        cache=cache,
        metrics=metrics,
        strategy=config.strategy,
        refine_max_rounds=config.refine_max_rounds,
    )

    instances = _draw_instances(config)
    precomputed = (
        _precompute_quantum(config, instances, cache, metrics)
        if config.num_workers > 1
        else None
    )

    report = CampaignReport(config=config)
    timer = Timer().start()
    for index, instance in enumerate(instances):
        if (
            config.max_wall_time is not None
            and timer.elapsed > config.max_wall_time
        ):
            report.completed = False
            break
        _run_one(config, oracle, report, index, instance,
                 None if precomputed is None else precomputed[index])
        metrics.counter("campaign.instances").inc()
    report.wall_time = timer.stop()
    report.cache_hits = cache.stats.hits
    metrics.counter("campaign.runs").inc()
    metrics.observe("campaign.wall", report.wall_time)
    if not report.ok:
        metrics.counter("campaign.failing").inc()
    return report


def _draw_instances(config: CampaignConfig) -> List[GeneratedInstance]:
    """Deterministically draw the campaign's instance list."""
    generator = InstanceGenerator(
        min_length=config.min_length,
        max_length=config.max_length,
        max_constraints=config.max_constraints,
        seed=config.seed,
        ops=config.resolved_ops(),
    )
    coin = random.Random(config.seed ^ 0x5EED)
    instances: List[GeneratedInstance] = []
    for _ in range(config.instances):
        if coin.random() < config.unsat_ratio:
            instances.append(generator.generate_unsat())
        else:
            instances.append(generator.generate())
    return instances


def _precompute_quantum(
    config: CampaignConfig,
    instances: Sequence[GeneratedInstance],
    cache: CompileCache,
    metrics: MetricsRegistry,
):
    """Quantum-solve every instance up front on a BatchSolver pool."""
    from repro.service.batch import BatchSolver

    sampler_params: Dict[str, Any] = {}
    if config.num_sweeps is not None:
        sampler_params["num_sweeps"] = config.num_sweeps
    batch = BatchSolver(
        num_reads=config.num_reads,
        seed=config.seed,
        sampler_params=sampler_params,
        penalty_strength=config.penalty_strength,
        max_attempts=config.max_attempts,
        cache=cache,
        metrics=metrics,
        num_workers=config.num_workers,
        executor="thread",
        strategy=config.strategy,
        refine_max_rounds=config.refine_max_rounds,
    )
    batch_report = batch.solve_batch([inst.assertions for inst in instances])
    return [item.result for item in batch_report.items]


def _run_one(
    config: CampaignConfig,
    oracle: DifferentialOracle,
    report: CampaignReport,
    index: int,
    instance: GeneratedInstance,
    quantum_result,
) -> None:
    witness = dict(instance.witness) if instance.satisfiable else None
    expected = SolveStatus.SAT if instance.satisfiable else SolveStatus.UNSAT
    oracle_report = oracle.check(
        instance.assertions,
        witness=witness,
        expected=expected,
        quantum_result=quantum_result,
    )
    report.instances_run += 1
    verdict = oracle_report.verdict
    report.verdicts[verdict.value] = report.verdicts.get(verdict.value, 0) + 1
    for op in instance.ops:
        report.coverage[op] = report.coverage.get(op, 0) + 1

    if verdict in (Verdict.SOUNDNESS_BUG, Verdict.COMPLETENESS_MISS):
        report.failures.append(
            _record_failure(config, oracle, index, instance, oracle_report)
        )

    if config.metamorphic and instance.satisfiable:
        for relation in RELATIONS:
            transformed = relation.apply(instance.assertions)
            if transformed is None:
                continue
            report.metamorphic_checks += 1
            try:
                check_relation(relation, instance.assertions, instance.witness)
            except MetamorphicViolation as exc:
                report.metamorphic_violations += 1
                report.failures.append(
                    FailureRecord(
                        index=index,
                        kind=f"metamorphic:{relation.name}",
                        ops=list(instance.ops),
                        reason=str(exc),
                        script=instance.script,
                        original_assertions=len(instance.assertions),
                    )
                )


def _record_failure(
    config: CampaignConfig,
    oracle: DifferentialOracle,
    index: int,
    instance: GeneratedInstance,
    oracle_report: OracleReport,
) -> FailureRecord:
    record = FailureRecord(
        index=index,
        kind=oracle_report.verdict.value,
        ops=list(instance.ops),
        reason=oracle_report.reason,
        script=instance.script,
        original_assertions=len(instance.assertions),
    )
    if not config.shrink_failures:
        return record

    witness = dict(instance.witness) if instance.satisfiable else None
    target = oracle_report.verdict

    def still_fails(candidate: List[ast.Term]) -> bool:
        return oracle.check(candidate, witness=witness).verdict is target

    try:
        result = shrink(
            instance.assertions,
            still_fails,
            max_evaluations=config.shrink_budget,
        )
    except ValueError:
        # The failure did not reproduce on a re-run (annealing flakiness
        # outside the fixed-seed path); keep the unshrunk record.
        return record
    record.shrunk_script = result.script
    record.shrunk_assertions = len(result.assertions)
    record.shrink_evaluations = result.evaluations
    if config.corpus_dir:
        from repro.verify.corpus import save_case

        expected = (
            SolveStatus.SAT
            if target is Verdict.COMPLETENESS_MISS
            else SolveStatus.UNKNOWN
        )
        name = f"shrunk-{config.seed:04d}-{index:04d}-{target.value}"
        path = save_case(
            config.corpus_dir,
            name,
            result.assertions,
            expected=expected,
            comment=(
                f"shrunk from campaign seed={config.seed} instance #{index}: "
                f"{oracle_report.reason}"
            ),
        )
        record.corpus_file = path.rsplit("/", 1)[-1]
    return record
