"""The differential oracle: quantum vs. classical on the same assertions.

The paper's correctness claim (§4.1–§4.12, Table 1) is that the QUBO
formulations *agree with classical string semantics*. This module makes
that claim testable at scale, following the methodology of the SAT/MaxSAT
annealing literature (Bian et al.) and Lin et al.'s quantum bit-vector
solver: run the quantum pipeline and an exact classical reference on the
same conjunction, then classify the pair of outcomes.

Verdict taxonomy
----------------
``AGREE_SAT``
    Both decided sat, and the quantum model was independently re-checked
    against the concrete theory semantics (:func:`repro.smt.theory
    .eval_formula`) — not just trusted from the solver's own verify layer.
``AGREE_UNSAT``
    Both decided unsat.
``SOUNDNESS_BUG``
    The quantum solver is *wrong*: it reported sat with a model that
    violates an assertion, reported sat on an instance the reference
    refutes, or reported unsat on an instance with a verified witness.
    A campaign must end with **zero** of these.
``COMPLETENESS_MISS``
    The quantum solver answered unknown on an instance known to be
    satisfiable (planted witness or reference-found model). Annealing is
    stochastic and incomplete, so misses are *expected at some rate*;
    they are shrunk and tracked, not treated as failures.
``UNRESOLVED``
    Neither side produced a comparable definite answer (e.g. quantum
    unknown on an unsat instance — incompleteness, but no satisfiable
    witness was missed; or the reference itself gave up).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.service.cache import CompileCache
from repro.service.metrics import MetricsRegistry
from repro.smt import ast
from repro.smt.classical import ClassicalStringSolver
from repro.smt.compiler import CompilationError
from repro.smt.solver import QuantumSMTSolver, SmtResult
from repro.smt.status import SolveStatus
from repro.smt.theory import TheoryError, eval_formula

__all__ = ["Verdict", "OracleReport", "DifferentialOracle"]


class Verdict(str, enum.Enum):
    """Classification of one quantum-vs-reference comparison."""

    AGREE_SAT = "agree_sat"
    AGREE_UNSAT = "agree_unsat"
    SOUNDNESS_BUG = "soundness_bug"
    COMPLETENESS_MISS = "completeness_miss"
    UNRESOLVED = "unresolved"

    __str__ = str.__str__
    __format__ = str.__format__

    @property
    def is_bug(self) -> bool:
        return self is Verdict.SOUNDNESS_BUG

    @property
    def is_agreement(self) -> bool:
        return self in (Verdict.AGREE_SAT, Verdict.AGREE_UNSAT)


@dataclass
class OracleReport:
    """Outcome of one differential check."""

    verdict: Verdict
    quantum_status: SolveStatus
    reference_status: SolveStatus
    quantum_model: Dict[str, str] = field(default_factory=dict)
    reference_model: Dict[str, str] = field(default_factory=dict)
    reason: str = ""
    cache_hit: bool = False
    #: Assertions re-checked against the quantum model (soundness audit).
    checked_assertions: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (deterministic field order)."""
        return {
            "verdict": self.verdict.value,
            "quantum_status": self.quantum_status.value,
            "reference_status": self.reference_status.value,
            "quantum_model": dict(sorted(self.quantum_model.items())),
            "reference_model": dict(sorted(self.reference_model.items())),
            "reason": self.reason,
            "checked_assertions": self.checked_assertions,
        }

    def __repr__(self) -> str:
        return (
            f"OracleReport({self.verdict.value}, quantum={self.quantum_status.value}, "
            f"reference={self.reference_status.value})"
        )


class DifferentialOracle:
    """Run quantum and reference solvers on one conjunction and classify.

    Parameters
    ----------
    seed:
        Base seed for the quantum side; every :meth:`check` builds a fresh
        :class:`~repro.smt.solver.QuantumSMTSolver` from it, so reports are
        deterministic at a fixed seed and independent of call order.
    num_reads, sampler_params, max_attempts, penalty_strength:
        Quantum-solver configuration.
    reference:
        ``"classical"`` (default, the propagation + backtracking baseline)
        or ``"dpllt"`` (the classical solver driven through the DPLL(T)
        loop — exercises the lazy-SMT integration as reference).
    max_length, node_budget:
        Reference-solver bounds; ``max_length`` must cover the lengths the
        instances use or the reference degrades to unknown.
    cache:
        Optional shared :class:`~repro.service.cache.CompileCache`. A hit
        returns the identical compiled problem, so cache state can never
        change a verdict (covered by the regression suite).
    metrics:
        Optional :class:`~repro.service.metrics.MetricsRegistry`; verdict
        counters are recorded under ``oracle.*``.
    """

    def __init__(
        self,
        *,
        seed: Optional[int] = 0,
        num_reads: int = 64,
        sampler_params: Optional[Dict[str, Any]] = None,
        max_attempts: int = 3,
        penalty_strength: float = 1.0,
        reference: str = "classical",
        max_length: int = 12,
        node_budget: int = 2_000_000,
        cache: Optional[CompileCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        strategy: str = "direct",
        refine_max_rounds: int = 4,
    ) -> None:
        if reference not in ("classical", "dpllt"):
            raise ValueError(
                f"reference must be 'classical' or 'dpllt', got {reference!r}"
            )
        if strategy not in ("direct", "refine"):
            raise ValueError(
                f"strategy must be 'direct' or 'refine', got {strategy!r}"
            )
        if seed is not None and not isinstance(seed, int):
            raise TypeError(
                f"oracle seeds must be int or None for reproducibility, "
                f"got {type(seed)!r}"
            )
        self.seed = seed
        self.num_reads = num_reads
        self.sampler_params = dict(sampler_params or {})
        self.max_attempts = max_attempts
        self.penalty_strength = penalty_strength
        self.reference = reference
        self.max_length = max_length
        self.node_budget = node_budget
        self.cache = cache
        self.metrics = metrics
        self.strategy = strategy
        self.refine_max_rounds = refine_max_rounds

    # ------------------------------------------------------------------ #
    # solver runs
    # ------------------------------------------------------------------ #

    def quantum_solve(self, assertions: Sequence[ast.Term]) -> SmtResult:
        """Fresh-solver quantum run (optionally through the compile cache)."""
        result, _ = self._quantum_solve_with_hit(assertions)
        return result

    def _quantum_solve_with_hit(self, assertions: Sequence[ast.Term]):
        solver = QuantumSMTSolver(
            seed=self.seed,
            num_reads=self.num_reads,
            sampler_params=self.sampler_params,
            max_attempts=self.max_attempts,
            penalty_strength=self.penalty_strength,
            metrics=self.metrics,
            strategy=self.strategy,
            refine_max_rounds=self.refine_max_rounds,
            compile_cache=self.cache if self.strategy == "refine" else None,
        )
        solver.assertions = list(assertions)
        if self.cache is None:
            return solver.check_sat(), False
        try:
            problem, hit = self.cache.get_or_compile(
                list(assertions),
                penalty_strength=self.penalty_strength,
                seed=self.seed,
                compile_fn=solver.compile,
            )
        except CompilationError as exc:
            return (
                SmtResult(status=SolveStatus.UNKNOWN, reason=f"compilation: {exc}"),
                False,
            )
        return solver.solve_compiled(problem), hit

    def reference_solve(self, assertions: Sequence[ast.Term]):
        """Run the configured exact reference on the conjunction."""
        if self.reference == "dpllt":
            from repro.smt.dpllt import DpllTSolver

            solver = DpllTSolver(
                atoms=list(assertions),
                theory_solver=ClassicalStringSolver(
                    max_length=self.max_length, node_budget=self.node_budget
                ),
            )
            return solver.solve()
        return ClassicalStringSolver(
            max_length=self.max_length, node_budget=self.node_budget
        ).solve(list(assertions))

    # ------------------------------------------------------------------ #
    # classification
    # ------------------------------------------------------------------ #

    def check(
        self,
        assertions: Sequence[ast.Term],
        witness: Optional[Dict[str, str]] = None,
        expected: Optional[SolveStatus] = None,
        quantum_result: Optional[SmtResult] = None,
    ) -> OracleReport:
        """Differentially decide one conjunction.

        ``witness`` is the planted model of a generated instance (used to
        recognize completeness misses even when the reference times out);
        ``expected`` the generator's ground-truth status. ``quantum_result``
        lets a batch driver supply a precomputed quantum outcome (the
        classification is then identical to an inline run).
        """
        assertions = list(assertions)
        if quantum_result is not None:
            q_result, hit = quantum_result, False
        else:
            q_result, hit = self._quantum_solve_with_hit(assertions)
        r_result = self.reference_solve(assertions)
        report = self.classify(
            assertions,
            q_result,
            r_result,
            witness=witness,
            expected=expected,
        )
        report.cache_hit = hit
        if self.metrics is not None:
            self.metrics.counter("oracle.checks").inc()
            self.metrics.counter(f"oracle.{report.verdict.value}").inc()
        return report

    def classify(
        self,
        assertions: Sequence[ast.Term],
        quantum_result: SmtResult,
        reference_result: Any,
        witness: Optional[Dict[str, str]] = None,
        expected: Optional[SolveStatus] = None,
    ) -> OracleReport:
        """Pure classification of a (quantum, reference) outcome pair."""
        assertions = list(assertions)
        q_status = SolveStatus.from_value(quantum_result.status)
        r_status = SolveStatus.from_value(
            getattr(reference_result, "status", SolveStatus.UNKNOWN)
        )
        r_model = dict(getattr(reference_result, "model", {}) or {})
        known_sat = q_status is not SolveStatus.SAT and (
            r_status is SolveStatus.SAT
            or (witness is not None and _model_satisfies(assertions, witness))
            or (expected is not None
                and SolveStatus.from_value(expected) is SolveStatus.SAT)
        )

        if q_status is SolveStatus.SAT:
            checked, violated = _audit_model(assertions, quantum_result.model)
            if violated is not None:
                return OracleReport(
                    verdict=Verdict.SOUNDNESS_BUG,
                    quantum_status=q_status,
                    reference_status=r_status,
                    quantum_model=dict(quantum_result.model),
                    reference_model=r_model,
                    reason=f"quantum model violates semantics: {violated}",
                    checked_assertions=checked,
                )
            if r_status is SolveStatus.UNSAT:
                return OracleReport(
                    verdict=Verdict.SOUNDNESS_BUG,
                    quantum_status=q_status,
                    reference_status=r_status,
                    quantum_model=dict(quantum_result.model),
                    reference_model=r_model,
                    reason=(
                        "reference proved unsat but the quantum model passed "
                        "the semantic audit — reference/evaluator split "
                        "(both sides cannot be right)"
                    ),
                    checked_assertions=checked,
                )
            return OracleReport(
                verdict=Verdict.AGREE_SAT,
                quantum_status=q_status,
                reference_status=r_status,
                quantum_model=dict(quantum_result.model),
                reference_model=r_model,
                reason="model re-checked against concrete semantics",
                checked_assertions=checked,
            )

        if q_status is SolveStatus.UNSAT:
            if known_sat:
                return OracleReport(
                    verdict=Verdict.SOUNDNESS_BUG,
                    quantum_status=q_status,
                    reference_status=r_status,
                    reference_model=r_model,
                    reason="quantum reported unsat on a satisfiable instance",
                )
            if r_status is SolveStatus.UNSAT:
                return OracleReport(
                    verdict=Verdict.AGREE_UNSAT,
                    quantum_status=q_status,
                    reference_status=r_status,
                    reason="both refuted",
                )
            return OracleReport(
                verdict=Verdict.UNRESOLVED,
                quantum_status=q_status,
                reference_status=r_status,
                reference_model=r_model,
                reason=(
                    f"quantum refutation unconfirmed (reference: "
                    f"{r_status.value}: {getattr(reference_result, 'reason', '')})"
                ),
            )

        # Quantum unknown.
        if known_sat:
            return OracleReport(
                verdict=Verdict.COMPLETENESS_MISS,
                quantum_status=q_status,
                reference_status=r_status,
                reference_model=r_model,
                reason=(
                    f"quantum unknown on a satisfiable instance "
                    f"({quantum_result.reason})"
                ),
            )
        return OracleReport(
            verdict=Verdict.UNRESOLVED,
            quantum_status=q_status,
            reference_status=r_status,
            reference_model=r_model,
            reason=(
                f"quantum unknown, reference {r_status.value} "
                f"(no satisfiable witness missed)"
            ),
        )


# --------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------- #


def _audit_model(
    assertions: Sequence[ast.Term], model: Dict[str, str]
):
    """Re-check every assertion under *model*; ``(count, first_violation)``."""
    checked = 0
    for assertion in assertions:
        try:
            ok = eval_formula(assertion, model)
        except TheoryError as exc:
            return checked, f"{assertion!r} ({exc})"
        checked += 1
        if not ok:
            return checked, repr(assertion)
    return checked, None


def _model_satisfies(
    assertions: Sequence[ast.Term], model: Dict[str, str]
) -> bool:
    """True when *model* verifies the whole conjunction."""
    if not model and any(ast.free_string_variables(a) for a in assertions):
        return False
    try:
        return all(eval_formula(a, model) for a in assertions)
    except TheoryError:
        return False
