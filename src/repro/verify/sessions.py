"""Session fuzzing: incremental solving vs from-scratch, query by query.

The incremental architecture's correctness contract (DESIGN.md Appendix H)
says a :class:`~repro.smt.session.SolverSession` answer at any frame depth
is *bit-identical* to a fresh :class:`~repro.smt.solver.QuantumSMTSolver`
given the flattened frame stack at the same seed — same status, same
model, same per-variable energies. This module turns that contract into a
seeded campaign: generate multi-frame push/pop scripts with
:class:`~repro.smt.generator.InstanceGenerator` (``sessions=`` mode),
replay each through one live session *and* through a fresh solver per
``check-sat``, and diff the two answer streams.

Two failure classes are tracked separately:

* **equivalence mismatch** — incremental and from-scratch answers differ
  on any fingerprint field; always a bug in the session layer.
* **soundness bug** — either side answered ``sat`` on a query the
  generator planted as contradictory, or ``unsat`` on a query with a
  planted witness. ``unknown`` on a sat query is an annealing
  completeness miss, recorded but tolerated (as in the oracle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.service.metrics import MetricsRegistry
from repro.smt.generator import InstanceGenerator
from repro.smt.parser import parse_script
from repro.smt.session import SolverSession, iter_check_states
from repro.smt.solver import QuantumSMTSolver, SmtResult
from repro.smt.status import SolveStatus

__all__ = [
    "SessionCampaignReport",
    "result_fingerprint",
    "run_session_campaign",
]


def result_fingerprint(result: SmtResult) -> Dict[str, Any]:
    """The fields the equivalence contract pins, exactly (no rounding)."""
    return {
        "status": str(result.status),
        "model": dict(sorted(result.model.items())),
        "energies": {
            name: float(r.energy)
            for name, r in sorted(result.solve_results.items())
        },
    }


@dataclass
class SessionCampaignReport:
    """Outcome of one incremental-vs-fresh equivalence campaign."""

    instances: int = 0
    queries: int = 0
    memo_hits: int = 0
    statuses: Dict[str, int] = field(default_factory=dict)
    mismatches: List[Dict[str, Any]] = field(default_factory=list)
    soundness_bugs: List[Dict[str, Any]] = field(default_factory=list)
    completeness_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.soundness_bugs

    def to_dict(self) -> Dict[str, Any]:
        return {
            "instances": self.instances,
            "queries": self.queries,
            "memo_hits": self.memo_hits,
            "statuses": dict(sorted(self.statuses.items())),
            "mismatches": list(self.mismatches),
            "soundness_bugs": list(self.soundness_bugs),
            "completeness_misses": self.completeness_misses,
            "ok": self.ok,
        }

    def text_report(self) -> str:
        lines = [
            f"session campaign: {self.instances} instances, "
            f"{self.queries} queries "
            f"({self.memo_hits} answered from the session memo)",
            "  statuses: "
            + ", ".join(
                f"{k}={v}" for k, v in sorted(self.statuses.items())
            ),
            f"  completeness misses: {self.completeness_misses}",
            f"  equivalence mismatches: {len(self.mismatches)}",
            f"  soundness bugs: {len(self.soundness_bugs)}",
        ]
        for bad in self.mismatches[:10]:
            lines.append(
                f"    MISMATCH instance={bad['instance']} query={bad['query']}: "
                f"session={bad['session']} fresh={bad['fresh']}"
            )
        for bad in self.soundness_bugs[:10]:
            lines.append(
                f"    SOUNDNESS instance={bad['instance']} query={bad['query']}: "
                f"expected={bad['expected']} got={bad['status']}"
            )
        lines.append(f"  result: {'OK' if self.ok else 'FAILING'}")
        return "\n".join(lines)


def _fresh_answers(
    script_text: str,
    *,
    num_reads: int,
    seed: Optional[int],
    sampler_params: Dict[str, Any],
    max_attempts: int,
    metrics: Optional[MetricsRegistry],
) -> List[SmtResult]:
    """One from-scratch solve per ``check-sat`` of *script_text*.

    Each query gets a brand-new solver over the flattened frame stack at
    that point — the reference the session must be bit-identical to.
    """
    script = parse_script(script_text)
    answers: List[SmtResult] = []
    for _index, flattened in iter_check_states(script):
        solver = QuantumSMTSolver(
            num_reads=num_reads,
            seed=seed,
            sampler_params=sampler_params,
            max_attempts=max_attempts,
            metrics=metrics,
        )
        solver.declarations = dict(script.declarations)
        solver.assertions = list(flattened)
        answers.append(solver.check_sat())
    return answers


def run_session_campaign(
    *,
    instances: int = 20,
    seed: int = 0,
    queries: int = 4,
    min_length: int = 2,
    max_length: int = 4,
    max_constraints: int = 2,
    num_reads: int = 64,
    num_sweeps: Optional[int] = None,
    max_attempts: int = 3,
    metrics: Optional[MetricsRegistry] = None,
) -> SessionCampaignReport:
    """Fuzz *instances* generated push/pop sessions against fresh solves."""
    generator = InstanceGenerator(
        min_length=min_length,
        max_length=max_length,
        max_constraints=max_constraints,
        seed=seed,
        sessions=queries,
    )
    sampler_params: Dict[str, Any] = {}
    if num_sweeps is not None:
        sampler_params["num_sweeps"] = num_sweeps

    report = SessionCampaignReport()
    for index in range(instances):
        instance = generator.generate()
        solver_seed = seed * 1_000_003 + index
        session = SolverSession(
            num_reads=num_reads,
            seed=solver_seed,
            sampler_params=sampler_params,
            max_attempts=max_attempts,
            metrics=metrics,
        )
        session_answers = session.run_script_text(instance.script)
        fresh_answers = _fresh_answers(
            instance.script,
            num_reads=num_reads,
            seed=solver_seed,
            sampler_params=sampler_params,
            max_attempts=max_attempts,
            metrics=metrics,
        )
        report.instances += 1
        report.memo_hits += session.stats.memo_hits

        for query, (incremental, fresh) in enumerate(
            zip(session_answers, fresh_answers)
        ):
            report.queries += 1
            status = str(incremental.status)
            report.statuses[status] = report.statuses.get(status, 0) + 1

            left = result_fingerprint(incremental)
            right = result_fingerprint(fresh)
            if left != right:
                report.mismatches.append(
                    {
                        "instance": index,
                        "query": query,
                        "session": left,
                        "fresh": right,
                        "script": instance.script,
                    }
                )

            expected = (
                instance.expected_statuses[query]
                if query < len(instance.expected_statuses)
                else None
            )
            if expected is None:
                continue
            if incremental.status is SolveStatus.SAT and expected == "unsat":
                report.soundness_bugs.append(
                    {
                        "instance": index,
                        "query": query,
                        "expected": expected,
                        "status": status,
                        "model": dict(incremental.model),
                        "script": instance.script,
                    }
                )
            elif incremental.status is SolveStatus.UNSAT and expected == "sat":
                report.soundness_bugs.append(
                    {
                        "instance": index,
                        "query": query,
                        "expected": expected,
                        "status": status,
                        "model": {},
                        "script": instance.script,
                    }
                )
            elif (
                incremental.status is not SolveStatus.SAT and expected == "sat"
            ):
                report.completeness_misses += 1
    return report
