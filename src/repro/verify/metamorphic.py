"""Semantics-preserving metamorphic transforms over assertion conjunctions.

Metamorphic testing sidesteps the oracle problem: instead of knowing the
expected output, we know a *relation* — here, that a transformed
conjunction is logically equivalent to the original, so its satisfying
status must not change and the planted witness must stay an energy-zero
(verifying) model of the recompiled QUBOs.

The relations (each a :class:`MetamorphicRelation`) are chosen so the
transformed instance stays inside the QUBO compiler's fragment — every
ground string position is evaluated through
:func:`repro.smt.theory.eval_term`, so wrapping a literal in operators
that evaluate back to the same value exercises *different formulations*
for the *same semantics*:

* ``double_reverse`` — every ground string literal ``"s"`` becomes
  ``(str.rev "reversed-s")`` (identity: rev ∘ rev = id);
* ``concat_reassociation`` — literal right-hand sides split into
  ``(str.++ ...)`` and nested concatenations re-grouped (associativity);
* ``equality_symmetry`` — ``(= a b)`` flipped to ``(= b a)`` everywhere
  (symmetry of equality; the compiler accepts both orientations);
* ``palindrome_reverse`` — for *palindromic* ground values,
  ``x = "p"`` ↔ ``x = (str.rev "p")`` (a palindrome equals its reverse);
* ``replace_absent_noop`` — literals wrapped in
  ``(str.replace "s" "<absent>" "q")`` where the pattern provably does
  not occur (SMT-LIB: replace of an absent pattern is the identity).

``apply`` returns ``None`` when a relation has nothing to latch onto in
the given conjunction (e.g. no palindromic literal), so harnesses can
skip-not-fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.smt import ast
from repro.smt.theory import TheoryError, eval_formula, eval_term

__all__ = [
    "MetamorphicRelation",
    "RELATIONS",
    "relation_by_name",
    "check_relation",
    "MetamorphicViolation",
]


class MetamorphicViolation(AssertionError):
    """A transform changed the semantics it was supposed to preserve."""


@dataclass(frozen=True)
class MetamorphicRelation:
    """A named semantics-preserving conjunction transform."""

    name: str
    description: str
    transform: Callable[[List[ast.Term]], Optional[List[ast.Term]]]

    def apply(self, assertions: Sequence[ast.Term]) -> Optional[List[ast.Term]]:
        """The transformed conjunction, or ``None`` when not applicable."""
        out = self.transform(list(assertions))
        if out is not None and [repr(t) for t in out] == [
            repr(t) for t in assertions
        ]:
            return None  # nothing changed: treat as not applicable
        return out


# --------------------------------------------------------------------- #
# generic term rewriting
# --------------------------------------------------------------------- #


def _rewrite(term: ast.Term, fn: Callable[[ast.Term], ast.Term]) -> ast.Term:
    """Bottom-up rewrite: rebuild *term* with *fn* applied to every node."""
    if isinstance(term, ast.Concat):
        term = ast.Concat(tuple(_rewrite(p, fn) for p in term.parts))
    elif isinstance(term, ast.Replace):
        term = ast.Replace(
            _rewrite(term.source, fn),
            _rewrite(term.old, fn),
            _rewrite(term.new, fn),
            replace_all=term.replace_all,
        )
    elif isinstance(term, ast.Reverse):
        term = ast.Reverse(_rewrite(term.source, fn))
    elif isinstance(term, ast.At):
        term = ast.At(_rewrite(term.source, fn), _rewrite(term.index, fn))
    elif isinstance(term, ast.Substr):
        term = ast.Substr(
            _rewrite(term.source, fn),
            _rewrite(term.offset, fn),
            _rewrite(term.count, fn),
        )
    elif isinstance(term, ast.Length):
        term = ast.Length(_rewrite(term.source, fn))
    elif isinstance(term, ast.Contains):
        term = ast.Contains(_rewrite(term.haystack, fn), _rewrite(term.needle, fn))
    elif isinstance(term, ast.PrefixOf):
        term = ast.PrefixOf(_rewrite(term.prefix, fn), _rewrite(term.string, fn))
    elif isinstance(term, ast.SuffixOf):
        term = ast.SuffixOf(_rewrite(term.suffix, fn), _rewrite(term.string, fn))
    elif isinstance(term, ast.IndexOf):
        term = ast.IndexOf(
            _rewrite(term.haystack, fn),
            _rewrite(term.needle, fn),
            _rewrite(term.start, fn),
        )
    elif isinstance(term, ast.InRe):
        # Regular-language subterms are left untouched: they are not
        # string-sorted and the subset matcher has no rewrite headroom.
        term = ast.InRe(_rewrite(term.string, fn), term.regex)
    elif isinstance(term, ast.Eq):
        term = ast.Eq(_rewrite(term.lhs, fn), _rewrite(term.rhs, fn))
    elif isinstance(term, ast.Not):
        term = ast.Not(_rewrite(term.operand, fn))
    return fn(term)


def _map_assertions(
    assertions: List[ast.Term], fn: Callable[[ast.Term], ast.Term]
) -> List[ast.Term]:
    return [_rewrite(a, fn) for a in assertions]


# --------------------------------------------------------------------- #
# the relations
# --------------------------------------------------------------------- #


def _double_reverse(assertions: List[ast.Term]) -> Optional[List[ast.Term]]:
    def fn(term: ast.Term) -> ast.Term:
        if isinstance(term, ast.StrLit) and len(term.value) >= 1:
            return ast.Reverse(ast.StrLit(term.value[::-1]))
        return term

    return _map_assertions(assertions, fn)


def _concat_reassociation(assertions: List[ast.Term]) -> Optional[List[ast.Term]]:
    changed = False

    def fn(term: ast.Term) -> ast.Term:
        nonlocal changed
        if isinstance(term, ast.Eq):
            for a, b in ((term.lhs, term.rhs), (term.rhs, term.lhs)):
                if isinstance(a, ast.StrVar):
                    rewritten = _split_or_regroup(b)
                    if rewritten is not None:
                        changed = True
                        return ast.Eq(a, rewritten)
        return term

    out = _map_assertions(assertions, fn)
    return out if changed else None


def _split_or_regroup(term: ast.Term) -> Optional[ast.Term]:
    """Split a literal at its midpoint, or re-group a nested concat."""
    if isinstance(term, ast.StrLit) and len(term.value) >= 2:
        cut = len(term.value) // 2
        return ast.Concat(
            (ast.StrLit(term.value[:cut]), ast.StrLit(term.value[cut:]))
        )
    if isinstance(term, ast.Concat) and len(term.parts) == 2:
        # (a ++ b) -> (b' ++ c) by re-cutting the flattened literal when
        # both parts are literals (associativity over a different split).
        left, right = term.parts
        if isinstance(left, ast.StrLit) and isinstance(right, ast.StrLit):
            whole = left.value + right.value
            if len(whole) >= 2:
                cut = max(1, len(whole) // 2)
                if cut != len(left.value):
                    return ast.Concat(
                        (ast.StrLit(whole[:cut]), ast.StrLit(whole[cut:]))
                    )
                return ast.Concat(
                    (ast.StrLit(whole[:1]), ast.StrLit(whole[1:]))
                )
    return None


def _equality_symmetry(assertions: List[ast.Term]) -> Optional[List[ast.Term]]:
    def fn(term: ast.Term) -> ast.Term:
        if isinstance(term, ast.Eq):
            return ast.Eq(term.rhs, term.lhs)
        return term

    return _map_assertions(assertions, fn)


def _palindrome_reverse(assertions: List[ast.Term]) -> Optional[List[ast.Term]]:
    changed = False

    def fn(term: ast.Term) -> ast.Term:
        nonlocal changed
        if isinstance(term, ast.Eq):
            for a, b in ((term.lhs, term.rhs), (term.rhs, term.lhs)):
                if isinstance(a, ast.StrVar) and isinstance(b, ast.StrLit):
                    v = b.value
                    if len(v) >= 2 and v == v[::-1]:
                        changed = True
                        return ast.Eq(a, ast.Reverse(b))
        return term

    out = _map_assertions(assertions, fn)
    return out if changed else None


def _replace_absent_noop(assertions: List[ast.Term]) -> Optional[List[ast.Term]]:
    changed = False

    def fn(term: ast.Term) -> ast.Term:
        nonlocal changed
        if isinstance(term, ast.StrLit) and term.value:
            absent = _absent_pattern(term.value)
            changed = True
            return ast.Replace(term, ast.StrLit(absent), ast.StrLit("q"))
        return term

    out = _map_assertions(assertions, fn)
    return out if changed else None


def _absent_pattern(value: str) -> str:
    """A two-character pattern provably not contained in *value*."""
    for c in "zyxwvutsr":
        if c not in value:
            return c + c
    # Every probe character occurs: build a pair that cannot be a substring
    # by using a character + one absent from the doubled alphabet scan.
    return "\x01\x01"


RELATIONS: Tuple[MetamorphicRelation, ...] = (
    MetamorphicRelation(
        "double_reverse",
        'every ground literal "s" -> (str.rev "s-reversed")',
        _double_reverse,
    ),
    MetamorphicRelation(
        "concat_reassociation",
        "literal rhs split / nested concat re-grouped (associativity)",
        _concat_reassociation,
    ),
    MetamorphicRelation(
        "equality_symmetry",
        "(= a b) -> (= b a) everywhere",
        _equality_symmetry,
    ),
    MetamorphicRelation(
        "palindrome_reverse",
        'x = "p" <-> x = (str.rev "p") for palindromic p',
        _palindrome_reverse,
    ),
    MetamorphicRelation(
        "replace_absent_noop",
        "literals wrapped in str.replace with a provably absent pattern",
        _replace_absent_noop,
    ),
)


def relation_by_name(name: str) -> MetamorphicRelation:
    for relation in RELATIONS:
        if relation.name == name:
            return relation
    raise KeyError(
        f"unknown metamorphic relation {name!r}; "
        f"known: {[r.name for r in RELATIONS]}"
    )


# --------------------------------------------------------------------- #
# the metamorphic check itself
# --------------------------------------------------------------------- #


def check_relation(
    relation: MetamorphicRelation,
    assertions: Sequence[ast.Term],
    witness: Optional[Dict[str, str]] = None,
) -> Optional[List[ast.Term]]:
    """Validate *relation* on one conjunction; return the transformed form.

    Three layers of checking (raising :class:`MetamorphicViolation`):

    1. the planted witness (when given) still satisfies every transformed
       assertion under the concrete semantics;
    2. every *ground* transformed assertion keeps its truth value;
    3. the transformed conjunction still compiles, and the witness encodes
       to a verifying — energy-zero — state of every recompiled
       formulation (checked via ``formulation.verify`` plus an exact
       energy comparison on aux-free models).

    Returns ``None`` when the relation is not applicable.
    """
    transformed = relation.apply(assertions)
    if transformed is None:
        return None

    # 1–2: concrete semantics.
    for original, rewritten in zip(assertions, transformed):
        if not ast.free_string_variables(original):
            try:
                before = eval_formula(original, {})
                after = eval_formula(rewritten, {})
            except TheoryError as exc:
                raise MetamorphicViolation(
                    f"{relation.name}: transformed ground assertion "
                    f"unevaluable: {rewritten!r} ({exc})"
                ) from exc
            if before != after:
                raise MetamorphicViolation(
                    f"{relation.name}: ground truth changed "
                    f"{before} -> {after}: {rewritten!r}"
                )
        elif witness is not None:
            if not eval_formula(original, witness):
                continue  # the witness never satisfied this one; skip
            if not eval_formula(rewritten, witness):
                raise MetamorphicViolation(
                    f"{relation.name}: witness no longer satisfies "
                    f"{rewritten!r} (was {original!r})"
                )

    # 3: recompile and check the witness stays an equal-energy verifying
    # model of the transformed QUBOs.
    if witness is not None:
        _check_witness_energy(relation, list(assertions), transformed, witness)
    return transformed


def _check_witness_energy(
    relation: MetamorphicRelation,
    original: List[ast.Term],
    transformed: List[ast.Term],
    witness: Dict[str, str],
) -> None:
    """Cross-compilation invariant on the planted witness.

    The transformed conjunction must (a) stay inside the compiler
    fragment, (b) keep ``formulation.verify(witness)`` true for every
    constrained variable, and (c) assign the witness's encoded state the
    *same energy* as the original compilation did. Satisfying states of
    formulations with soft guiding terms sit above ``ground_energy()``,
    so the invariant is energy *preservation* across the transform, not
    absolute energy zero; the aux-free case additionally pins the energy
    to the formulation's ground energy when the two agree pre-transform.
    """
    from repro.core.encoding import encode_string
    from repro.smt.compiler import CompilationError, compile_assertions

    try:
        before = compile_assertions(list(original), seed=0)
    except CompilationError:
        return  # original not compilable: nothing to compare against
    try:
        after = compile_assertions(list(transformed), seed=0)
    except CompilationError as exc:
        raise MetamorphicViolation(
            f"{relation.name}: transformed conjunction fell out of the "
            f"compiler fragment: {exc}"
        ) from exc
    for variable, formulation in after.formulations.items():
        value = witness.get(variable)
        if value is None:
            continue
        if not formulation.verify(value):
            raise MetamorphicViolation(
                f"{relation.name}: witness {value!r} fails "
                f"{formulation.describe()} after transform"
            )
        reference = before.formulations.get(variable)
        if reference is None:
            continue
        state = encode_string(value)
        model_after = formulation.build_model()
        model_before = reference.build_model()
        if (
            state.size != model_after.num_variables
            or state.size != model_before.num_variables
        ):
            continue  # aux-variable gadgets: state vector is not aux-free
        energy_after = float(model_after.energy(state))
        energy_before = float(model_before.energy(state))
        if abs(energy_after - energy_before) > 1e-9:
            raise MetamorphicViolation(
                f"{relation.name}: witness energy changed "
                f"{energy_before} -> {energy_after} for "
                f"{formulation.describe()}"
            )
