"""Differential verification harness for the quantum string solver.

The paper's central claim is that QUBO formulations of string
constraints (§4) can stand in for a classical string theory solver.
This subpackage stress-tests that claim end to end:

* :mod:`~repro.verify.oracle` — :class:`DifferentialOracle` runs the
  quantum solver against a trusted classical reference and classifies
  every outcome on the :class:`Verdict` taxonomy (agreement, soundness
  bug, completeness miss, unresolved).
* :mod:`~repro.verify.metamorphic` — semantics-preserving transforms
  (double reverse, concat re-association, equality symmetry, palindrome
  reversal, replace-with-absent-pattern) that must preserve sat status
  and energy-zero witnesses.
* :mod:`~repro.verify.shrink` — a delta-debugging minimizer that
  reduces failing conjunctions to minimal SMT-LIB repro scripts.
* :mod:`~repro.verify.campaign` — seeded fuzz campaigns over
  :class:`repro.smt.InstanceGenerator` with coverage counters, budgets,
  deterministic JSON reports and metrics wiring.
* :mod:`~repro.verify.corpus` — a checked-in SMT-LIB regression corpus
  (``tests/corpus/``) replayed through the oracle, including multi-query
  push/pop cases with one ``; expect:`` header per ``check-sat``.
* :mod:`~repro.verify.sessions` — seeded campaigns pinning incremental
  :class:`repro.smt.session.SolverSession` answers bit-identical to
  from-scratch solves at every frame depth.
* :mod:`~repro.verify.optimality` — :class:`OptimalityOracle` checks the
  weighted-MaxSMT optimizer against an exhaustive classical reference
  (:class:`OptVerdict` taxonomy), audits gap certificates, and runs
  seeded weighted campaigns with deterministic JSON reports.

Run ``python -m repro.verify campaign --instances 30`` for a quick
smoke campaign.
"""

from repro.verify.oracle import DifferentialOracle, OracleReport, Verdict
from repro.verify.metamorphic import (
    MetamorphicRelation,
    MetamorphicViolation,
    RELATIONS,
    check_relation,
)
from repro.verify.shrink import ShrinkResult, shrink
from repro.verify.campaign import (
    CampaignConfig,
    CampaignReport,
    FailureRecord,
    run_campaign,
)
from repro.verify.corpus import (
    CorpusCase,
    CorpusReport,
    load_corpus,
    replay_corpus,
    save_case,
)
from repro.verify.sessions import (
    SessionCampaignReport,
    run_session_campaign,
)
from repro.verify.optimality import (
    OptCampaignConfig,
    OptCampaignReport,
    OptimalityOracle,
    OptOracleReport,
    OptVerdict,
    ReferenceOptimum,
    certificate_violation,
    replay_opt_corpus,
    run_opt_campaign,
)

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "CorpusCase",
    "CorpusReport",
    "DifferentialOracle",
    "FailureRecord",
    "MetamorphicRelation",
    "MetamorphicViolation",
    "OptCampaignConfig",
    "OptCampaignReport",
    "OptOracleReport",
    "OptVerdict",
    "OptimalityOracle",
    "OracleReport",
    "RELATIONS",
    "ReferenceOptimum",
    "SessionCampaignReport",
    "ShrinkResult",
    "Verdict",
    "certificate_violation",
    "check_relation",
    "load_corpus",
    "replay_corpus",
    "replay_opt_corpus",
    "run_campaign",
    "run_opt_campaign",
    "run_session_campaign",
    "save_case",
    "shrink",
]
