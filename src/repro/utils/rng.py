"""Random number generator discipline.

All stochastic components in the library accept a ``seed`` argument that may
be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`. :func:`ensure_rng` normalizes the three
cases so call sites never branch.

Parallel samplers need statistically independent streams per worker.
:func:`spawn_rngs` derives child generators through NumPy's ``SeedSequence``
spawning machinery, which guarantees independence without manual seed
arithmetic.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["SeedLike", "ensure_rng", "spawn_rngs"]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, a
        ``SeedSequence``, or a ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, int, SeedSequence or numpy Generator, got {type(seed)!r}"
    )


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive *n* independent generators from a single seed.

    Used by the parallel sampling layer so each worker process or batch gets
    its own stream; results are reproducible given the parent seed and are
    independent of scheduling order.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh entropy from the parent stream;
        # reproducible because the parent is.
        seeds = seed.integers(0, 2**63 - 1, size=n, dtype=np.int64)
        return [np.random.default_rng(int(s)) for s in seeds]
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def rng_integers(
    rng: np.random.Generator, low: int, high: int, size: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Thin wrapper over ``Generator.integers`` with an exclusive high bound."""
    return rng.integers(low, high, size=size)
