"""Shared utilities: RNG discipline, timing, ASCII tables, validation.

These helpers are deliberately dependency-light; every other subpackage may
import from here, but :mod:`repro.utils` imports nothing from the rest of the
library.
"""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, Timer
from repro.utils.asciitab import (
    CHAR_BITS,
    PRINTABLE_MAX,
    PRINTABLE_MIN,
    is_ascii7,
    is_printable,
    printable_chars,
    random_printable,
)
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "CHAR_BITS",
    "PRINTABLE_MAX",
    "PRINTABLE_MIN",
    "Stopwatch",
    "Timer",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
    "ensure_rng",
    "is_ascii7",
    "is_printable",
    "printable_chars",
    "random_printable",
    "spawn_rngs",
]
