"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any, Tuple, Type, Union

import numpy as np

__all__ = [
    "check_type",
    "check_positive",
    "check_non_negative",
    "check_probability",
]

_NUMERIC = (int, float, np.integer, np.floating)


def check_type(name: str, value: Any, types: Union[Type, Tuple[Type, ...]]) -> Any:
    """Raise ``TypeError`` unless *value* is an instance of *types*."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = ", ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value


def check_positive(name: str, value: Any) -> float:
    """Raise unless *value* is a finite number strictly greater than zero."""
    check_type(name, value, _NUMERIC)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be positive and finite, got {value}")
    return float(value)


def check_non_negative(name: str, value: Any) -> float:
    """Raise unless *value* is a finite number greater than or equal to zero."""
    check_type(name, value, _NUMERIC)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be non-negative and finite, got {value}")
    return float(value)


def check_probability(name: str, value: Any) -> float:
    """Raise unless *value* lies in the closed interval [0, 1]."""
    check_type(name, value, _NUMERIC)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return float(value)
