"""7-bit ASCII alphabet helpers.

The paper fixes the alphabet to 7-bit ASCII: every character is encoded as a
7-bit binary vector (most-significant bit first), so a string of length *n*
occupies ``7 n`` binary variables. This module centralizes the alphabet
constants and the printable subset used when formulations need a *soft*
preference for human-readable output (§4.5 of the paper).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CHAR_BITS",
    "ALPHABET_SIZE",
    "PRINTABLE_MIN",
    "PRINTABLE_MAX",
    "is_ascii7",
    "is_printable",
    "printable_chars",
    "random_printable",
]

#: Bits per character in the paper's encoding (§4, preamble).
CHAR_BITS: int = 7

#: Number of code points representable with :data:`CHAR_BITS` bits.
ALPHABET_SIZE: int = 1 << CHAR_BITS

#: First printable ASCII code point (space).
PRINTABLE_MIN: int = 0x20

#: Last printable ASCII code point (tilde).
PRINTABLE_MAX: int = 0x7E


def is_ascii7(text: str) -> bool:
    """True when every character of *text* fits in 7 bits."""
    return all(ord(c) < ALPHABET_SIZE for c in text)


def is_printable(text: str) -> bool:
    """True when every character is printable ASCII (0x20–0x7E)."""
    return all(PRINTABLE_MIN <= ord(c) <= PRINTABLE_MAX for c in text)


def printable_chars() -> str:
    """The printable ASCII alphabet as a string, in code-point order."""
    return "".join(chr(c) for c in range(PRINTABLE_MIN, PRINTABLE_MAX + 1))


def random_printable(rng: np.random.Generator, length: int = 1) -> str:
    """Draw *length* printable ASCII characters uniformly at random."""
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    codes = rng.integers(PRINTABLE_MIN, PRINTABLE_MAX + 1, size=length)
    return "".join(chr(int(c)) for c in codes)
