"""Monotonic-clock timing primitives shared across the library.

This module is the **single source of wall-clock measurement** for the
benchmarks (``benchmarks/``), the service metrics
(:class:`repro.service.metrics.MetricsRegistry`) and the
performance-regression harness (:mod:`repro.perf`):

* :class:`Timer` — a context manager around ``time.perf_counter``;
* :func:`measure` — time one callable, returning ``(seconds, result)``;
* :class:`SegmentTimer` — a context manager that reports an elapsed
  duration into an arbitrary ``record(name, seconds)`` callback — the one
  primitive behind both :meth:`Stopwatch.time` and
  :meth:`repro.service.metrics.MetricsRegistry.time`;
* :class:`Stopwatch` — named segment accumulation for splitting a solve
  into compile / embed / anneal / decode phases.

Keep clock access here: duplicated ad-hoc ``perf_counter`` arithmetic is
exactly what the perf harness exists to retire.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Timer", "Stopwatch", "SegmentTimer", "measure"]


def measure(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[float, Any]:
    """Call *fn* and return ``(elapsed_seconds, result)``.

    The elapsed time is measured with ``time.perf_counter`` (monotonic).

    Examples
    --------
    >>> seconds, value = measure(sum, range(10))
    >>> value, seconds >= 0.0
    (45, True)
    """
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


class Timer:
    """Context manager measuring wall-clock time with ``perf_counter``.

    Can also be driven imperatively — ``start()`` / ``stop()`` — for call
    sites where the measured region spans exception handlers and a ``with``
    block would not scope naturally (e.g. per-item batch timing).

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def start(self) -> "Timer":
        """Begin (or restart) the measured region."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """End the measured region and return the elapsed seconds."""
        self.__exit__()
        return self._elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start
            self._start = None

    @property
    def elapsed(self) -> float:
        """Seconds elapsed; valid after the ``with`` block exits."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed


class SegmentTimer:
    """Time a ``with`` block and report it into a record callback.

    The generic segment-timing primitive: ``record(name, seconds)`` is
    called exactly once on exit. :class:`Stopwatch` points it at its own
    segment store; :class:`~repro.service.metrics.MetricsRegistry` points
    it at its lock-guarded ``observe`` — one implementation, no per-caller
    copies of the clock arithmetic.
    """

    __slots__ = ("_record", "_name", "_start")

    def __init__(self, record: Callable[[str, float], None], name: str) -> None:
        self._record = record
        self._name = name
        self._start: Optional[float] = None

    def __enter__(self) -> "SegmentTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self._record(self._name, time.perf_counter() - self._start)


@dataclass
class Stopwatch:
    """Accumulates named timing segments across repeated measurements.

    Useful for splitting a solve into build / sample / decode phases when
    profiling the pipeline (see ``benchmarks/bench_figure1_pipeline.py``).
    """

    segments: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, name: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative duration for segment {name!r}: {seconds}")
        self.segments.setdefault(name, []).append(seconds)

    def time(self, name: str) -> SegmentTimer:
        """Return a context manager recording into segment *name*."""
        return SegmentTimer(self.record, name)

    def total(self, name: str) -> float:
        return sum(self.segments.get(name, ()))

    def mean(self, name: str) -> float:
        values = self.segments.get(name)
        if not values:
            raise KeyError(f"no measurements for segment {name!r}")
        return sum(values) / len(values)

    def summary(self) -> Dict[str, float]:
        """Total seconds per segment, in insertion order."""
        return {name: sum(vals) for name, vals in self.segments.items()}
