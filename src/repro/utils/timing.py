"""Lightweight timing helpers used by benchmarks and the solver drivers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Timer", "Stopwatch"]


class Timer:
    """Context manager measuring wall-clock time with ``perf_counter``.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start
            self._start = None

    @property
    def elapsed(self) -> float:
        """Seconds elapsed; valid after the ``with`` block exits."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed


@dataclass
class Stopwatch:
    """Accumulates named timing segments across repeated measurements.

    Useful for splitting a solve into build / sample / decode phases when
    profiling the pipeline (see ``benchmarks/bench_figure1_pipeline.py``).
    """

    segments: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, name: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative duration for segment {name!r}: {seconds}")
        self.segments.setdefault(name, []).append(seconds)

    def time(self, name: str) -> "_SegmentTimer":
        """Return a context manager recording into segment *name*."""
        return _SegmentTimer(self, name)

    def total(self, name: str) -> float:
        return sum(self.segments.get(name, ()))

    def mean(self, name: str) -> float:
        values = self.segments.get(name)
        if not values:
            raise KeyError(f"no measurements for segment {name!r}")
        return sum(values) / len(values)

    def summary(self) -> Dict[str, float]:
        """Total seconds per segment, in insertion order."""
        return {name: sum(vals) for name, vals in self.segments.items()}


class _SegmentTimer:
    def __init__(self, stopwatch: Stopwatch, name: str) -> None:
        self._stopwatch = stopwatch
        self._name = name
        self._start: Optional[float] = None

    def __enter__(self) -> "_SegmentTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self._stopwatch.record(self._name, time.perf_counter() - self._start)
