"""Simulated annealing over QUBOs — the paper's solver.

The paper's experiments run on D-Wave's *simulated* annealer, which is
classical single-spin-flip Metropolis annealing with a geometric inverse-
temperature schedule. This module implements the same algorithm with the
NumPy idioms from the HPC guides:

* All reads anneal **simultaneously**: the state is an ``(R, n)`` matrix and
  every Metropolis decision is made for all R reads in one vectorized step.
* Local fields are maintained **incrementally** (rank-1 updates on accepted
  flips) instead of being recomputed, making a sweep ``O(R·n)`` for
  diagonal-dominated models and ``O(R·n·deg)`` in general.
* An optional *graph-colored* sweep mode updates whole independent sets of
  variables in single vectorized steps — an exactness-preserving batching
  strategy (no two simultaneously-updated variables interact).
* Both kernels run against either the dense ``(n, n)`` coupling matrix or
  the CSR form (:class:`~repro.qubo.sparse.CsrMatrix`): the sparse path
  replaces each full-row rank-1 update with a row-slice update over the
  CSR indices, cutting the per-flip cost from ``O(R·n)`` to ``O(R·deg)``
  while preserving the exact flip/accept order — results are bit-identical
  to the dense path at a fixed seed for integer-coefficient models.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple, Union

import numpy as np

from repro.anneal.base import Sampler, resolve_initial_states
from repro.anneal.sampleset import SampleSet
from repro.anneal.schedule import (
    default_beta_range,
    geometric_schedule,
    linear_schedule,
)
from repro.qubo.model import QuboModel
from repro.qubo.sparse import CsrMatrix, has_any_coupling, initial_local_fields
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["SimulatedAnnealingSampler"]

#: Exponent clamp: exp(-700) underflows float64 to 0, so nothing is lost.
_EXP_CLIP = 700.0


class SimulatedAnnealingSampler(Sampler):
    """Multi-read, vectorized single-flip Metropolis annealer.

    Parameters (per ``sample_model`` call)
    --------------------------------------
    num_reads:
        Number of independent anneals (default 32).
    num_sweeps:
        Sweeps per anneal; each sweep proposes one flip per variable
        (default 256).
    beta_range:
        ``(beta_hot, beta_cold)``; default derived from the model's energy
        scales (see :func:`~repro.anneal.schedule.default_beta_range`).
    beta_schedule:
        ``"geometric"`` (default), ``"linear"``, or an explicit array of
        per-sweep betas (overrides *beta_range*/*num_sweeps*).
    sweep_mode:
        ``"random"`` (default; fresh variable permutation per sweep),
        ``"sequential"``, or ``"colored"`` (greedy-coloring batched updates).
    coupling_mode:
        ``"auto"`` (default), ``"dense"``, or ``"sparse"`` — forwarded to
        :meth:`~repro.qubo.model.QuboModel.sampler_form`. Auto picks the
        CSR kernels for large sparse models (every §4 string QUBO); the
        forced modes exist for benchmarking and the bit-identity tests.
    initial_states:
        Optional ``(num_reads, n)`` array of {0,1} starting points.
    seed:
        RNG seed / Generator.
    """

    parameters = {
        "num_reads": "independent anneals",
        "num_sweeps": "sweeps per anneal",
        "beta_range": "(hot, cold) inverse temperatures",
        "beta_schedule": "'geometric' | 'linear' | explicit array",
        "sweep_mode": "'random' | 'sequential' | 'colored'",
        "coupling_mode": "'auto' | 'dense' | 'sparse' matrix form",
        "initial_states": "optional (R, n) starting states",
        "seed": "RNG seed",
    }

    def sample_model(
        self,
        model: QuboModel,
        *,
        num_reads: int = 32,
        num_sweeps: int = 256,
        beta_range: Optional[Tuple[float, float]] = None,
        beta_schedule: Union[str, Sequence[float], np.ndarray] = "geometric",
        sweep_mode: str = "random",
        coupling_mode: str = "auto",
        initial_states: Optional[np.ndarray] = None,
        seed: SeedLike = None,
        **unknown: Any,
    ) -> SampleSet:
        if unknown:
            raise TypeError(f"unknown sampler parameters: {sorted(unknown)}")
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        rng = ensure_rng(seed)
        n = model.num_variables
        if n == 0:
            states = np.zeros((num_reads, 0), dtype=np.int8)
            return SampleSet(states, np.full(num_reads, model.offset))

        diag, coupling = model.sampler_form(mode=coupling_mode)
        betas = self._resolve_schedule(
            beta_schedule, beta_range, num_sweeps, diag, coupling
        )

        states = resolve_initial_states(initial_states, num_reads, n, rng)
        has_coupling = has_any_coupling(coupling)

        if sweep_mode == "colored":
            classes = self._color_classes(model, rng)
            self._anneal_colored(states, diag, coupling, betas, classes, rng, has_coupling)
        elif sweep_mode in ("random", "sequential"):
            self._anneal_scan(
                states, diag, coupling, betas, rng, has_coupling, sweep_mode == "random"
            )
        else:
            raise ValueError(
                f"sweep_mode must be 'random', 'sequential' or 'colored', got {sweep_mode!r}"
            )

        energies = model.energies(states)
        return SampleSet(
            states,
            energies,
            info={
                "sampler": "SimulatedAnnealingSampler",
                "num_sweeps": int(betas.shape[0]),
                "beta_range": (float(betas[0]), float(betas[-1])),
                "sweep_mode": sweep_mode,
                "coupling_form": (
                    "sparse" if isinstance(coupling, CsrMatrix) else "dense"
                ),
            },
        )

    def sample_tiled(
        self,
        tiled: Any,
        *,
        num_reads: int = 32,
        num_sweeps: int = 256,
        beta_range: Optional[Tuple[float, float]] = None,
        beta_schedule: Union[str, Sequence[float], np.ndarray] = "geometric",
        sweep_mode: str = "colored",
        coupling_mode: str = "auto",
        initial_states: Optional[Sequence[Optional[np.ndarray]]] = None,
        seed: SeedLike = None,
        **unknown: Any,
    ) -> list:
        """Anneal all blocks of a :class:`~repro.qubo.tile.TiledProblem` fused.

        One ``(R, Σn)`` state matrix, one fused coupling operator, one
        sweep loop. In the default ``"colored"`` mode the per-block color
        classes are *merged by rank* — class *c* of every block flips in
        one vectorized step (blocks never interact, so the union of
        independent sets is independent) — keeping the per-sweep Python
        step count at ``max_k C_k`` instead of ``Σ_k C_k``. This is where
        the fusion throughput comes from on small tiled models.

        Batch invariance: each block draws only from its own
        content-keyed stream (initial states first, then its segment's
        Metropolis uniforms per class), uses its own beta schedule
        (derived from its own coefficients unless an explicit
        ``beta_range``/array is given), and its per-block result is
        bit-identical to ``sample_model(block,
        seed=tiled.block_rngs(seed)[k], sweep_mode="colored", ...)`` for
        integer-coefficient models. The scan modes (``"random"`` /
        ``"sequential"``) run per-block on column views — trivially
        equivalent, no fusion win.

        ``initial_states``, when given, is a length-K sequence of
        per-block arrays (entries may be None).
        """
        if unknown:
            raise TypeError(f"unknown sampler parameters: {sorted(unknown)}")
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        if sweep_mode not in ("random", "sequential", "colored"):
            raise ValueError(
                f"sweep_mode must be 'random', 'sequential' or 'colored', got {sweep_mode!r}"
            )
        if tiled.num_blocks == 0:
            return []
        if initial_states is not None and len(initial_states) != tiled.num_blocks:
            raise ValueError(
                f"initial_states must have one entry per block "
                f"({tiled.num_blocks}), got {len(initial_states)}"
            )
        rngs = tiled.block_rngs(seed)
        mode = tiled.resolve_coupling_mode(coupling_mode)

        block_states = []
        betas: list = [None] * tiled.num_blocks
        nonempty = []
        for k, model in enumerate(tiled.models):
            n_k = model.num_variables
            if n_k == 0:
                block_states.append(np.zeros((num_reads, 0), dtype=np.int8))
                continue
            diag_k, coup_k = model.sampler_form(mode=mode)
            betas[k] = self._resolve_schedule(
                beta_schedule, beta_range, num_sweeps, diag_k, coup_k
            )
            init = initial_states[k] if initial_states is not None else None
            block_states.append(resolve_initial_states(init, num_reads, n_k, rngs[k]))
            nonempty.append(k)
        states = np.hstack(block_states)

        if nonempty:
            if sweep_mode == "colored":
                classes = {
                    k: self._color_classes(tiled.models[k], rngs[k]) for k in nonempty
                }
                merged = self._merge_classes(tiled, classes, nonempty)
                diag, coupling = tiled.fused_sampler_form(mode)
                self._anneal_tiled_colored(
                    states, diag, coupling, betas, merged, rngs,
                    has_any_coupling(coupling),
                )
            else:
                for k in nonempty:
                    diag_k, coup_k = tiled.models[k].sampler_form(mode=mode)
                    # Column views: the scan kernel mutates the fused matrix
                    # in place through them.
                    self._anneal_scan(
                        states[:, tiled.block_slice(k)],
                        diag_k,
                        coup_k,
                        betas[k],
                        rngs[k],
                        has_any_coupling(coup_k),
                        sweep_mode == "random",
                    )

        per_block_info = []
        for k, model in enumerate(tiled.models):
            if model.num_variables == 0:
                per_block_info.append({})
                continue
            b = betas[k]
            per_block_info.append(
                {
                    "sampler": "SimulatedAnnealingSampler",
                    "num_sweeps": int(b.shape[0]),
                    "beta_range": (float(b[0]), float(b[-1])),
                    "sweep_mode": sweep_mode,
                    "coupling_form": mode,
                }
            )
        return tiled.build_samplesets(states, per_block_info=per_block_info)

    # ------------------------------------------------------------------ #
    # kernels
    # ------------------------------------------------------------------ #

    @staticmethod
    def _merge_classes(tiled: Any, classes: dict, nonempty: Sequence[int]) -> list:
        """Merge per-block color classes by rank into fused column sets.

        Returns ``[(columns, segments), ...]`` — one entry per merged
        class, where ``columns`` concatenates class *c* of every block
        (shifted into fused index space) and ``segments`` lists
        ``(block, lo, hi)`` half-open ranges into ``columns``. Blocks
        with fewer than *c* classes simply sit out class *c* (and draw
        nothing from their stream for it), exactly as a solo colored
        anneal of that block would.
        """
        num_classes = max(len(classes[k]) for k in nonempty)
        merged = []
        for c in range(num_classes):
            cols_parts = []
            segments = []
            pos = 0
            for k in nonempty:
                if c < len(classes[k]):
                    cols = classes[k][c] + int(tiled.starts[k])
                    cols_parts.append(cols)
                    segments.append((k, pos, pos + cols.size))
                    pos += cols.size
            merged.append((np.concatenate(cols_parts), segments))
        return merged

    @staticmethod
    def _anneal_tiled_colored(
        states: np.ndarray,
        diag: np.ndarray,
        coupling: Union[np.ndarray, CsrMatrix],
        betas: Sequence[Optional[np.ndarray]],
        merged: Sequence[Tuple[np.ndarray, Sequence[Tuple[int, int, int]]]],
        rngs: Sequence[np.random.Generator],
        has_coupling: bool,
    ) -> None:
        """Fused colored sweep over all blocks at once. Mutates *states*.

        Mirrors :meth:`_anneal_colored` step for step; the only per-block
        work left in the inner loop is the Metropolis draw on each
        block's segment (its own stream, its own beta), ~6 small array
        ops versus a full solo class iteration. Field updates go through
        the fused coupling: the block-diagonal structure guarantees
        cross-block contributions are structurally absent (CSR) or exact
        zeros (dense), so per-block field values match the solo kernel
        bit-for-bit on integer-coefficient models.
        """
        fields = initial_local_fields(states, coupling) if has_coupling else None
        sparse = isinstance(coupling, CsrMatrix)
        blocks = (
            [coupling.row_block(cols) for cols, _ in merged]
            if (sparse and has_coupling)
            else None
        )
        num_sweeps = next(b.shape[0] for b in betas if b is not None)
        for t in range(num_sweeps):
            for index, (cols, segments) in enumerate(merged):
                xc = states[:, cols]
                dx = 1.0 - 2.0 * xc
                local = diag[cols][None, :]
                if has_coupling:
                    local = local + fields[:, cols]
                delta_e = dx * local
                accept = delta_e <= 0.0
                for k, lo, hi in segments:
                    seg = accept[:, lo:hi]
                    hot = ~seg
                    if hot.any():
                        log_p = np.clip(
                            -betas[k][t] * delta_e[:, lo:hi][hot], -_EXP_CLIP, 0.0
                        )
                        seg[hot] = rngs[k].random(int(hot.sum())) < np.exp(log_p)
                if not accept.any():
                    continue
                flip = accept.astype(np.int8)
                states[:, cols] ^= flip
                if has_coupling:
                    delta = dx * accept
                    if sparse:
                        fields += np.asarray(delta @ blocks[index])
                    else:
                        fields += delta @ coupling[cols, :]

    @staticmethod
    def _anneal_scan(
        states: np.ndarray,
        diag: np.ndarray,
        coupling: Union[np.ndarray, CsrMatrix],
        betas: np.ndarray,
        rng: np.random.Generator,
        has_coupling: bool,
        randomize: bool,
    ) -> None:
        """Per-variable scan, vectorized across reads. Mutates *states*.

        Accepts either coupling form. The sparse branch performs the same
        rank-1 field update restricted to the CSR row slice of the flipped
        variable — identical RNG consumption and accept decisions, so at a
        fixed seed it reproduces the dense kernel bit-for-bit on
        integer-coefficient models.
        """
        num_reads, n = states.shape
        fields = initial_local_fields(states, coupling) if has_coupling else None
        sparse = isinstance(coupling, CsrMatrix)
        # Precompute the CSR row slices once: ~n tuple lookups per sweep
        # would otherwise dominate the sparse inner loop.
        rows = coupling.rows() if (sparse and has_coupling) else None
        order = np.arange(n)
        for beta in betas:
            if randomize:
                rng.shuffle(order)
            # Draw the whole sweep's uniforms at once: one RNG call per sweep.
            uniforms = rng.random((n, num_reads))
            for rank, i in enumerate(order):
                xi = states[:, i]
                dx = 1.0 - 2.0 * xi  # +1 when flipping 0 -> 1
                local = diag[i] + (fields[:, i] if has_coupling else 0.0)
                delta_e = dx * local
                accept = delta_e <= 0.0
                hot = ~accept
                if hot.any():
                    log_p = np.clip(-beta * delta_e[hot], -_EXP_CLIP, 0.0)
                    accept[hot] = uniforms[rank, hot] < np.exp(log_p)
                if not accept.any():
                    continue
                states[accept, i] ^= 1
                if has_coupling:
                    if sparse:
                        cols, vals = rows[i]
                        if cols.size:
                            fields[np.ix_(accept, cols)] += (
                                dx[accept, None] * vals[None, :]
                            )
                    else:
                        fields[accept] += dx[accept, None] * coupling[i][None, :]

    @staticmethod
    def _anneal_colored(
        states: np.ndarray,
        diag: np.ndarray,
        coupling: Union[np.ndarray, CsrMatrix],
        betas: np.ndarray,
        classes: Sequence[np.ndarray],
        rng: np.random.Generator,
        has_coupling: bool,
    ) -> None:
        """Independent-set batched updates. Mutates *states*.

        Within one color class no two variables interact, so flipping them
        simultaneously is exactly equivalent to flipping them one at a time.
        The sparse branch performs the rank-k field update through a CSR
        row block per color class (``O(R · nnz(class))`` instead of
        ``O(R · |class| · n)``), with identical RNG consumption.
        """
        num_reads, n = states.shape
        fields = initial_local_fields(states, coupling) if has_coupling else None
        sparse = isinstance(coupling, CsrMatrix)
        # One CSR row block per color class, sliced once outside the sweep
        # loop (SciPy row indexing is not free).
        blocks = (
            [coupling.row_block(cls) for cls in classes]
            if (sparse and has_coupling)
            else None
        )
        for beta in betas:
            for index, cls in enumerate(classes):
                xc = states[:, cls]
                dx = 1.0 - 2.0 * xc
                local = diag[cls][None, :]
                if has_coupling:
                    local = local + fields[:, cls]
                delta_e = dx * local
                accept = delta_e <= 0.0
                hot = ~accept
                if hot.any():
                    log_p = np.clip(-beta * delta_e[hot], -_EXP_CLIP, 0.0)
                    accept[hot] = rng.random(int(hot.sum())) < np.exp(log_p)
                if not accept.any():
                    continue
                flip = accept.astype(np.int8)
                states[:, cls] ^= flip
                if has_coupling:
                    # Rank-k update: only accepted flips contribute.
                    delta = dx * accept
                    if sparse:
                        fields += np.asarray(delta @ blocks[index])
                    else:
                        fields += delta @ coupling[cls, :]

    # ------------------------------------------------------------------ #
    # setup helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _resolve_schedule(
        beta_schedule: Union[str, Sequence[float], np.ndarray],
        beta_range: Optional[Tuple[float, float]],
        num_sweeps: int,
        diag: np.ndarray,
        coupling: np.ndarray,
    ) -> np.ndarray:
        if isinstance(beta_schedule, str):
            hot, cold = (
                beta_range if beta_range is not None else default_beta_range(diag, coupling)
            )
            if beta_schedule == "geometric":
                return geometric_schedule(hot, cold, num_sweeps)
            if beta_schedule == "linear":
                return linear_schedule(hot, cold, num_sweeps)
            raise ValueError(
                f"beta_schedule must be 'geometric', 'linear' or an array, got {beta_schedule!r}"
            )
        betas = np.asarray(beta_schedule, dtype=np.float64)
        if betas.ndim != 1 or betas.size < 1:
            raise ValueError("explicit beta schedule must be a non-empty 1-d array")
        if np.any(betas <= 0):
            raise ValueError("explicit beta schedule must be positive")
        return betas

    @staticmethod
    def _color_classes(model: QuboModel, rng: np.random.Generator) -> list:
        """Greedy-color the interaction graph into independent sets."""
        import networkx as nx

        graph = model.interaction_graph()
        coloring = nx.greedy_color(graph, strategy="largest_first")
        num_colors = max(coloring.values(), default=-1) + 1
        classes = [
            np.array(sorted(v for v, c in coloring.items() if c == color), dtype=np.int64)
            for color in range(num_colors)
        ]
        return [cls for cls in classes if cls.size]
