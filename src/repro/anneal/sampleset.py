"""Sample sets: the result container returned by every sampler.

Mirrors the role of ``dimod.SampleSet``: a batch of states with energies and
multiplicities, stored column-per-variable in a dense NumPy array so that
post-processing (aggregation, filtering, decoding back to strings) stays
vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterator, List, Mapping, Optional, Sequence

import numpy as np

__all__ = ["Sample", "SampleSet"]


@dataclass(frozen=True)
class Sample:
    """One row of a :class:`SampleSet`."""

    assignment: Dict[Hashable, int]
    energy: float
    num_occurrences: int = 1

    def state(self, order: Sequence[Hashable]) -> np.ndarray:
        """The assignment as an array in the given variable order."""
        return np.array([self.assignment[v] for v in order], dtype=np.int8)


class SampleSet:
    """A batch of samples with energies and occurrence counts.

    Rows are kept **sorted by energy** (stable), so ``first`` is always the
    best sample found.

    Parameters
    ----------
    states:
        ``(R, n)`` integer array of variable assignments.
    energies:
        ``(R,)`` energies, one per row.
    variables:
        Column labels, length ``n``.
    num_occurrences:
        Optional ``(R,)`` multiplicities (default all ones).
    info:
        Free-form sampler metadata (timings, schedule parameters, ...).
    """

    def __init__(
        self,
        states: np.ndarray,
        energies: np.ndarray,
        variables: Optional[Sequence[Hashable]] = None,
        num_occurrences: Optional[np.ndarray] = None,
        info: Optional[Mapping[str, Any]] = None,
    ) -> None:
        states = np.atleast_2d(np.asarray(states, dtype=np.int8))
        energies = np.atleast_1d(np.asarray(energies, dtype=np.float64))
        if states.shape[0] != energies.shape[0]:
            raise ValueError(
                f"{states.shape[0]} states but {energies.shape[0]} energies"
            )
        if variables is None:
            variables = list(range(states.shape[1]))
        else:
            variables = list(variables)
        if len(variables) != states.shape[1]:
            raise ValueError(
                f"{len(variables)} variable labels for {states.shape[1]} columns"
            )
        if len(set(variables)) != len(variables):
            raise ValueError("variable labels must be unique")
        if num_occurrences is None:
            num_occurrences = np.ones(states.shape[0], dtype=np.int64)
        else:
            num_occurrences = np.asarray(num_occurrences, dtype=np.int64)
            if num_occurrences.shape != energies.shape:
                raise ValueError("num_occurrences shape mismatch")
            if np.any(num_occurrences <= 0):
                raise ValueError("num_occurrences must be positive")
        order = np.argsort(energies, kind="stable")
        self._states = np.ascontiguousarray(states[order])
        self._energies = energies[order]
        self._num_occurrences = num_occurrences[order]
        self._variables: List[Hashable] = variables
        self._index = {v: i for i, v in enumerate(variables)}
        self.info: Dict[str, Any] = dict(info or {})

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls, variables: Sequence[Hashable] = ()) -> "SampleSet":
        """A sample set with zero rows."""
        n = len(list(variables))
        return cls(
            np.zeros((0, n), dtype=np.int8),
            np.zeros(0, dtype=np.float64),
            variables=variables,
        )

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[Mapping[Hashable, int]],
        energies: Sequence[float],
        info: Optional[Mapping[str, Any]] = None,
    ) -> "SampleSet":
        """Build from dict-shaped samples (all must share a key set)."""
        if not samples:
            return cls.empty()
        variables = list(samples[0])
        states = np.array(
            [[s[v] for v in variables] for s in samples], dtype=np.int8
        )
        return cls(states, np.asarray(energies, float), variables=variables, info=info)

    @classmethod
    def concatenate(cls, sets: Sequence["SampleSet"]) -> "SampleSet":
        """Merge sample sets over the same variables (info dicts are merged).

        Sets whose variable lists are *permutations* of the first set's
        (same variables, different column order — as produced by samplers
        that enumerate a model's variables independently) have their state
        columns reordered onto the first set's order before stacking.
        Genuinely different variable sets still raise :class:`ValueError`.
        """
        sets = [s for s in sets if len(s) > 0] or list(sets)
        if not sets:
            return cls.empty()
        variables = sets[0].variables
        var_set = set(variables)
        states: List[np.ndarray] = []
        for s in sets:
            if s.variables == variables:
                states.append(s.states)
                continue
            if set(s.variables) != var_set:
                raise ValueError(
                    "cannot concatenate sample sets over different variables"
                )
            position = {v: i for i, v in enumerate(s.variables)}
            order = [position[v] for v in variables]
            states.append(s.states[:, order])
        info: Dict[str, Any] = {}
        for s in sets:
            info.update(s.info)
        return cls(
            np.vstack(states),
            np.concatenate([s.energies for s in sets]),
            variables=variables,
            num_occurrences=np.concatenate([s.num_occurrences for s in sets]),
            info=info,
        )

    # ------------------------------------------------------------------ #
    # array views
    # ------------------------------------------------------------------ #

    @property
    def states(self) -> np.ndarray:
        """``(R, n)`` int8 array, sorted by energy. Do not mutate."""
        return self._states

    @property
    def energies(self) -> np.ndarray:
        """``(R,)`` float64 array, ascending."""
        return self._energies

    @property
    def num_occurrences(self) -> np.ndarray:
        """``(R,)`` int64 multiplicities."""
        return self._num_occurrences

    @property
    def variables(self) -> List[Hashable]:
        """Column labels."""
        return list(self._variables)

    def column(self, variable: Hashable) -> np.ndarray:
        """All sampled values of one variable, as an ``(R,)`` view."""
        try:
            return self._states[:, self._index[variable]]
        except KeyError:
            raise KeyError(f"unknown variable: {variable!r}") from None

    # ------------------------------------------------------------------ #
    # row access
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._states.shape[0]

    def __iter__(self) -> Iterator[Sample]:
        for row in range(len(self)):
            yield self.sample(row)

    def sample(self, row: int) -> Sample:
        """The *row*-th sample (rows are energy-sorted)."""
        assignment = {
            v: int(self._states[row, i]) for i, v in enumerate(self._variables)
        }
        return Sample(
            assignment=assignment,
            energy=float(self._energies[row]),
            num_occurrences=int(self._num_occurrences[row]),
        )

    @property
    def first(self) -> Sample:
        """The lowest-energy sample."""
        if len(self) == 0:
            raise ValueError("sample set is empty")
        return self.sample(0)

    def __repr__(self) -> str:
        if len(self) == 0:
            return "SampleSet(empty)"
        return (
            f"SampleSet({len(self)} rows, {len(self._variables)} variables, "
            f"min_energy={self._energies[0]:.6g})"
        )

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #

    def lowest(self, atol: float = 1e-9) -> "SampleSet":
        """Rows whose energy is within *atol* of the minimum."""
        if len(self) == 0:
            return self
        mask = self._energies <= self._energies[0] + atol
        return self._select(mask)

    def truncate(self, n: int) -> "SampleSet":
        """The best *n* rows."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        mask = np.zeros(len(self), dtype=bool)
        mask[:n] = True
        return self._select(mask)

    def aggregate(self) -> "SampleSet":
        """Merge duplicate states, summing occurrence counts."""
        if len(self) == 0:
            return self
        _, first_idx, inverse = np.unique(
            self._states, axis=0, return_index=True, return_inverse=True
        )
        counts = np.zeros(first_idx.shape[0], dtype=np.int64)
        np.add.at(counts, inverse, self._num_occurrences)
        return SampleSet(
            self._states[first_idx],
            self._energies[first_idx],
            variables=self._variables,
            num_occurrences=counts,
            info=self.info,
        )

    def filter(self, mask: np.ndarray) -> "SampleSet":
        """Rows selected by a boolean mask (in energy-sorted order)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError(f"mask shape {mask.shape} != ({len(self)},)")
        return self._select(mask)

    def relabel_variables(self, mapping: Mapping[Hashable, Hashable]) -> "SampleSet":
        """Rename columns through *mapping* (unlisted labels unchanged)."""
        new_vars = [mapping.get(v, v) for v in self._variables]
        return SampleSet(
            self._states,
            self._energies,
            variables=new_vars,
            num_occurrences=self._num_occurrences,
            info=self.info,
        )

    def _select(self, mask: np.ndarray) -> "SampleSet":
        return SampleSet(
            self._states[mask],
            self._energies[mask],
            variables=self._variables,
            num_occurrences=self._num_occurrences[mask],
            info=self.info,
        )

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    def ground_state_probability(self, ground_energy: float, atol: float = 1e-9) -> float:
        """Fraction of reads (weighted by occurrences) at the given energy."""
        if len(self) == 0:
            return 0.0
        hits = self._num_occurrences[self._energies <= ground_energy + atol].sum()
        return float(hits) / float(self._num_occurrences.sum())

    def mean_energy(self) -> float:
        """Occurrence-weighted mean energy."""
        if len(self) == 0:
            raise ValueError("sample set is empty")
        weights = self._num_occurrences
        return float(np.average(self._energies, weights=weights))
