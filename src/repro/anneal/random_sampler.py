"""Uniform random sampler — the weakest baseline.

Every serious sampler must beat this; it anchors the ablation benchmarks
(``benchmarks/bench_samplers.py``).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.anneal.base import Sampler
from repro.anneal.sampleset import SampleSet
from repro.qubo.model import QuboModel
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["RandomSampler"]


class RandomSampler(Sampler):
    """Draw states uniformly at random and score them."""

    parameters = {"num_reads": "number of random states", "seed": "RNG seed"}

    def sample_model(
        self,
        model: QuboModel,
        *,
        num_reads: int = 32,
        seed: SeedLike = None,
        **unknown: Any,
    ) -> SampleSet:
        if unknown:
            raise TypeError(f"unknown sampler parameters: {sorted(unknown)}")
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        rng = ensure_rng(seed)
        states = rng.integers(0, 2, size=(num_reads, model.num_variables), dtype=np.int8)
        return SampleSet(
            states, model.energies(states), info={"sampler": "RandomSampler"}
        )
