"""Steepest-descent sampler.

Deterministic local search: every read repeatedly takes the single flip with
the largest energy decrease until no flip improves. Useful standalone as a
baseline and as a cheap post-processing pass after annealing (the role of
D-Wave's ``greedy`` package).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from typing import Union

from repro.anneal.base import Sampler, resolve_initial_states
from repro.anneal.sampleset import SampleSet
from repro.qubo.model import QuboModel
from repro.qubo.sparse import CsrMatrix, has_any_coupling, initial_local_fields
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["SteepestDescentSampler"]


class SteepestDescentSampler(Sampler):
    """Vectorized best-improvement descent from random (or given) starts.

    Supports both coupling forms (``coupling_mode``, default ``"auto"``);
    the sparse path replaces each full-row field update with the flipped
    variable's CSR row slice, preserving the dense descent trajectory.
    """

    parameters = {
        "num_reads": "independent descents",
        "initial_states": "optional (R, n) starting states",
        "max_steps": "safety cap on flips per read (default 16 n)",
        "coupling_mode": "'auto' | 'dense' | 'sparse' matrix form",
        "seed": "RNG seed",
    }

    def sample_model(
        self,
        model: QuboModel,
        *,
        num_reads: int = 32,
        initial_states: Optional[np.ndarray] = None,
        max_steps: Optional[int] = None,
        coupling_mode: str = "auto",
        seed: SeedLike = None,
        **unknown: Any,
    ) -> SampleSet:
        if unknown:
            raise TypeError(f"unknown sampler parameters: {sorted(unknown)}")
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        rng = ensure_rng(seed)
        n = model.num_variables
        if n == 0:
            return SampleSet(
                np.zeros((num_reads, 0), dtype=np.int8),
                np.full(num_reads, model.offset),
            )
        diag, coupling = model.sampler_form(mode=coupling_mode)
        has_coupling = has_any_coupling(coupling)
        # Shared validator (also used by SA): rejects non-binary starting
        # states, which would otherwise leave the {0,1} domain through the
        # kernel's ^= 1 flips and score as garbage energies.
        states = resolve_initial_states(initial_states, num_reads, n, rng)
        cap = max_steps if max_steps is not None else 16 * n
        steps = self._descend(states, diag, coupling, has_coupling, cap)
        energies = model.energies(states)
        return SampleSet(
            states,
            energies,
            info={"sampler": "SteepestDescentSampler", "total_steps": steps},
        )

    def sample_tiled(
        self,
        tiled: Any,
        *,
        num_reads: int = 32,
        initial_states: Optional[list] = None,
        max_steps: Optional[int] = None,
        coupling_mode: str = "auto",
        seed: Any = None,
        **unknown: Any,
    ) -> list:
        """Descend all blocks of a tiled problem on one fused state matrix.

        Shared ``(R, Σn)`` state/field matrices and one lockstep loop;
        each block keeps its own step cap (default ``16 n_k``) and
        convergence tracking, and draws its starting states from its own
        content-keyed stream — per-block results are bit-identical to
        solo solves at ``seed=tiled.block_rngs(seed)[k]`` for
        integer-coefficient models. ``initial_states``, when given, is a
        length-K sequence of per-block arrays (entries may be None).
        """
        if unknown:
            raise TypeError(f"unknown sampler parameters: {sorted(unknown)}")
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        if tiled.num_blocks == 0:
            return []
        if initial_states is not None and len(initial_states) != tiled.num_blocks:
            raise ValueError(
                f"initial_states must have one entry per block "
                f"({tiled.num_blocks}), got {len(initial_states)}"
            )
        rngs = tiled.block_rngs(seed)
        mode = tiled.resolve_coupling_mode(coupling_mode)

        caps = [0] * tiled.num_blocks
        block_states = []
        nonempty = []
        for k, model in enumerate(tiled.models):
            n_k = model.num_variables
            if n_k == 0:
                block_states.append(np.zeros((num_reads, 0), dtype=np.int8))
                continue
            init = initial_states[k] if initial_states is not None else None
            block_states.append(resolve_initial_states(init, num_reads, n_k, rngs[k]))
            caps[k] = max_steps if max_steps is not None else 16 * n_k
            nonempty.append(k)
        states = np.hstack(block_states)
        totals = [0] * tiled.num_blocks

        if nonempty:
            diag, coupling = tiled.fused_sampler_form(mode)
            has_coupling = has_any_coupling(coupling)
            sparse = isinstance(coupling, CsrMatrix)
            fields = (
                initial_local_fields(states, coupling)
                if has_coupling
                else np.zeros_like(states, dtype=np.float64)
            )
            rows_all = np.arange(num_reads)
            converged = [False] * tiled.num_blocks
            for step in range(max(caps)):
                live = [
                    k for k in nonempty if not converged[k] and step < caps[k]
                ]
                if not live:
                    break
                dx = 1.0 - 2.0 * states
                delta_e = dx * (diag[None, :] + fields)
                for k in live:
                    sl = tiled.block_slice(k)
                    sub = delta_e[:, sl]
                    best_var = np.argmin(sub, axis=1)
                    best_delta = sub[rows_all, best_var]
                    active = best_delta < -1e-12
                    if not active.any():
                        converged[k] = True
                        continue
                    rows = np.nonzero(active)[0]
                    cols = best_var[rows] + sl.start
                    dxa = dx[rows, cols]
                    states[rows, cols] ^= 1
                    if has_coupling:
                        if sparse:
                            for rr, cc, dd in zip(
                                rows.tolist(), cols.tolist(), dxa.tolist()
                            ):
                                ccols, cvals = coupling.row(cc)
                                fields[rr, ccols] += dd * cvals
                        else:
                            fields[rows] += dxa[:, None] * coupling[cols, :]
                    totals[k] += rows.size

        per_block_info = [
            {"sampler": "SteepestDescentSampler", "total_steps": totals[k]}
            if tiled.models[k].num_variables
            else {}
            for k in range(tiled.num_blocks)
        ]
        return tiled.build_samplesets(states, per_block_info=per_block_info)

    @staticmethod
    def _descend(
        states: np.ndarray,
        diag: np.ndarray,
        coupling: Union[np.ndarray, CsrMatrix],
        has_coupling: bool,
        max_steps: int,
    ) -> int:
        """Flip the best variable per read until all reads are local minima.

        Each outer iteration flips at most one variable in every still-active
        read — all reads progress in lockstep, vectorized. Works on either
        coupling form; the sparse branch touches only the CSR row slice of
        each flipped variable.
        """
        num_reads, n = states.shape
        sparse = isinstance(coupling, CsrMatrix)
        fields = (
            initial_local_fields(states, coupling)
            if has_coupling
            else np.zeros_like(states, dtype=np.float64)
        )
        active = np.ones(num_reads, dtype=bool)
        total = 0
        for _ in range(max_steps):
            dx = 1.0 - 2.0 * states
            delta_e = dx * (diag[None, :] + fields)
            best_var = np.argmin(delta_e, axis=1)
            best_delta = delta_e[np.arange(num_reads), best_var]
            active = best_delta < -1e-12
            if not active.any():
                break
            rows = np.nonzero(active)[0]
            cols = best_var[rows]
            dxa = dx[rows, cols]
            states[rows, cols] ^= 1
            if has_coupling:
                if sparse:
                    for rr, cc, dd in zip(
                        rows.tolist(), cols.tolist(), dxa.tolist()
                    ):
                        ccols, cvals = coupling.row(cc)
                        fields[rr, ccols] += dd * cvals
                else:
                    fields[rows] += dxa[:, None] * coupling[cols, :]
            total += rows.size
        return total
