"""Steepest-descent sampler.

Deterministic local search: every read repeatedly takes the single flip with
the largest energy decrease until no flip improves. Useful standalone as a
baseline and as a cheap post-processing pass after annealing (the role of
D-Wave's ``greedy`` package).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from typing import Union

from repro.anneal.base import Sampler
from repro.anneal.sampleset import SampleSet
from repro.qubo.model import QuboModel
from repro.qubo.sparse import CsrMatrix, has_any_coupling, initial_local_fields
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["SteepestDescentSampler"]


class SteepestDescentSampler(Sampler):
    """Vectorized best-improvement descent from random (or given) starts.

    Supports both coupling forms (``coupling_mode``, default ``"auto"``);
    the sparse path replaces each full-row field update with the flipped
    variable's CSR row slice, preserving the dense descent trajectory.
    """

    parameters = {
        "num_reads": "independent descents",
        "initial_states": "optional (R, n) starting states",
        "max_steps": "safety cap on flips per read (default 16 n)",
        "coupling_mode": "'auto' | 'dense' | 'sparse' matrix form",
        "seed": "RNG seed",
    }

    def sample_model(
        self,
        model: QuboModel,
        *,
        num_reads: int = 32,
        initial_states: Optional[np.ndarray] = None,
        max_steps: Optional[int] = None,
        coupling_mode: str = "auto",
        seed: SeedLike = None,
        **unknown: Any,
    ) -> SampleSet:
        if unknown:
            raise TypeError(f"unknown sampler parameters: {sorted(unknown)}")
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        rng = ensure_rng(seed)
        n = model.num_variables
        if n == 0:
            return SampleSet(
                np.zeros((num_reads, 0), dtype=np.int8),
                np.full(num_reads, model.offset),
            )
        diag, coupling = model.sampler_form(mode=coupling_mode)
        has_coupling = has_any_coupling(coupling)
        if initial_states is None:
            states = rng.integers(0, 2, size=(num_reads, n), dtype=np.int8)
        else:
            states = np.array(initial_states, dtype=np.int8, copy=True)
            if states.ndim == 1:
                states = np.broadcast_to(states, (num_reads, n)).copy()
            if states.shape != (num_reads, n):
                raise ValueError(
                    f"initial_states shape {states.shape} != ({num_reads}, {n})"
                )
        cap = max_steps if max_steps is not None else 16 * n
        steps = self._descend(states, diag, coupling, has_coupling, cap)
        energies = model.energies(states)
        return SampleSet(
            states,
            energies,
            info={"sampler": "SteepestDescentSampler", "total_steps": steps},
        )

    @staticmethod
    def _descend(
        states: np.ndarray,
        diag: np.ndarray,
        coupling: Union[np.ndarray, CsrMatrix],
        has_coupling: bool,
        max_steps: int,
    ) -> int:
        """Flip the best variable per read until all reads are local minima.

        Each outer iteration flips at most one variable in every still-active
        read — all reads progress in lockstep, vectorized. Works on either
        coupling form; the sparse branch touches only the CSR row slice of
        each flipped variable.
        """
        num_reads, n = states.shape
        sparse = isinstance(coupling, CsrMatrix)
        fields = (
            initial_local_fields(states, coupling)
            if has_coupling
            else np.zeros_like(states, dtype=np.float64)
        )
        active = np.ones(num_reads, dtype=bool)
        total = 0
        for _ in range(max_steps):
            dx = 1.0 - 2.0 * states
            delta_e = dx * (diag[None, :] + fields)
            best_var = np.argmin(delta_e, axis=1)
            best_delta = delta_e[np.arange(num_reads), best_var]
            active = best_delta < -1e-12
            if not active.any():
                break
            rows = np.nonzero(active)[0]
            cols = best_var[rows]
            dxa = dx[rows, cols]
            states[rows, cols] ^= 1
            if has_coupling:
                if sparse:
                    for rr, cc, dd in zip(
                        rows.tolist(), cols.tolist(), dxa.tolist()
                    ):
                        ccols, cvals = coupling.row(cc)
                        fields[rr, ccols] += dd * cvals
                else:
                    fields[rows] += dxa[:, None] * coupling[cols, :]
            total += rows.size
        return total
