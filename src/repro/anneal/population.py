"""Population annealing.

A sequential-Monte-Carlo cousin of simulated annealing: a *population* of
replicas cools through the same beta ladder, but at each step replicas are
**resampled** proportionally to their Boltzmann re-weighting factor
``exp(-(beta' - beta) E)``, so population mass concentrates in the basins
that matter before equilibration sweeps continue there. Population
annealing is massively parallel by construction — the natural algorithm
for the multi-read vectorized substrate this library is built on.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.anneal.base import Sampler
from repro.anneal.sampleset import SampleSet
from repro.anneal.schedule import default_beta_range, geometric_schedule
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.qubo.model import QuboModel
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["PopulationAnnealingSampler"]


class PopulationAnnealingSampler(Sampler):
    """Resampled multi-replica annealing.

    Parameters (per ``sample_model`` call)
    --------------------------------------
    population:
        Number of replicas (default 64). The returned sample set holds the
        final population.
    num_steps:
        Temperature-ladder rungs (default 32).
    sweeps_per_step:
        Equilibration sweeps between resampling events (default 4).
    beta_range:
        ``(hot, cold)``; default adaptive.
    seed:
        RNG seed.
    """

    parameters = {
        "population": "number of replicas",
        "num_steps": "temperature ladder rungs",
        "sweeps_per_step": "equilibration sweeps per rung",
        "beta_range": "(hot, cold)",
        "seed": "RNG seed",
    }

    def sample_model(
        self,
        model: QuboModel,
        *,
        population: int = 64,
        num_steps: int = 32,
        sweeps_per_step: int = 4,
        beta_range: Optional[Tuple[float, float]] = None,
        seed: SeedLike = None,
        num_reads: Optional[int] = None,
        **unknown: Any,
    ) -> SampleSet:
        if unknown:
            raise TypeError(f"unknown sampler parameters: {sorted(unknown)}")
        # Allow the generic `num_reads` knob to size the population, so the
        # sampler drops into StringQuboSolver unchanged.
        if num_reads is not None:
            population = num_reads
        if population < 2:
            raise ValueError(f"population must be >= 2, got {population}")
        if num_steps < 1 or sweeps_per_step < 1:
            raise ValueError("num_steps and sweeps_per_step must be >= 1")
        rng = ensure_rng(seed)
        n = model.num_variables
        if n == 0:
            return SampleSet(
                np.zeros((population, 0), dtype=np.int8),
                np.full(population, model.offset),
            )
        diag, coupling = model.sampler_form()
        hot, cold = (
            beta_range if beta_range is not None else default_beta_range(diag, coupling)
        )
        ladder = geometric_schedule(hot, cold, num_steps)
        inner = SimulatedAnnealingSampler()

        states = rng.integers(0, 2, size=(population, n), dtype=np.int8)
        energies = model.energies(states)
        resampling_events = 0
        previous_beta = ladder[0]
        for beta in ladder:
            if beta > previous_beta:
                weights = np.exp(-(beta - previous_beta) * (energies - energies.min()))
                total = weights.sum()
                if total > 0:
                    probabilities = weights / total
                    choice = rng.choice(population, size=population, p=probabilities)
                    states = states[choice].copy()
                    energies = energies[choice]
                    resampling_events += 1
            # Equilibrate at this rung (constant-beta Metropolis sweeps).
            result = inner.sample_model(
                model,
                num_reads=population,
                beta_schedule=np.full(sweeps_per_step, beta),
                initial_states=states,
                seed=int(rng.integers(0, 2**63 - 1)),
            )
            # The inner sampler sorts by energy; keep its states directly.
            states = result.states.copy()
            energies = result.energies.copy()
            previous_beta = beta

        return SampleSet(
            states,
            energies,
            info={
                "sampler": "PopulationAnnealingSampler",
                "population": population,
                "num_steps": int(num_steps),
                "resampling_events": resampling_events,
                "beta_range": (float(ladder[0]), float(ladder[-1])),
            },
        )
