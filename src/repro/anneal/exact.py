"""Exact (brute-force) solver for small QUBOs.

Ground truth for tests and benchmark baselines. Enumerates all ``2^n``
states in vectorized blocks; refuses models beyond
:data:`ExactSolver.MAX_VARIABLES` variables (the default budget of 2^24
energy evaluations is about a second of NumPy time).
"""

from __future__ import annotations

from typing import Any, Optional, Union

import numpy as np

from repro.anneal.base import Sampler
from repro.anneal.sampleset import SampleSet
from repro.qubo.model import QuboModel

__all__ = ["ExactSolver"]


class ExactSolver(Sampler):
    """Enumerate every state; exact, exponential, small models only."""

    #: Hard cap on model size — 2^24 states is the practical NumPy budget.
    MAX_VARIABLES = 24

    #: States evaluated per vectorized block.
    BLOCK = 1 << 16

    parameters = {"keep": "'all' or an int: how many best rows to return"}

    def sample_model(
        self,
        model: QuboModel,
        *,
        keep: Union[str, int] = "all",
        **unknown: Any,
    ) -> SampleSet:
        if unknown:
            raise TypeError(f"unknown sampler parameters: {sorted(unknown)}")
        n = model.num_variables
        if n > self.MAX_VARIABLES:
            raise ValueError(
                f"ExactSolver supports at most {self.MAX_VARIABLES} variables, "
                f"got {n}; use an annealer for larger models"
            )
        if keep != "all" and (not isinstance(keep, int) or keep < 1):
            raise ValueError(f"keep must be 'all' or a positive int, got {keep!r}")
        if n == 0:
            return SampleSet(
                np.zeros((1, 0), dtype=np.int8), np.array([model.offset])
            )

        total = 1 << n
        bits = np.arange(n, dtype=np.uint64)

        if keep == "all":
            states = self._decode_block(np.arange(total, dtype=np.uint64), bits)
            energies = model.energies(states)
            return SampleSet(states, energies, info={"sampler": "ExactSolver"})

        # Streaming top-k: keep only the best `keep` rows across blocks.
        best_states: Optional[np.ndarray] = None
        best_energies: Optional[np.ndarray] = None
        for start in range(0, total, self.BLOCK):
            stop = min(start + self.BLOCK, total)
            codes = np.arange(start, stop, dtype=np.uint64)
            states = self._decode_block(codes, bits)
            energies = model.energies(states)
            if best_states is None:
                pool_s, pool_e = states, energies
            else:
                pool_s = np.vstack((best_states, states))
                pool_e = np.concatenate((best_energies, energies))
            order = np.argsort(pool_e, kind="stable")[:keep]
            best_states = pool_s[order]
            best_energies = pool_e[order]
        assert best_states is not None and best_energies is not None
        return SampleSet(
            best_states, best_energies, info={"sampler": "ExactSolver", "keep": keep}
        )

    @staticmethod
    def _decode_block(codes: np.ndarray, bits: np.ndarray) -> np.ndarray:
        """Expand integer codes into {0,1} rows; bit 0 is variable 0."""
        return ((codes[:, None] >> bits[None, :]) & 1).astype(np.int8)

    def ground_state(self, model: QuboModel) -> tuple:
        """Convenience: ``(state, energy)`` of the global minimum."""
        result = self.sample_model(model, keep=1)
        best = result.first
        state = np.array(
            [best.assignment[i] for i in range(model.num_variables)], dtype=np.int8
        )
        return state, best.energy
