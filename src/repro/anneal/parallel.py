"""Parallel sampling: split reads across workers, or race samplers.

Two composition patterns:

* :class:`ParallelSampler` — split one sampler's ``num_reads`` across
  processes (or threads, or serial chunks). Each worker gets an independent
  RNG stream spawned from the parent seed, so results are reproducible and
  independent of scheduling order — the SPMD pattern from the MPI guides,
  realized with the standard library because the execution substrate here is
  a single node.
* :class:`PortfolioSampler` — run *different* samplers on the same model and
  merge their sample sets (an algorithm portfolio; the winner is recorded in
  ``info["portfolio_best"]``).

Workers receive the model as its ``i <= j`` coefficient dict — never a
dense matrix (``QuboModel.__getstate__`` likewise drops cached matrix
views, so even a directly-pickled model ships O(nnz) bytes). Each worker
rebuilds the model locally and the child sampler's ``coupling_mode="auto"``
re-selects the CSR kernels there, so the sparse fast path survives the
process boundary.
"""

from __future__ import annotations

import concurrent.futures as cf
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.anneal.base import Sampler
from repro.anneal.sampleset import SampleSet
from repro.qubo.model import QuboModel
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["ParallelSampler", "PortfolioSampler", "split_evenly"]


def split_evenly(total: int, parts: int) -> List[int]:
    """Partition *total* units into at most *parts* non-empty, near-equal chunks.

    The chunking primitive behind :class:`ParallelSampler` (splitting
    ``num_reads`` across workers) and the batch service (sharding work items
    into waves). Invariants, for all valid inputs:

    * ``sum(split_evenly(total, parts)) == total``;
    * no chunk is empty: ``total == 0`` yields ``[]``, and fewer units than
      parts yields ``total`` chunks of one;
    * chunk sizes differ by at most one and are non-increasing.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if total == 0:
        return []
    workers = min(parts, total)
    base, extra = divmod(total, workers)
    return [base + (1 if w < extra else 0) for w in range(workers)]


def _run_chunk(
    sampler: Sampler,
    coefficients: Dict[Tuple[int, int], float],
    num_variables: int,
    offset: float,
    reads: int,
    seed: int,
    params: Dict[str, Any],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Top-level worker body (must be picklable for process pools)."""
    model = QuboModel(num_variables, coefficients, offset=offset)
    result = sampler.sample_model(model, num_reads=reads, seed=seed, **params)
    return result.states, result.energies, result.num_occurrences


class ParallelSampler(Sampler):
    """Split a child sampler's reads across a worker pool.

    Parameters
    ----------
    child:
        Any sampler accepting ``num_reads`` and ``seed`` parameters.
    num_workers:
        Pool size (default 4).
    executor:
        ``"process"`` (default), ``"thread"``, or ``"serial"``. The serial
        mode runs the same chunking without a pool — useful for debugging
        and as the reproducibility reference (all three modes produce
        identical sample sets for a given seed).
    """

    def __init__(
        self, child: Sampler, num_workers: int = 4, executor: str = "process"
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if executor not in ("process", "thread", "serial"):
            raise ValueError(
                f"executor must be 'process', 'thread' or 'serial', got {executor!r}"
            )
        self.child = child
        self.num_workers = num_workers
        self.executor = executor

    def sample_model(
        self,
        model: QuboModel,
        *,
        num_reads: int = 32,
        seed: SeedLike = None,
        **params: Any,
    ) -> SampleSet:
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        chunks = self._split_reads(num_reads, self.num_workers)
        rngs = spawn_rngs(seed, len(chunks))
        child_seeds = [int(r.integers(0, 2**63 - 1)) for r in rngs]
        coefficients = model.to_dict()
        args = [
            (
                self.child,
                coefficients,
                model.num_variables,
                model.offset,
                reads,
                child_seed,
                params,
            )
            for reads, child_seed in zip(chunks, child_seeds)
        ]

        if self.executor == "serial":
            raw = [_run_chunk(*a) for a in args]
        else:
            pool_cls = (
                cf.ProcessPoolExecutor
                if self.executor == "process"
                else cf.ThreadPoolExecutor
            )
            with pool_cls(max_workers=self.num_workers) as pool:
                futures = [pool.submit(_run_chunk, *a) for a in args]
                raw = [f.result() for f in futures]

        sets = [
            SampleSet(states, energies, num_occurrences=occurrences)
            for states, energies, occurrences in raw
        ]
        merged = SampleSet.concatenate(sets)
        merged.info.update(
            {
                "sampler": f"ParallelSampler({type(self.child).__name__})",
                "executor": self.executor,
                "num_workers": self.num_workers,
                "chunk_reads": chunks,
            }
        )
        return merged

    @staticmethod
    def _split_reads(num_reads: int, num_workers: int) -> List[int]:
        """Evenly partition reads; never emits empty chunks.

        Delegates to :func:`split_evenly`; ``num_reads == 0`` yields no
        chunks (the historical implementation raised ``ZeroDivisionError``)
        and ``num_reads < num_workers`` yields ``num_reads`` single-read
        chunks.
        """
        if num_reads < 0:
            raise ValueError(f"num_reads must be non-negative, got {num_reads}")
        return split_evenly(num_reads, num_workers)


class PortfolioSampler(Sampler):
    """Race heterogeneous samplers on the same model and merge the results."""

    def __init__(
        self,
        samplers: Sequence[Tuple[str, Sampler, Dict[str, Any]]],
        executor: str = "thread",
    ) -> None:
        """``samplers`` is a list of ``(name, sampler, fixed_params)``."""
        if not samplers:
            raise ValueError("portfolio needs at least one sampler")
        if executor not in ("thread", "serial"):
            raise ValueError(f"executor must be 'thread' or 'serial', got {executor!r}")
        names = [name for name, _, _ in samplers]
        if len(set(names)) != len(names):
            raise ValueError("portfolio entries must have unique names")
        self.entries = list(samplers)
        self.executor = executor

    def sample_model(
        self, model: QuboModel, *, seed: SeedLike = None, **shared: Any
    ) -> SampleSet:
        rngs = spawn_rngs(seed, len(self.entries))
        seeds = [int(r.integers(0, 2**63 - 1)) for r in rngs]

        def run(entry, child_seed):
            name, sampler, fixed = entry
            params = {**shared, **fixed}
            return name, sampler.sample_model(model, seed=child_seed, **params)

        if self.executor == "serial":
            results = [run(e, s) for e, s in zip(self.entries, seeds)]
        else:
            with cf.ThreadPoolExecutor(max_workers=len(self.entries)) as pool:
                futures = [
                    pool.submit(run, e, s) for e, s in zip(self.entries, seeds)
                ]
                results = [f.result() for f in futures]

        # A child may legitimately return an empty sample set (e.g. a
        # truncating/filtering composite that dropped every read); picking
        # the winner over all results used to crash on ``.first``. Skip
        # empty sets and only fail when *no* child produced samples.
        non_empty = [(name, res) for name, res in results if len(res)]
        if not non_empty:
            raise ValueError(
                "all portfolio samplers returned empty sample sets; "
                "nothing to merge"
            )
        best_name = min(non_empty, key=lambda pair: pair[1].first.energy)[0]
        per_sampler_best = {
            name: float(res.first.energy) for name, res in non_empty
        }
        merged = SampleSet.concatenate([res for _, res in non_empty])
        merged.info.update(
            {
                "sampler": "PortfolioSampler",
                "portfolio_best": best_name,
                "portfolio_energies": per_sampler_best,
            }
        )
        return merged
