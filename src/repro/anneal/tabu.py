"""Tabu search sampler — the strongest classical baseline in the suite.

Best-admissible-move local search with a recency-based tabu list and a
standard aspiration criterion (a tabu move is allowed when it would improve
on the best energy seen by that read). All reads advance in lockstep so each
search step is a handful of vectorized array operations.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.anneal.base import Sampler
from repro.anneal.sampleset import SampleSet
from repro.qubo.model import QuboModel
from repro.qubo.sparse import CsrMatrix, has_any_coupling, initial_local_fields
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["TabuSampler"]


class TabuSampler(Sampler):
    """Multi-start tabu search over the QUBO.

    Runs against either the dense or the CSR coupling form
    (``coupling_mode``, default ``"auto"``); accepted moves update the
    local fields through the flipped variable's CSR row slice on the
    sparse path, preserving the dense path's move order exactly.
    """

    parameters = {
        "num_reads": "independent searches",
        "num_steps": "moves per search (default 8 n)",
        "tenure": "tabu tenure in moves (default min(20, n-1), 0 when n == 1)",
        "coupling_mode": "'auto' | 'dense' | 'sparse' matrix form",
        "seed": "RNG seed",
    }

    def sample_model(
        self,
        model: QuboModel,
        *,
        num_reads: int = 16,
        num_steps: Optional[int] = None,
        tenure: Optional[int] = None,
        coupling_mode: str = "auto",
        seed: SeedLike = None,
        **unknown: Any,
    ) -> SampleSet:
        if unknown:
            raise TypeError(f"unknown sampler parameters: {sorted(unknown)}")
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        rng = ensure_rng(seed)
        n = model.num_variables
        if n == 0:
            return SampleSet(
                np.zeros((num_reads, 0), dtype=np.int8),
                np.full(num_reads, model.offset),
            )
        steps = num_steps if num_steps is not None else 8 * n
        if steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {steps}")
        if tenure is None:
            # n == 1 admits only tenure 0 (the [0, n) check below): with a
            # single variable there is nothing to forbid without
            # deadlocking the search, so the degenerate default is 0.
            tenure = max(min(20, n - 1), 0)
        if not (0 <= tenure < max(n, 1)):
            raise ValueError(f"tenure must lie in [0, n), got {tenure}")

        diag, coupling = model.sampler_form(mode=coupling_mode)
        has_coupling = has_any_coupling(coupling)
        sparse = isinstance(coupling, CsrMatrix)
        states = rng.integers(0, 2, size=(num_reads, n), dtype=np.int8)
        fields = (
            initial_local_fields(states, coupling)
            if has_coupling
            else np.zeros((num_reads, n))
        )
        energies = model.energies(states)

        best_states = states.copy()
        best_energies = energies.copy()
        # expire[r, i] = step index at which variable i stops being tabu for read r.
        expire = np.zeros((num_reads, n), dtype=np.int64)
        rows = np.arange(num_reads)

        for step in range(steps):
            dx = 1.0 - 2.0 * states
            delta_e = dx * (diag[None, :] + fields)
            candidate = energies[:, None] + delta_e
            # Aspiration: tabu moves stay admissible if they beat the best.
            blocked = (expire > step) & (candidate >= best_energies[:, None] - 1e-12)
            masked = np.where(blocked, np.inf, delta_e)
            move = np.argmin(masked, axis=1)
            move_delta = masked[rows, move]
            # A read where everything is blocked skips this step.
            ok = np.isfinite(move_delta)
            if ok.any():
                r = rows[ok]
                c = move[ok]
                dxa = dx[r, c]
                states[r, c] ^= 1
                energies[r] += move_delta[ok]
                if has_coupling:
                    if sparse:
                        # One flipped variable per read: row-slice updates.
                        for rr, cc, dd in zip(
                            r.tolist(), c.tolist(), dxa.tolist()
                        ):
                            cols, vals = coupling.row(cc)
                            fields[rr, cols] += dd * vals
                    else:
                        fields[r] += dxa[:, None] * coupling[c, :]
                expire[r, c] = step + 1 + tenure
                improved = energies[r] < best_energies[r] - 1e-12
                if improved.any():
                    ri = r[improved]
                    best_states[ri] = states[ri]
                    best_energies[ri] = energies[ri]

        # Report the best state each read visited, not where it ended.
        final_energies = model.energies(best_states)
        return SampleSet(
            best_states,
            final_energies,
            info={
                "sampler": "TabuSampler",
                "num_steps": steps,
                "tenure": tenure,
                "coupling_form": "sparse" if sparse else "dense",
            },
        )

    def sample_tiled(
        self,
        tiled: Any,
        *,
        num_reads: int = 16,
        num_steps: Optional[int] = None,
        tenure: Optional[int] = None,
        coupling_mode: str = "auto",
        seed: Any = None,
        **unknown: Any,
    ) -> list:
        """Run all blocks of a tiled problem as one fused tabu search.

        One ``(R, Σn)`` state/field matrix and one step loop; each block
        keeps its own move budget (default ``8 n_k``), tenure (default
        ``min(20, n_k - 1)``), best-state tracking, and — the only RNG
        use — its own content-keyed initial-state draw, so per-block
        results are bit-identical to solo solves at
        ``seed=tiled.block_rngs(seed)[k]`` for integer-coefficient
        models. An explicit ``tenure`` must be admissible for every
        block (``tenure < min_k n_k``).
        """
        if unknown:
            raise TypeError(f"unknown sampler parameters: {sorted(unknown)}")
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        if tiled.num_blocks == 0:
            return []
        rngs = tiled.block_rngs(seed)
        mode = tiled.resolve_coupling_mode(coupling_mode)
        sizes = np.asarray(tiled.sizes, dtype=np.int64)
        num_blocks = tiled.num_blocks

        steps_per_block = [0] * num_blocks
        tenure_per_block = [0] * num_blocks
        block_states = []
        nonempty = []
        for k, model in enumerate(tiled.models):
            n_k = model.num_variables
            if n_k == 0:
                block_states.append(np.zeros((num_reads, 0), dtype=np.int8))
                continue
            steps_k = num_steps if num_steps is not None else 8 * n_k
            if steps_k < 1:
                raise ValueError(f"num_steps must be >= 1, got {steps_k}")
            tenure_k = tenure if tenure is not None else max(min(20, n_k - 1), 0)
            if not (0 <= tenure_k < n_k):
                raise ValueError(
                    f"tenure must lie in [0, n) for every block, "
                    f"got {tenure_k} for block {k} (n={n_k})"
                )
            steps_per_block[k] = steps_k
            tenure_per_block[k] = tenure_k
            block_states.append(
                rngs[k].integers(0, 2, size=(num_reads, n_k), dtype=np.int8)
            )
            nonempty.append(k)
        states = np.hstack(block_states)

        per_block_info = [
            {
                "sampler": "TabuSampler",
                "num_steps": steps_per_block[k],
                "tenure": tenure_per_block[k],
                "coupling_form": mode,
            }
            if tiled.models[k].num_variables
            else {}
            for k in range(num_blocks)
        ]
        if not nonempty:
            return tiled.build_samplesets(states, per_block_info=per_block_info)

        diag, coupling = tiled.fused_sampler_form(mode)
        has_coupling = has_any_coupling(coupling)
        sparse = isinstance(coupling, CsrMatrix)
        n_total = tiled.num_variables
        fields = (
            initial_local_fields(states, coupling)
            if has_coupling
            else np.zeros((num_reads, n_total))
        )
        # Per-read, per-block running and best energies: the repeat() below
        # broadcasts them back to fused column space each step.
        energies_rb = np.zeros((num_reads, num_blocks))
        for k in nonempty:
            energies_rb[:, k] = tiled.models[k].energies(
                states[:, tiled.block_slice(k)]
            )
        best_states = states.copy()
        best_rb = energies_rb.copy()
        expire = np.zeros((num_reads, n_total), dtype=np.int64)
        rows = np.arange(num_reads)

        for step in range(max(steps_per_block)):
            dx = 1.0 - 2.0 * states
            delta_e = dx * (diag[None, :] + fields)
            candidate = np.repeat(energies_rb, sizes, axis=1) + delta_e
            blocked = (expire > step) & (
                candidate >= np.repeat(best_rb, sizes, axis=1) - 1e-12
            )
            masked = np.where(blocked, np.inf, delta_e)
            for k in nonempty:
                if step >= steps_per_block[k]:
                    continue
                sl = tiled.block_slice(k)
                sub = masked[:, sl]
                move = np.argmin(sub, axis=1)
                move_delta = sub[rows, move]
                ok = np.isfinite(move_delta)
                if not ok.any():
                    continue
                r = rows[ok]
                c = move[ok] + sl.start
                dxa = dx[r, c]
                states[r, c] ^= 1
                energies_rb[r, k] += move_delta[ok]
                if has_coupling:
                    if sparse:
                        for rr, cc, dd in zip(r.tolist(), c.tolist(), dxa.tolist()):
                            cols, vals = coupling.row(cc)
                            fields[rr, cols] += dd * vals
                    else:
                        fields[r] += dxa[:, None] * coupling[c, :]
                expire[r, c] = step + 1 + tenure_per_block[k]
                improved = energies_rb[r, k] < best_rb[r, k] - 1e-12
                if improved.any():
                    ri = r[improved]
                    best_states[ri, sl] = states[ri, sl]
                    best_rb[ri, k] = energies_rb[ri, k]

        return tiled.build_samplesets(best_states, per_block_info=per_block_info)
