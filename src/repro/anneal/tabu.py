"""Tabu search sampler — the strongest classical baseline in the suite.

Best-admissible-move local search with a recency-based tabu list and a
standard aspiration criterion (a tabu move is allowed when it would improve
on the best energy seen by that read). All reads advance in lockstep so each
search step is a handful of vectorized array operations.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.anneal.base import Sampler
from repro.anneal.sampleset import SampleSet
from repro.qubo.model import QuboModel
from repro.qubo.sparse import CsrMatrix, has_any_coupling, initial_local_fields
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["TabuSampler"]


class TabuSampler(Sampler):
    """Multi-start tabu search over the QUBO.

    Runs against either the dense or the CSR coupling form
    (``coupling_mode``, default ``"auto"``); accepted moves update the
    local fields through the flipped variable's CSR row slice on the
    sparse path, preserving the dense path's move order exactly.
    """

    parameters = {
        "num_reads": "independent searches",
        "num_steps": "moves per search (default 8 n)",
        "tenure": "tabu tenure in moves (default min(20, n-1))",
        "coupling_mode": "'auto' | 'dense' | 'sparse' matrix form",
        "seed": "RNG seed",
    }

    def sample_model(
        self,
        model: QuboModel,
        *,
        num_reads: int = 16,
        num_steps: Optional[int] = None,
        tenure: Optional[int] = None,
        coupling_mode: str = "auto",
        seed: SeedLike = None,
        **unknown: Any,
    ) -> SampleSet:
        if unknown:
            raise TypeError(f"unknown sampler parameters: {sorted(unknown)}")
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        rng = ensure_rng(seed)
        n = model.num_variables
        if n == 0:
            return SampleSet(
                np.zeros((num_reads, 0), dtype=np.int8),
                np.full(num_reads, model.offset),
            )
        steps = num_steps if num_steps is not None else 8 * n
        if steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {steps}")
        if tenure is None:
            tenure = min(20, max(n - 1, 1))
        if not (0 <= tenure < max(n, 1)):
            raise ValueError(f"tenure must lie in [0, n), got {tenure}")

        diag, coupling = model.sampler_form(mode=coupling_mode)
        has_coupling = has_any_coupling(coupling)
        sparse = isinstance(coupling, CsrMatrix)
        states = rng.integers(0, 2, size=(num_reads, n), dtype=np.int8)
        fields = (
            initial_local_fields(states, coupling)
            if has_coupling
            else np.zeros((num_reads, n))
        )
        energies = model.energies(states)

        best_states = states.copy()
        best_energies = energies.copy()
        # expire[r, i] = step index at which variable i stops being tabu for read r.
        expire = np.zeros((num_reads, n), dtype=np.int64)
        rows = np.arange(num_reads)

        for step in range(steps):
            dx = 1.0 - 2.0 * states
            delta_e = dx * (diag[None, :] + fields)
            candidate = energies[:, None] + delta_e
            # Aspiration: tabu moves stay admissible if they beat the best.
            blocked = (expire > step) & (candidate >= best_energies[:, None] - 1e-12)
            masked = np.where(blocked, np.inf, delta_e)
            move = np.argmin(masked, axis=1)
            move_delta = masked[rows, move]
            # A read where everything is blocked skips this step.
            ok = np.isfinite(move_delta)
            if ok.any():
                r = rows[ok]
                c = move[ok]
                dxa = dx[r, c]
                states[r, c] ^= 1
                energies[r] += move_delta[ok]
                if has_coupling:
                    if sparse:
                        # One flipped variable per read: row-slice updates.
                        for rr, cc, dd in zip(
                            r.tolist(), c.tolist(), dxa.tolist()
                        ):
                            cols, vals = coupling.row(cc)
                            fields[rr, cols] += dd * vals
                    else:
                        fields[r] += dxa[:, None] * coupling[c, :]
                expire[r, c] = step + 1 + tenure
                improved = energies[r] < best_energies[r] - 1e-12
                if improved.any():
                    ri = r[improved]
                    best_states[ri] = states[ri]
                    best_energies[ri] = energies[ri]

        # Report the best state each read visited, not where it ended.
        final_energies = model.energies(best_states)
        return SampleSet(
            best_states,
            final_energies,
            info={
                "sampler": "TabuSampler",
                "num_steps": steps,
                "tenure": tenure,
                "coupling_form": "sparse" if sparse else "dense",
            },
        )
