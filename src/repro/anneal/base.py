"""Sampler interface.

Every solver in the library — simulated annealing, SQA, exact enumeration,
tabu, the simulated QPU, and all composites — implements
:class:`Sampler.sample_model`. Convenience entry points accept raw QUBO
dicts, Ising dicts, or labelled BQMs and normalize to the index-based
:class:`~repro.qubo.model.QuboModel` fast path.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Hashable, Mapping, Tuple

from repro.anneal.sampleset import SampleSet
from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.model import QuboModel

__all__ = ["Sampler"]


class Sampler(abc.ABC):
    """Abstract base for everything that turns a QUBO into a SampleSet."""

    #: Human-readable parameter documentation, for introspection.
    parameters: Dict[str, str] = {}

    @abc.abstractmethod
    def sample_model(self, model: QuboModel, **params: Any) -> SampleSet:
        """Sample an index-based QUBO; columns are labelled ``0..n-1``."""

    # ------------------------------------------------------------------ #
    # convenience entry points
    # ------------------------------------------------------------------ #

    def sample_qubo(
        self, q: Mapping[Tuple[Hashable, Hashable], float], **params: Any
    ) -> SampleSet:
        """Sample a dict-form QUBO ``{(u, v): coeff}`` with arbitrary labels."""
        bqm = BinaryQuadraticModel(vartype="BINARY")
        for (u, v), coeff in q.items():
            if u == v:
                bqm.add_variable(u, coeff)
            else:
                bqm.add_interaction(u, v, coeff)
        return self.sample_bqm(bqm, **params)

    def sample_ising(
        self,
        h: Mapping[Hashable, float],
        j: Mapping[Tuple[Hashable, Hashable], float],
        **params: Any,
    ) -> SampleSet:
        """Sample an Ising model; the returned samples are in SPIN values."""
        bqm = BinaryQuadraticModel.from_ising(h, j)
        result = self.sample_bqm(bqm, **params)
        # sample_bqm works in BINARY space; map the states back to spins.
        spins = (2 * result.states.astype(int) - 1).astype("int8")
        return SampleSet(
            spins,
            result.energies,
            variables=result.variables,
            num_occurrences=result.num_occurrences,
            info=result.info,
        )

    def sample_bqm(self, bqm: BinaryQuadraticModel, **params: Any) -> SampleSet:
        """Sample a labelled BQM, restoring the labels on the way out."""
        model, order = bqm.to_qubo_model()
        result = self.sample_model(model, **params)
        return SampleSet(
            result.states,
            result.energies,
            variables=order,
            num_occurrences=result.num_occurrences,
            info=result.info,
        )
