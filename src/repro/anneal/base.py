"""Sampler interface.

Every solver in the library — simulated annealing, SQA, exact enumeration,
tabu, the simulated QPU, and all composites — implements
:class:`Sampler.sample_model`. Convenience entry points accept raw QUBO
dicts, Ising dicts, or labelled BQMs and normalize to the index-based
:class:`~repro.qubo.model.QuboModel` fast path.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.anneal.sampleset import SampleSet
from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.model import QuboModel

__all__ = ["Sampler", "resolve_initial_states"]


def resolve_initial_states(
    initial_states: Optional[np.ndarray],
    num_reads: int,
    num_variables: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Validated ``(num_reads, n)`` int8 {0,1} starting states.

    ``None`` draws uniform random states from *rng*; a 1-d array is
    broadcast to every read. Shared by every sampler that accepts
    ``initial_states`` so they all enforce the same contract — non-binary
    values are rejected here rather than silently escaping the {0,1}
    domain through the kernels' ``^= 1`` flips.
    """
    if initial_states is None:
        return rng.integers(0, 2, size=(num_reads, num_variables), dtype=np.int8)
    arr = np.asarray(initial_states)
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("initial_states must be 0/1 valued")
    arr = np.array(arr, dtype=np.int8, copy=True)
    if arr.ndim == 1:
        arr = np.broadcast_to(arr, (num_reads, num_variables)).copy()
    if arr.shape != (num_reads, num_variables):
        raise ValueError(
            f"initial_states shape {arr.shape} != ({num_reads}, {num_variables})"
        )
    return arr


class Sampler(abc.ABC):
    """Abstract base for everything that turns a QUBO into a SampleSet."""

    #: Human-readable parameter documentation, for introspection.
    parameters: Dict[str, str] = {}

    @abc.abstractmethod
    def sample_model(self, model: QuboModel, **params: Any) -> SampleSet:
        """Sample an index-based QUBO; columns are labelled ``0..n-1``."""

    def sample_tiled(self, tiled: Any, *, seed: Any = None, **params: Any) -> List[SampleSet]:
        """Solve the blocks of a :class:`~repro.qubo.tile.TiledProblem`.

        Returns one :class:`SampleSet` per block, under the tiler's
        batch-invariance contract: block *k* is sampled with the RNG
        stream ``tiled.block_rngs(seed)[k]``, keyed by ``(base_seed,
        block content hash)``, so its result never depends on its
        tile-mates. This default solves each block with a separate
        ``sample_model`` call — correct for every sampler but with no
        fusion speedup; SA/tabu/greedy override it with genuinely fused
        kernels that reproduce this fallback bit-for-bit.

        Samplers that consume a seed must list ``"seed"`` in their
        :attr:`parameters` dict; deterministic samplers (e.g. the exact
        solver) are run without one.
        """
        rngs = tiled.block_rngs(seed)
        takes_seed = "seed" in type(self).parameters
        out: List[SampleSet] = []
        for k, model in enumerate(tiled.models):
            kwargs = dict(params)
            if takes_seed:
                kwargs["seed"] = rngs[k]
            result = self.sample_model(model, **kwargs)
            result.info.setdefault(
                "tile", {"num_blocks": tiled.num_blocks, "block": k}
            )
            out.append(result)
        return out

    # ------------------------------------------------------------------ #
    # convenience entry points
    # ------------------------------------------------------------------ #

    def sample_qubo(
        self, q: Mapping[Tuple[Hashable, Hashable], float], **params: Any
    ) -> SampleSet:
        """Sample a dict-form QUBO ``{(u, v): coeff}`` with arbitrary labels."""
        bqm = BinaryQuadraticModel(vartype="BINARY")
        for (u, v), coeff in q.items():
            if u == v:
                bqm.add_variable(u, coeff)
            else:
                bqm.add_interaction(u, v, coeff)
        return self.sample_bqm(bqm, **params)

    def sample_ising(
        self,
        h: Mapping[Hashable, float],
        j: Mapping[Tuple[Hashable, Hashable], float],
        **params: Any,
    ) -> SampleSet:
        """Sample an Ising model; the returned samples are in SPIN values."""
        bqm = BinaryQuadraticModel.from_ising(h, j)
        result = self.sample_bqm(bqm, **params)
        # sample_bqm works in BINARY space; map the states back to spins.
        spins = (2 * result.states.astype(int) - 1).astype("int8")
        return SampleSet(
            spins,
            result.energies,
            variables=result.variables,
            num_occurrences=result.num_occurrences,
            info=result.info,
        )

    def sample_bqm(self, bqm: BinaryQuadraticModel, **params: Any) -> SampleSet:
        """Sample a labelled BQM, restoring the labels on the way out."""
        model, order = bqm.to_qubo_model()
        result = self.sample_model(model, **params)
        return SampleSet(
            result.states,
            result.energies,
            variables=order,
            num_occurrences=result.num_occurrences,
            info=result.info,
        )
