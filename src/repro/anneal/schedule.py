"""Annealing schedules.

Simulated annealing sweeps an inverse temperature ``beta`` from hot to cold;
simulated *quantum* annealing additionally sweeps a transverse field
``Gamma`` from strong to weak. Schedules are plain float64 arrays, one value
per sweep, so samplers stay schedule-agnostic.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.qubo.sparse import CsrMatrix

__all__ = [
    "default_beta_range",
    "geometric_schedule",
    "linear_schedule",
    "transverse_field_schedule",
]


def default_beta_range(
    diagonal: np.ndarray, coupling: Union[np.ndarray, CsrMatrix]
) -> Tuple[float, float]:
    """Heuristic ``(beta_hot, beta_cold)`` from the model's energy scales.

    The hot end accepts flips against the *largest* single-variable energy
    change with probability ~0.5 (so the walk starts effectively free). The
    cold end must *freeze* the smallest energy scale in the problem: flips
    that win or lose only the **smallest nonzero coefficient** must be
    decisively rejected, or formulations with weak tie-breaking terms (the
    §4.4 first-match increment is ``A / (2 (n-m+1))``, orders of magnitude
    below the one-hot couplings) never settle into their true optimum.

    Parameters
    ----------
    diagonal:
        ``(n,)`` QUBO diagonal.
    coupling:
        ``(n, n)`` symmetric off-diagonal matrix, or the CSR form
        (:class:`~repro.qubo.sparse.CsrMatrix`) produced by
        ``QuboModel.sampler_form(mode="sparse")``. Both forms yield the
        same range (exactly so for integer-coefficient models — the
        per-row sums only differ by the order zeros are skipped in).
    """
    diagonal = np.asarray(diagonal, dtype=np.float64)
    if isinstance(coupling, CsrMatrix):
        incident = coupling.abs_row_sums()
        coupling_mags = np.abs(coupling.data)
    else:
        coupling = np.asarray(coupling, dtype=np.float64)
        incident = np.abs(coupling).sum(axis=1)
        coupling_mags = np.abs(coupling).ravel()
    # Largest possible |delta E| per variable: |d_i| plus total incident coupling.
    reach = np.abs(diagonal) + incident
    max_reach = float(reach.max()) if reach.size else 1.0
    if max_reach <= 0.0:
        return 0.1, 1.0
    # Smallest energy scale: the least nonzero |coefficient| anywhere.
    magnitudes = np.concatenate([np.abs(diagonal).ravel(), coupling_mags])
    nonzero = magnitudes[magnitudes > 0]
    min_scale = float(nonzero.min()) if nonzero.size else max_reach
    beta_hot = np.log(2.0) / max_reach
    n = max(int(diagonal.size), 2)
    beta_cold = np.log(100.0 * n) / min_scale
    if beta_cold <= beta_hot:
        beta_cold = beta_hot * 10.0
    return float(beta_hot), float(beta_cold)


def geometric_schedule(
    beta_hot: float, beta_cold: float, num_sweeps: int
) -> np.ndarray:
    """Geometric interpolation from hot to cold (the ``neal`` default)."""
    _check(beta_hot, beta_cold, num_sweeps)
    if num_sweeps == 1:
        return np.array([beta_cold], dtype=np.float64)
    return np.geomspace(beta_hot, beta_cold, num_sweeps, dtype=np.float64)


def linear_schedule(beta_hot: float, beta_cold: float, num_sweeps: int) -> np.ndarray:
    """Linear interpolation from hot to cold."""
    _check(beta_hot, beta_cold, num_sweeps)
    if num_sweeps == 1:
        return np.array([beta_cold], dtype=np.float64)
    return np.linspace(beta_hot, beta_cold, num_sweeps, dtype=np.float64)


def transverse_field_schedule(
    gamma_initial: float, gamma_final: float, num_sweeps: int
) -> np.ndarray:
    """Linearly decreasing transverse field for path-integral SQA.

    Hardware anneals reduce the tunnelling term from a large initial value
    to (near) zero; ``gamma_final`` is clamped above a small epsilon because
    the Trotter inter-slice coupling diverges logarithmically at zero field.
    """
    if gamma_initial <= 0:
        raise ValueError(f"gamma_initial must be positive, got {gamma_initial}")
    if gamma_final < 0:
        raise ValueError(f"gamma_final must be non-negative, got {gamma_final}")
    if gamma_final > gamma_initial:
        raise ValueError("transverse field must decrease over the anneal")
    if num_sweeps < 1:
        raise ValueError(f"num_sweeps must be >= 1, got {num_sweeps}")
    eps = 1e-9 * gamma_initial
    return np.linspace(gamma_initial, max(gamma_final, eps), num_sweeps, dtype=np.float64)


def _check(beta_hot: float, beta_cold: float, num_sweeps: int) -> None:
    if beta_hot <= 0 or beta_cold <= 0:
        raise ValueError(
            f"beta endpoints must be positive, got ({beta_hot}, {beta_cold})"
        )
    if beta_cold < beta_hot:
        raise ValueError(
            f"schedule must cool: beta_cold {beta_cold} < beta_hot {beta_hot}"
        )
    if num_sweeps < 1:
        raise ValueError(f"num_sweeps must be >= 1, got {num_sweeps}")
