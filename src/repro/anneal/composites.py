"""Sampler composites — wrappers that transform models and/or results.

Mirrors D-Wave's composite pattern: a composite *is* a sampler, holding a
child sampler and pre/post-processing the problem around it. Composites
compose, e.g. ``TruncateComposite(ScaleComposite(SimulatedAnnealingSampler()))``.
The hardware-specific :class:`~repro.hardware.embedding.EmbeddingComposite`
lives in :mod:`repro.hardware`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.anneal.base import Sampler
from repro.anneal.sampleset import SampleSet
from repro.qubo.algebra import scale_model
from repro.qubo.model import QuboModel
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "ScaleComposite",
    "TruncateComposite",
    "SpinReversalTransformComposite",
]


class ScaleComposite(Sampler):
    """Normalize coefficients into ``[-target, target]`` before sampling.

    Annealing hardware has a fixed analog range for ``h``/``J``; oversized
    coefficients are clipped by the control system, silently deforming the
    problem. Scaling by a positive constant preserves the argmin, so the
    child samples the scaled model and this composite **rescores** the
    returned states against the original model (energies in the result are
    true energies, not scaled ones).
    """

    def __init__(self, child: Sampler, target: float = 1.0) -> None:
        if target <= 0:
            raise ValueError(f"target range must be positive, got {target}")
        self.child = child
        self.target = float(target)

    def sample_model(self, model: QuboModel, **params: Any) -> SampleSet:
        peak = model.max_abs_coefficient()
        if peak <= self.target or peak == 0.0:
            scaled = model
            factor = 1.0
        else:
            factor = self.target / peak
            scaled = scale_model(model, factor)
        result = self.child.sample_model(scaled, **params)
        energies = model.energies(result.states) if len(result) else result.energies
        out = SampleSet(
            result.states,
            energies,
            variables=result.variables,
            num_occurrences=result.num_occurrences,
            info=result.info,
        )
        out.info["scale_factor"] = factor
        return out


class TruncateComposite(Sampler):
    """Keep only the best *k* rows of the child's result."""

    def __init__(self, child: Sampler, k: int = 1, aggregate: bool = True) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.child = child
        self.k = k
        self.aggregate = aggregate

    def sample_model(self, model: QuboModel, **params: Any) -> SampleSet:
        result = self.child.sample_model(model, **params)
        if self.aggregate:
            result = result.aggregate()
        return result.truncate(self.k)


class SpinReversalTransformComposite(Sampler):
    """Gauge-average the child sampler (spin-reversal transforms).

    On analog hardware, systematic biases (h offsets, asymmetric couplers)
    push all reads in a correlated direction. A *spin-reversal transform*
    (SRT) relabels a random subset ``G`` of variables by ``x -> 1 - x``:
    the transformed model has the same spectrum under the bijection, but
    hardware biases now push the logical problem in a *different* direction
    per gauge, so averaging over gauges cancels them. On a perfect software
    sampler an SRT is an exact no-op on energies — which is precisely what
    the tests assert.

    The transform on the QUBO: with ``S = diag(±1)`` (−1 on flipped
    variables) and ``g`` the 0/1 indicator of flips, substituting
    ``x = g + S z`` into ``x^T Q x`` gives

        Q' = S Q S  (quadratic part)  with the linear row
        ``S (Q + Q^T) g`` folded into the diagonal, and the constant
        ``g^T Q g`` folded into the offset.
    """

    def __init__(self, child: Sampler, num_transforms: int = 4) -> None:
        if num_transforms < 1:
            raise ValueError(f"num_transforms must be >= 1, got {num_transforms}")
        self.child = child
        self.num_transforms = num_transforms

    def sample_model(
        self, model: QuboModel, *, seed: SeedLike = None, **params: Any
    ) -> SampleSet:
        rng = ensure_rng(seed)
        n = model.num_variables
        q = model.to_dense()
        sets = []
        for _ in range(self.num_transforms):
            gauge = rng.integers(0, 2, size=n).astype(np.float64)
            transformed, offset = self._transform(q, model.offset, gauge)
            child_seed = int(rng.integers(0, 2**63 - 1))
            result = self.child.sample_model(
                QuboModel.from_dense(transformed, offset=offset),
                seed=child_seed,
                **params,
            )
            # Undo the gauge: x = g + S z, i.e. flip the gauged columns.
            states = result.states.copy()
            flip = gauge.astype(np.int8)
            states ^= flip[None, :]
            sets.append(
                SampleSet(
                    states,
                    result.energies,
                    variables=result.variables,
                    num_occurrences=result.num_occurrences,
                )
            )
        merged = SampleSet.concatenate(sets)
        merged.info["sampler"] = (
            f"SpinReversalTransformComposite({type(self.child).__name__})"
        )
        merged.info["num_transforms"] = self.num_transforms
        return merged

    @staticmethod
    def _transform(q: np.ndarray, offset: float, gauge: np.ndarray):
        """Apply the gauge ``x = g + S z`` to a dense QUBO matrix."""
        sign = 1.0 - 2.0 * gauge  # +1 keep, -1 flip
        quadratic = (sign[:, None] * q) * sign[None, :]
        linear = sign * ((q + q.T) @ gauge)
        transformed = quadratic.copy()
        transformed[np.diag_indices_from(transformed)] += linear
        constant = float(gauge @ q @ gauge)
        return transformed, offset + constant
