"""Path-integral simulated quantum annealing (SQA).

The paper's future work is running the QUBOs on a real quantum annealer.
Real annealers evolve a transverse-field Ising Hamiltonian

    H(t) = -Gamma(t) * sum_i sigma^x_i  +  H_problem(sigma^z)

The standard classical emulation is path-integral Monte Carlo: the quantum
system at inverse temperature ``beta`` maps (Suzuki–Trotter) onto ``P``
coupled classical replicas ("Trotter slices") with a ferromagnetic
inter-slice coupling that stiffens as the transverse field decreases:

    H_eff = (1/P) * sum_p H_problem(s_p)
            - J_perp(Gamma) * sum_p sum_i s_{p,i} s_{p+1,i}      (periodic)

    J_perp(Gamma) = -(1 / (2 beta)) * ln tanh(beta * Gamma / P)  (> 0)

This module implements SQA with the same vectorization discipline as the
classical annealer: all reads and all same-parity slices update in single
NumPy steps (slices interact only with their ±1 neighbours, so an
even/odd checkerboard over slices is exact), plus whole-worldline "global"
moves, which leave the inter-slice term invariant by construction.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.anneal.base import Sampler
from repro.anneal.sampleset import SampleSet
from repro.anneal.schedule import default_beta_range, transverse_field_schedule
from repro.qubo.ising import qubo_to_ising, spins_to_binary
from repro.qubo.model import QuboModel
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["PathIntegralAnnealer"]

_EXP_CLIP = 700.0


class PathIntegralAnnealer(Sampler):
    """Trotterized transverse-field annealer (classical emulation of a QPU).

    Parameters (per ``sample_model`` call)
    --------------------------------------
    num_reads:
        Independent anneals (default 8 — each costs ``trotter_slices`` times
        an SA read).
    num_sweeps:
        Transverse-field steps (default 128).
    trotter_slices:
        Number of replicas ``P``; must be even for the checkerboard update
        (default 8).
    beta:
        Fixed inverse temperature of the quantum system; default derived
        from the model's energy scales.
    gamma_range:
        ``(gamma_initial, gamma_final)`` transverse field endpoints; default
        ``(3 * max_scale, 1e-2 * max_scale)``.
    seed:
        RNG seed.
    """

    parameters = {
        "num_reads": "independent anneals",
        "num_sweeps": "transverse-field steps",
        "trotter_slices": "Trotter replicas P (even)",
        "beta": "fixed inverse temperature",
        "gamma_range": "(initial, final) transverse field",
        "seed": "RNG seed",
    }

    def sample_model(
        self,
        model: QuboModel,
        *,
        num_reads: int = 8,
        num_sweeps: int = 128,
        trotter_slices: int = 8,
        beta: Optional[float] = None,
        gamma_range: Optional[Tuple[float, float]] = None,
        seed: SeedLike = None,
        **unknown: Any,
    ) -> SampleSet:
        if unknown:
            raise TypeError(f"unknown sampler parameters: {sorted(unknown)}")
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        if trotter_slices < 2 or trotter_slices % 2:
            raise ValueError(
                f"trotter_slices must be an even integer >= 2, got {trotter_slices}"
            )
        rng = ensure_rng(seed)
        n = model.num_variables
        if n == 0:
            return SampleSet(
                np.zeros((num_reads, 0), dtype=np.int8),
                np.full(num_reads, model.offset),
            )

        h_vec, j_sym, _ = self._ising_arrays(model)
        scale = max(float(np.abs(h_vec).max(initial=0.0)), float(np.abs(j_sym).max(initial=0.0)), 1e-12)
        if beta is None:
            diag, coupling = model.sampler_form()
            _, beta = default_beta_range(diag, coupling)
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        if gamma_range is None:
            gamma_range = (3.0 * scale, 1e-2 * scale)
        gammas = transverse_field_schedule(gamma_range[0], gamma_range[1], num_sweeps)

        spins, fields = self._initial_worldlines(num_reads, trotter_slices, n, j_sym, rng)
        self._anneal(spins, fields, h_vec, j_sym, gammas, beta, trotter_slices, rng)

        states = self._read_out(spins, fields, h_vec)
        energies = model.energies(states)
        return SampleSet(
            states,
            energies,
            info={
                "sampler": "PathIntegralAnnealer",
                "trotter_slices": trotter_slices,
                "beta": float(beta),
                "gamma_range": (float(gammas[0]), float(gammas[-1])),
                "num_sweeps": int(num_sweeps),
            },
        )

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #

    @staticmethod
    def _ising_arrays(model: QuboModel) -> Tuple[np.ndarray, np.ndarray, float]:
        """Dense ``(h, J_sym, offset)`` spin-space form of the QUBO."""
        n = model.num_variables
        h_dict, j_dict, offset = qubo_to_ising(model.to_dict(), model.offset)
        h_vec = np.zeros(n, dtype=np.float64)
        for i, value in h_dict.items():
            h_vec[i] = value
        j_sym = np.zeros((n, n), dtype=np.float64)
        for (i, j), value in j_dict.items():
            j_sym[i, j] += value
            j_sym[j, i] += value
        return h_vec, j_sym, offset

    @staticmethod
    def _initial_worldlines(
        num_reads: int,
        slices: int,
        n: int,
        j_sym: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        spins = rng.choice(np.array([-1, 1], dtype=np.int8), size=(num_reads, slices, n))
        flat = spins.reshape(num_reads * slices, n).astype(np.float64)
        fields = (flat @ j_sym).reshape(num_reads, slices, n)
        return spins, fields

    # ------------------------------------------------------------------ #
    # kernel
    # ------------------------------------------------------------------ #

    def _anneal(
        self,
        spins: np.ndarray,
        fields: np.ndarray,
        h_vec: np.ndarray,
        j_sym: np.ndarray,
        gammas: np.ndarray,
        beta: float,
        slices: int,
        rng: np.random.Generator,
    ) -> None:
        num_reads, _, n = spins.shape
        inv_p = 1.0 / slices
        parity_index = [
            np.arange(0, slices, 2, dtype=np.int64),
            np.arange(1, slices, 2, dtype=np.int64),
        ]
        has_coupling = bool(np.any(j_sym))
        order = np.arange(n)
        for gamma in gammas:
            # Inter-slice stiffness for this value of the transverse field.
            arg = np.tanh(beta * gamma * inv_p)
            j_perp = -0.5 / beta * np.log(arg)
            for parity in (0, 1):
                idx = parity_index[parity]
                up = (idx + 1) % slices
                down = (idx - 1) % slices
                rng.shuffle(order)
                for i in order:
                    s = spins[:, idx, i].astype(np.float64)
                    neighbours = (
                        spins[:, up, i].astype(np.float64)
                        + spins[:, down, i].astype(np.float64)
                    )
                    local = h_vec[i] + (fields[:, idx, i] if has_coupling else 0.0)
                    delta_e = -2.0 * s * local * inv_p + 2.0 * j_perp * s * neighbours
                    accept = delta_e <= 0.0
                    hot = ~accept
                    if hot.any():
                        log_p = np.clip(-beta * delta_e[hot], -_EXP_CLIP, 0.0)
                        accept[hot] = rng.random(int(hot.sum())) < np.exp(log_p)
                    if not accept.any():
                        continue
                    flip = np.where(accept, np.int8(-1), np.int8(1))
                    if has_coupling:
                        delta = (-2.0 * s) * accept  # change in spin value
                        fields[:, idx, :] += delta[:, :, None] * j_sym[i][None, None, :]
                    spins[:, idx, i] *= flip
            self._global_moves(spins, fields, h_vec, j_sym, beta, inv_p, has_coupling, rng)

    @staticmethod
    def _global_moves(
        spins: np.ndarray,
        fields: np.ndarray,
        h_vec: np.ndarray,
        j_sym: np.ndarray,
        beta: float,
        inv_p: float,
        has_coupling: bool,
        rng: np.random.Generator,
    ) -> None:
        """Attempt flipping entire worldlines (all slices of one variable).

        The inter-slice term is invariant under a whole-line flip, so only
        the classical part contributes to the energy change.
        """
        num_reads, slices, n = spins.shape
        for i in range(n):
            s_line = spins[:, :, i].astype(np.float64)  # (R, P)
            local = h_vec[i] + (fields[:, :, i] if has_coupling else 0.0)
            delta_e = (-2.0 * s_line * local).sum(axis=1) * inv_p
            accept = delta_e <= 0.0
            hot = ~accept
            if hot.any():
                log_p = np.clip(-beta * delta_e[hot], -_EXP_CLIP, 0.0)
                accept[hot] = rng.random(int(hot.sum())) < np.exp(log_p)
            if not accept.any():
                continue
            if has_coupling:
                delta = -2.0 * s_line[accept]  # (A, P)
                fields[accept] += delta[:, :, None] * j_sym[i][None, None, :]
            spins[accept, :, i] *= -1

    @staticmethod
    def _read_out(
        spins: np.ndarray, fields: np.ndarray, h_vec: np.ndarray
    ) -> np.ndarray:
        """Pick the lowest-classical-energy slice of each read."""
        # E_cl(r, p) = h . s + 0.5 * s . (J s); fields already hold J s.
        s = spins.astype(np.float64)
        slice_energy = s @ h_vec + 0.5 * np.einsum("rpn,rpn->rp", s, fields)
        best = np.argmin(slice_energy, axis=1)
        rows = np.arange(spins.shape[0])
        return spins_to_binary(spins[rows, best, :])
