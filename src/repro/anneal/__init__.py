"""Samplers and annealers (the D-Wave Ocean substitution).

The paper runs its QUBOs through D-Wave's simulated annealer. This
subpackage provides a from-scratch, NumPy-vectorized equivalent plus the
surrounding sampler ecosystem a hardware-ready stack needs:

* :class:`~repro.anneal.simulated.SimulatedAnnealingSampler` — the paper's
  solver: single-flip Metropolis over the QUBO with a geometric beta
  schedule, vectorized across reads.
* :class:`~repro.anneal.sqa.PathIntegralAnnealer` — simulated *quantum*
  annealing: Trotterized transverse-field Ising dynamics, the standard
  classical stand-in for real annealing hardware.
* :class:`~repro.anneal.exact.ExactSolver` — vectorized brute force for
  ground-truth on small models.
* :class:`~repro.anneal.tabu.TabuSampler`,
  :class:`~repro.anneal.greedy.SteepestDescentSampler`,
  :class:`~repro.anneal.random_sampler.RandomSampler` — classical baselines.
* :mod:`~repro.anneal.parallel` — multi-process portfolio and batched
  sampling.
* :mod:`~repro.anneal.composites` — embedding/scale/truncate wrappers.
"""

from repro.anneal.sampleset import Sample, SampleSet
from repro.anneal.schedule import (
    default_beta_range,
    geometric_schedule,
    linear_schedule,
    transverse_field_schedule,
)
from repro.anneal.base import Sampler
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.anneal.sqa import PathIntegralAnnealer
from repro.anneal.exact import ExactSolver
from repro.anneal.reverse import ReverseAnnealingSampler
from repro.anneal.population import PopulationAnnealingSampler
from repro.anneal.tabu import TabuSampler
from repro.anneal.greedy import SteepestDescentSampler
from repro.anneal.random_sampler import RandomSampler
from repro.anneal.parallel import ParallelSampler, PortfolioSampler, split_evenly
from repro.anneal.composites import (
    ScaleComposite,
    SpinReversalTransformComposite,
    TruncateComposite,
)

__all__ = [
    "ExactSolver",
    "ParallelSampler",
    "PathIntegralAnnealer",
    "PopulationAnnealingSampler",
    "PortfolioSampler",
    "RandomSampler",
    "ReverseAnnealingSampler",
    "Sample",
    "SampleSet",
    "Sampler",
    "ScaleComposite",
    "SimulatedAnnealingSampler",
    "SpinReversalTransformComposite",
    "SteepestDescentSampler",
    "TabuSampler",
    "TruncateComposite",
    "default_beta_range",
    "geometric_schedule",
    "linear_schedule",
    "split_evenly",
    "transverse_field_schedule",
]
