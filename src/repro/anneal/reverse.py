"""Reverse annealing.

D-Wave hardware supports *reverse* anneals: start from a known classical
state, partially re-melt the system (lower the effective inverse
temperature / raise the transverse field to a turning point), then re-cool.
It is the hardware idiom for local refinement of a good-but-imperfect
solution — exactly what the paper's §4.12 sequential pipelines produce
between stages.

The classical counterpart implemented here drives the standard simulated
annealer with a vee-shaped beta schedule (cold → reheat point → cold) from
caller-supplied initial states.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.anneal.base import Sampler
from repro.anneal.sampleset import SampleSet
from repro.anneal.schedule import default_beta_range
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.qubo.model import QuboModel
from repro.utils.rng import SeedLike

__all__ = ["ReverseAnnealingSampler"]


class ReverseAnnealingSampler(Sampler):
    """Refine given states by partial re-melt and re-cool.

    Parameters (per ``sample_model`` call)
    --------------------------------------
    initial_states:
        **Required** ``(num_reads, n)`` or ``(n,)`` array of {0,1} states
        to refine.
    reheat_fraction:
        How far back toward the hot end the schedule travels: 0 keeps the
        system frozen (a glorified descent), 1 re-melts completely (a
        plain forward anneal). Default 0.35.
    num_sweeps, beta_range, seed, num_reads:
        As for :class:`~repro.anneal.simulated.SimulatedAnnealingSampler`.
    """

    parameters = {
        "initial_states": "states to refine (required)",
        "reheat_fraction": "0 = frozen, 1 = full re-melt (default 0.35)",
        "num_reads": "independent refinements",
        "num_sweeps": "total sweeps across the vee schedule",
        "beta_range": "(hot, cold) bounds for the underlying schedule",
        "seed": "RNG seed",
    }

    def __init__(self, base: Optional[SimulatedAnnealingSampler] = None) -> None:
        self.base = base if base is not None else SimulatedAnnealingSampler()

    def sample_model(
        self,
        model: QuboModel,
        *,
        initial_states: Optional[np.ndarray] = None,
        reheat_fraction: float = 0.35,
        num_reads: int = 32,
        num_sweeps: int = 256,
        beta_range: Optional[Tuple[float, float]] = None,
        seed: SeedLike = None,
        **unknown: Any,
    ) -> SampleSet:
        if unknown:
            raise TypeError(f"unknown sampler parameters: {sorted(unknown)}")
        if initial_states is None:
            raise ValueError(
                "reverse annealing requires initial_states (the states to refine)"
            )
        if not (0.0 <= reheat_fraction <= 1.0):
            raise ValueError(
                f"reheat_fraction must lie in [0, 1], got {reheat_fraction}"
            )
        if num_sweeps < 2:
            raise ValueError(f"num_sweeps must be >= 2, got {num_sweeps}")
        diag, coupling = model.sampler_form()
        hot, cold = (
            beta_range if beta_range is not None else default_beta_range(diag, coupling)
        )
        betas = self._vee_schedule(hot, cold, reheat_fraction, num_sweeps)
        result = self.base.sample_model(
            model,
            num_reads=num_reads,
            beta_schedule=betas,
            initial_states=initial_states,
            seed=seed,
        )
        result.info.update(
            {
                "sampler": "ReverseAnnealingSampler",
                "reheat_fraction": float(reheat_fraction),
                "turning_beta": float(betas.min()),
            }
        )
        return result

    @staticmethod
    def _vee_schedule(
        beta_hot: float, beta_cold: float, reheat_fraction: float, num_sweeps: int
    ) -> np.ndarray:
        """Cold -> turning point -> cold, geometric on both legs.

        The turning point interpolates log-linearly between cold
        (fraction 0) and hot (fraction 1).
        """
        log_hot, log_cold = np.log(beta_hot), np.log(beta_cold)
        log_turn = log_cold + reheat_fraction * (log_hot - log_cold)
        turn = float(np.exp(log_turn))
        down = num_sweeps // 2
        up = num_sweeps - down
        melt = np.geomspace(beta_cold, turn, down, dtype=np.float64)
        cool = np.geomspace(turn, beta_cold, up, dtype=np.float64)
        return np.concatenate([melt, cool])
