"""Exact QUBO ↔ Ising transforms.

Quantum annealers are physically Ising machines: they minimize
``E(s) = Σ h_i s_i + Σ_{i<j} J_ij s_i s_j`` over spins ``s ∈ {-1,+1}``.
The paper's formulations are QUBOs (``x ∈ {0,1}``); the substitution
``x = (s + 1) / 2`` converts between the two **exactly**, shifting constants
into the offset so that every state keeps its energy.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

__all__ = ["qubo_to_ising", "ising_to_qubo", "spins_to_binary", "binary_to_spins"]

PairDict = Mapping[Tuple[int, int], float]


def qubo_to_ising(
    coefficients: PairDict, offset: float = 0.0
) -> Tuple[Dict[int, float], Dict[Tuple[int, int], float], float]:
    """Convert QUBO coefficients to Ising ``(h, J, offset)``.

    With ``x_i = (s_i + 1)/2``:

    * a diagonal term ``a x_i`` becomes ``(a/2) s_i + a/2``,
    * a coupling ``b x_i x_j`` becomes
      ``(b/4) s_i s_j + (b/4) s_i + (b/4) s_j + b/4``.
    """
    h: Dict[int, float] = {}
    j: Dict[Tuple[int, int], float] = {}
    off = float(offset)
    for (a, b), value in coefficients.items():
        if a == b:
            h[a] = h.get(a, 0.0) + value / 2.0
            off += value / 2.0
        else:
            key = (a, b) if a < b else (b, a)
            j[key] = j.get(key, 0.0) + value / 4.0
            h[a] = h.get(a, 0.0) + value / 4.0
            h[b] = h.get(b, 0.0) + value / 4.0
            off += value / 4.0
    return h, j, off


def ising_to_qubo(
    h: Mapping[int, float], j: PairDict, offset: float = 0.0
) -> Tuple[Dict[Tuple[int, int], float], float]:
    """Convert Ising ``(h, J, offset)`` to QUBO ``(coefficients, offset)``.

    Inverse of :func:`qubo_to_ising`: with ``s_i = 2 x_i - 1``,

    * a field ``h_i s_i`` becomes ``2 h_i x_i - h_i``,
    * a coupling ``J_ij s_i s_j`` becomes
      ``4 J x_i x_j - 2 J x_i - 2 J x_j + J``.
    """
    q: Dict[Tuple[int, int], float] = {}
    off = float(offset)
    for i, value in h.items():
        q[(i, i)] = q.get((i, i), 0.0) + 2.0 * value
        off -= value
    for (a, b), value in j.items():
        if a == b:
            raise ValueError(f"Ising coupling on the diagonal: ({a}, {b})")
        key = (a, b) if a < b else (b, a)
        q[key] = q.get(key, 0.0) + 4.0 * value
        q[(a, a)] = q.get((a, a), 0.0) - 2.0 * value
        q[(b, b)] = q.get((b, b), 0.0) - 2.0 * value
        off += value
    return {k: v for k, v in q.items() if v != 0.0}, off


def binary_to_spins(states: np.ndarray) -> np.ndarray:
    """Map a {0,1} array to {-1,+1} (same shape, int8)."""
    x = np.asarray(states)
    return (2 * x - 1).astype(np.int8)


def spins_to_binary(states: np.ndarray) -> np.ndarray:
    """Map a {-1,+1} array to {0,1} (same shape, int8)."""
    s = np.asarray(states)
    return ((s + 1) // 2).astype(np.int8)
