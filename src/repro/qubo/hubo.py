"""Higher-order binary optimization (HUBO) and quadratization.

The paper's formulations stay quadratic because every §4 constraint is
*conjunctive at the bit level*. Negative constraints ("x is NOT this
string") need a penalty on the **conjunction of all 7n bits matching**, a
degree-7n monomial — inexpressible in a QUBO directly.

The standard fix (and the basis of our `StringNotEquals` extension in
:mod:`repro.core.notequals`) is **quadratization by auxiliary AND
variables**: a monomial ``x_1 x_2 ... x_k`` is reduced pairwise, replacing
``x_i x_j`` with a fresh variable ``a`` constrained by the Rosenberg
penalty

    P_and(a; x, y) = 3a + xy - 2a(x + y)

which is 0 exactly when ``a = x AND y`` and >= 1 otherwise. Scaling the
penalty above the monomial's coefficient magnitude guarantees the reduced
QUBO's minima coincide with the HUBO's.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

import numpy as np

from repro.qubo.model import QuboModel

__all__ = ["HuboModel", "quadratize", "and_penalty_terms"]

Monomial = FrozenSet[int]


class HuboModel:
    """A pseudo-boolean polynomial: ``E(x) = Σ_m c_m Π_{i∈m} x_i + offset``.

    Variables are integers ``0..n-1``; each monomial is a set of variable
    indices (the empty set folds into the offset). Because ``x² = x`` for
    binary variables, monomials never repeat a variable.
    """

    def __init__(self, num_variables: int, offset: float = 0.0) -> None:
        if num_variables < 0:
            raise ValueError(f"num_variables must be >= 0, got {num_variables}")
        self._n = int(num_variables)
        self._terms: Dict[Monomial, float] = {}
        self.offset = float(offset)

    @property
    def num_variables(self) -> int:
        return self._n

    @property
    def degree(self) -> int:
        """Largest monomial size (0 for a constant model)."""
        return max((len(m) for m in self._terms), default=0)

    def add_term(self, variables, coefficient: float) -> None:
        """Accumulate ``coefficient * Π x_i`` onto the polynomial."""
        monomial = frozenset(int(v) for v in variables)
        for v in monomial:
            if not (0 <= v < self._n):
                raise IndexError(f"variable {v} out of range [0, {self._n})")
        if not monomial:
            self.offset += float(coefficient)
            return
        new = self._terms.get(monomial, 0.0) + float(coefficient)
        if new == 0.0:
            self._terms.pop(monomial, None)
        else:
            self._terms[monomial] = new

    def terms(self) -> Dict[Monomial, float]:
        """A copy of the nonzero monomials."""
        return dict(self._terms)

    def energy(self, state: np.ndarray) -> float:
        """Evaluate the polynomial at one binary state."""
        state = np.asarray(state)
        if state.shape != (self._n,):
            raise ValueError(f"state shape {state.shape} != ({self._n},)")
        total = self.offset
        for monomial, coefficient in self._terms.items():
            product = 1
            for v in monomial:
                product *= int(state[v])
                if not product:
                    break
            total += coefficient * product
        return float(total)

    def energies(self, states: np.ndarray) -> np.ndarray:
        """Vectorized evaluation for a batch of states."""
        states = np.atleast_2d(np.asarray(states)).astype(np.float64)
        out = np.full(states.shape[0], self.offset, dtype=np.float64)
        for monomial, coefficient in self._terms.items():
            idx = sorted(monomial)
            out += coefficient * states[:, idx].prod(axis=1)
        return out

    def __repr__(self) -> str:
        return (
            f"HuboModel({self._n} variables, {len(self._terms)} terms, "
            f"degree {self.degree})"
        )


def and_penalty_terms(
    aux: int, x: int, y: int, strength: float
) -> List[Tuple[Tuple[int, int], float]]:
    """Rosenberg AND-gadget entries: ``strength * (3a + xy - 2ax - 2ay)``."""
    return [
        ((aux, aux), 3.0 * strength),
        ((min(x, y), max(x, y)), strength),
        ((min(aux, x), max(aux, x)), -2.0 * strength),
        ((min(aux, y), max(aux, y)), -2.0 * strength),
    ]


def quadratize(
    hubo: HuboModel, penalty: Optional[float] = None
) -> Tuple[QuboModel, Dict[Tuple[int, int], int]]:
    """Reduce a HUBO to an equivalent QUBO with auxiliary variables.

    Pairs of variables inside high-degree monomials are replaced by
    auxiliary AND variables (most-frequent pair first, so shared pairs are
    reduced once), each enforced by the Rosenberg penalty at strength
    ``penalty`` (default: ``1 + 2 * Σ|c_m|``, which dominates any energy
    the objective could recover by violating a gadget).

    Returns ``(qubo, aux_map)`` where ``aux_map[(i, j)]`` is the auxiliary
    variable representing ``x_i AND x_j`` (indices refer to the *reduced*
    model's variable space, which extends the original's).

    For every minimizer of the returned QUBO the auxiliary variables equal
    the ANDs of their parents, and restricting to the first
    ``hubo.num_variables`` coordinates yields exactly the HUBO's minima.
    """
    if penalty is not None and penalty <= 0:
        raise ValueError(f"penalty must be positive, got {penalty}")
    terms = {frozenset(m): c for m, c in hubo.terms().items()}
    if penalty is None:
        penalty = 1.0 + 2.0 * sum(abs(c) for c in terms.values())

    next_var = hubo.num_variables
    aux_map: Dict[Tuple[int, int], int] = {}
    gadgets: List[Tuple[int, int, int]] = []  # (aux, x, y)

    # Iteratively collapse the most frequent pair among high-degree terms.
    while any(len(m) > 2 for m in terms):
        pair_counts: Dict[Tuple[int, int], int] = {}
        for monomial in terms:
            if len(monomial) <= 2:
                continue
            ordered = sorted(monomial)
            for a in range(len(ordered)):
                for b in range(a + 1, len(ordered)):
                    key = (ordered[a], ordered[b])
                    pair_counts[key] = pair_counts.get(key, 0) + 1
        pair = max(pair_counts, key=lambda k: (pair_counts[k], -k[0], -k[1]))
        if pair in aux_map:
            aux = aux_map[pair]
        else:
            aux = next_var
            next_var += 1
            aux_map[pair] = aux
            gadgets.append((aux, pair[0], pair[1]))
        replaced: Dict[Monomial, float] = {}
        for monomial, coefficient in terms.items():
            if len(monomial) > 2 and pair[0] in monomial and pair[1] in monomial:
                monomial = (monomial - {pair[0], pair[1]}) | {aux}
            replaced[monomial] = replaced.get(monomial, 0.0) + coefficient
        terms = {m: c for m, c in replaced.items() if c != 0.0}

    qubo = QuboModel(next_var, offset=hubo.offset)
    for monomial, coefficient in terms.items():
        ordered = sorted(monomial)
        if len(ordered) == 1:
            qubo.add_linear(ordered[0], coefficient)
        else:
            qubo.add_quadratic(ordered[0], ordered[1], coefficient)
    for aux, x, y in gadgets:
        for (i, j), value in and_penalty_terms(aux, x, y, penalty):
            if i == j:
                qubo.add_linear(i, value)
            else:
                qubo.add_quadratic(i, j, value)
    return qubo, aux_map
