"""Sparse (CSR) QUBO kernels.

The paper's §4 formulations are *bit-local*: a length-*n* string becomes
``7 n`` binary variables whose couplings are diagonal ±A patterns, mirrored
palindrome pairs, or small one-hot indicator cliques. The resulting QUBOs
have O(n) nonzeros, yet the dense sampler form (``split_diagonal(to_dense())``)
pays O(n²) memory and O(R·n²) work per solve. This module provides the
sparse execution path:

* :class:`CsrMatrix` — a lightweight, picklable CSR container for the
  symmetric zero-diagonal coupling matrix ``W`` (the same object every
  incremental-field kernel consumes);
* :func:`sparse_sampler_form` — build ``(diagonal, CsrMatrix)`` straight
  from the ``i <= j`` coefficient dict, never materializing ``n × n``;
* :func:`qubo_energies_csr` — batched energies in ``O(R · nnz)``;
* :func:`sparse_stats` / :func:`coupling_density` — density diagnostics
  driving the ``mode="auto"`` selection in
  :meth:`repro.qubo.model.QuboModel.sampler_form`.

Exactness contract
------------------
For models whose coefficients and partial sums are exactly representable
(every §4 string formulation with integer A — the paper fixes A = 1), the
sparse kernels are **bit-identical** to the dense ones at a fixed seed: the
same flips are proposed in the same order, the local fields take the same
float64 values, and the returned sample sets compare equal array-for-array.
For arbitrary float coefficients the two paths agree up to floating-point
associativity (≤ 1e-9 in practice; see the property tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.qubo.matrix import to_upper_triangular

__all__ = [
    "SPARSE_DENSITY_THRESHOLD",
    "SPARSE_MIN_VARIABLES",
    "CsrMatrix",
    "SparseStats",
    "coupling_density",
    "csr_from_coefficients",
    "has_any_coupling",
    "initial_local_fields",
    "prefers_sparse",
    "qubo_energies_csr",
    "sparse_sampler_form",
    "sparse_stats",
]

PairDict = Mapping[Tuple[int, int], float]

#: Auto-select the sparse path when the symmetric off-diagonal density is at
#: most this fraction of the full ``n (n-1)`` coupling slots. String QUBOs
#: sit far below it (a length-64 palindrome is ~0.2% dense); random dense
#: test models sit far above.
SPARSE_DENSITY_THRESHOLD = 0.1

#: ... and when the model has at least this many variables. Below this the
#: dense kernels are at worst a few microseconds slower and the dense form
#: keeps the historical, maximally-simple code path.
SPARSE_MIN_VARIABLES = 64


class CsrMatrix:
    """A read-only CSR matrix: ``(indptr, indices, data)`` over ``shape``.

    Used for the symmetric zero-diagonal coupling matrix ``W`` consumed by
    the annealing kernels. The three arrays are the classic CSR triplet —
    row *i* owns ``indices[indptr[i]:indptr[i+1]]`` / the matching ``data``
    slice — and are frozen (``writeable=False``) because the matrix is
    shared through the model's sampler-form cache.

    A SciPy view is built lazily for matrix products and row-block slicing
    and is **not** pickled: worker payloads ship only the triplet.
    """

    __slots__ = ("indptr", "indices", "data", "shape", "_scipy_cache")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.indptr.ndim != 1 or self.indptr.size != self.shape[0] + 1:
            raise ValueError(
                f"indptr must have length {self.shape[0] + 1}, "
                f"got {self.indptr.size}"
            )
        if self.indices.shape != self.data.shape or self.indices.ndim != 1:
            raise ValueError("indices and data must be matching 1-d arrays")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr does not span the index array")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ValueError("column index out of range")
        for arr in (self.indptr, self.indices, self.data):
            arr.setflags(write=False)
        self._scipy_cache = None

    # -------------------------------------------------------------- #
    # basic properties
    # -------------------------------------------------------------- #

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        """Payload size of the CSR triplet in bytes."""
        return int(self.indptr.nbytes + self.indices.nbytes + self.data.nbytes)

    @property
    def density(self) -> float:
        """Stored-entry fraction of the full ``rows × cols`` matrix."""
        slots = self.shape[0] * self.shape[1]
        return self.nnz / slots if slots else 0.0

    def __repr__(self) -> str:
        return (
            f"CsrMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CsrMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )

    # -------------------------------------------------------------- #
    # pickling — ship the triplet, never the SciPy view
    # -------------------------------------------------------------- #

    def __reduce__(self):
        return (CsrMatrix, (self.indptr, self.indices, self.data, self.shape))

    # -------------------------------------------------------------- #
    # row access
    # -------------------------------------------------------------- #

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(columns, values)`` views of row *i* — the rank-1 update slice."""
        start, stop = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:stop], self.data[start:stop]

    def rows(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """All ``(columns, values)`` row views, precomputed for sweep loops."""
        return [self.row(i) for i in range(self.shape[0])]

    def row_block(self, rows: Union[Sequence[int], np.ndarray]):
        """SciPy CSR submatrix of the given rows (colored batched updates)."""
        return self._as_scipy()[np.asarray(rows, dtype=np.int64), :]

    # -------------------------------------------------------------- #
    # numeric kernels
    # -------------------------------------------------------------- #

    def _as_scipy(self):
        if self._scipy_cache is None:
            import scipy.sparse as sp

            self._scipy_cache = sp.csr_array(
                (self.data, self.indices, self.indptr), shape=self.shape
            )
        return self._scipy_cache

    def matmul_dense(self, x: np.ndarray) -> np.ndarray:
        """``x @ W`` for a dense batch ``x`` of shape ``(R, rows)``."""
        x = np.asarray(x, dtype=np.float64)
        return np.asarray(x @ self._as_scipy())

    def abs_row_sums(self) -> np.ndarray:
        """``sum_j |W[i, j]|`` per row — the schedule heuristic's reach."""
        out = np.zeros(self.shape[0], dtype=np.float64)
        if self.nnz:
            counts = np.diff(self.indptr)
            row_ids = np.repeat(np.arange(self.shape[0], dtype=np.int64), counts)
            np.add.at(out, row_ids, np.abs(self.data))
        return out

    def to_dense(self) -> np.ndarray:
        """Materialize the dense ``(rows, cols)`` matrix (tests/debugging)."""
        out = np.zeros(self.shape, dtype=np.float64)
        if self.nnz:
            counts = np.diff(self.indptr)
            row_ids = np.repeat(np.arange(self.shape[0], dtype=np.int64), counts)
            out[row_ids, self.indices] = self.data
        return out


# ------------------------------------------------------------------ #
# builders
# ------------------------------------------------------------------ #


def _symmetric_csr_from_upper(
    upper: Dict[Tuple[int, int], float], num_variables: int
) -> CsrMatrix:
    """Symmetric zero-diagonal CSR from an already-folded ``i <= j`` dict."""
    n = int(num_variables)
    off = [(i, j, v) for (i, j), v in upper.items() if i != j]
    if not off:
        return CsrMatrix(
            np.zeros(n + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
            (n, n),
        )
    i_arr = np.fromiter((t[0] for t in off), dtype=np.int64, count=len(off))
    j_arr = np.fromiter((t[1] for t in off), dtype=np.int64, count=len(off))
    v_arr = np.fromiter((t[2] for t in off), dtype=np.float64, count=len(off))
    if i_arr.min() < 0 or max(int(i_arr.max()), int(j_arr.max())) >= n:
        raise ValueError(f"coefficient index out of range for {n} variables")
    rows = np.concatenate([i_arr, j_arr])
    cols = np.concatenate([j_arr, i_arr])
    vals = np.concatenate([v_arr, v_arr])
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
    return CsrMatrix(indptr, cols, vals, (n, n))


def csr_from_coefficients(
    coefficients: PairDict, num_variables: int
) -> CsrMatrix:
    """Symmetric zero-diagonal coupling CSR from an ``(i, j) -> value`` dict.

    Any triangle convention is accepted (entries are folded and summed, as
    in :func:`repro.qubo.matrix.to_upper_triangular`); diagonal entries are
    ignored — pair with :func:`sparse_sampler_form` for the full
    ``(diagonal, coupling)`` sampler form.
    """
    return _symmetric_csr_from_upper(
        to_upper_triangular(coefficients), num_variables
    )


def sparse_sampler_form(
    coefficients: PairDict, num_variables: int
) -> Tuple[np.ndarray, CsrMatrix]:
    """``(diagonal, CsrMatrix)`` sampler form straight from the dict.

    The sparse analogue of ``split_diagonal(dense_from_dict(...))`` — same
    semantics, O(nnz) memory instead of O(n²). The diagonal vector is
    frozen because it is shared through the model's cache.
    """
    n = int(num_variables)
    upper = to_upper_triangular(coefficients)
    diag = np.zeros(n, dtype=np.float64)
    for (i, j), value in upper.items():
        if i == j:
            if not 0 <= i < n:
                raise ValueError(
                    f"coefficient index out of range for {n} variables"
                )
            diag[i] = value
    diag.setflags(write=False)
    return diag, _symmetric_csr_from_upper(upper, n)


# ------------------------------------------------------------------ #
# energies
# ------------------------------------------------------------------ #


def qubo_energies_csr(
    states: np.ndarray,
    diagonal: np.ndarray,
    coupling: CsrMatrix,
    offset: float = 0.0,
) -> np.ndarray:
    """Batched energies from the sparse sampler form, in ``O(R · nnz)``.

    ``E(x) = x · d + ½ x^T W x + offset`` with ``W`` the symmetric
    zero-diagonal coupling — numerically identical (exact for integer
    coefficient models) to the dense ``x^T Q x + offset``.
    """
    x = np.asarray(states, dtype=np.float64)
    diagonal = np.asarray(diagonal, dtype=np.float64)
    single = x.ndim == 1
    if single:
        x = x[None, :]
    if x.shape[1] != diagonal.shape[0] or x.shape[1] != coupling.shape[0]:
        raise ValueError(
            f"state width {x.shape[1]} does not match model size "
            f"{diagonal.shape[0]}"
        )
    energies = x @ diagonal
    if coupling.nnz:
        energies = energies + 0.5 * np.einsum(
            "ri,ri->r", coupling.matmul_dense(x), x
        )
    energies = energies + float(offset)
    return energies[0] if single else energies


# ------------------------------------------------------------------ #
# kernel dispatch helpers (shared by the SA / tabu / greedy samplers)
# ------------------------------------------------------------------ #


def has_any_coupling(coupling: Union[np.ndarray, CsrMatrix]) -> bool:
    """Whether the coupling operator has any nonzero entry (either form)."""
    if isinstance(coupling, CsrMatrix):
        return coupling.nnz > 0
    return bool(np.any(coupling))


def initial_local_fields(
    states: np.ndarray, coupling: Union[np.ndarray, CsrMatrix]
) -> np.ndarray:
    """``states @ W`` for a dense or CSR coupling — the field warm start."""
    if isinstance(coupling, CsrMatrix):
        return coupling.matmul_dense(states)
    return states @ coupling


# ------------------------------------------------------------------ #
# density diagnostics & auto-selection
# ------------------------------------------------------------------ #


def coupling_density(coefficients: PairDict, num_variables: int) -> float:
    """Fraction of the ``n (n-1)`` off-diagonal slots that are nonzero.

    Counts both mirror images of each stored ``i < j`` coupling, matching
    the symmetric matrix the samplers actually consume.
    """
    n = int(num_variables)
    if n < 2:
        return 0.0
    nnz = sum(
        1 for (i, j), v in coefficients.items() if i != j and v != 0.0
    )
    return 2.0 * nnz / (n * (n - 1))


def prefers_sparse(num_variables: int, density: float) -> bool:
    """The ``mode="auto"`` heuristic: big enough *and* sparse enough."""
    return (
        num_variables >= SPARSE_MIN_VARIABLES
        and density <= SPARSE_DENSITY_THRESHOLD
    )


@dataclass(frozen=True)
class SparseStats:
    """Density diagnostics for one QUBO coefficient dict."""

    num_variables: int
    diagonal_nnz: int
    coupling_nnz: int  # stored symmetric entries (2 per i<j pair)
    density: float  # off-diagonal density in [0, 1]
    max_degree: int
    dense_nbytes: int  # (n, n) float64 coupling + (n,) diagonal
    sparse_nbytes: int  # CSR triplet + diagonal
    auto_sparse: bool

    @property
    def memory_ratio(self) -> float:
        """Dense-form bytes per sparse-form byte (≥ 1 when sparse wins)."""
        return self.dense_nbytes / max(self.sparse_nbytes, 1)


def sparse_stats(coefficients: PairDict, num_variables: int) -> SparseStats:
    """Compute :class:`SparseStats` for a coefficient dict."""
    n = int(num_variables)
    upper = to_upper_triangular(coefficients)
    diagonal_nnz = sum(1 for (i, j) in upper if i == j)
    degree: Dict[int, int] = {}
    coupling_nnz = 0
    for (i, j) in upper:
        if i != j:
            coupling_nnz += 2
            degree[i] = degree.get(i, 0) + 1
            degree[j] = degree.get(j, 0) + 1
    density = coupling_density(upper, n)
    dense_nbytes = n * n * 8 + n * 8
    sparse_nbytes = (n + 1) * 8 + coupling_nnz * (8 + 8) + n * 8
    return SparseStats(
        num_variables=n,
        diagonal_nnz=diagonal_nnz,
        coupling_nnz=coupling_nnz,
        density=density,
        max_degree=max(degree.values(), default=0),
        dense_nbytes=dense_nbytes,
        sparse_nbytes=sparse_nbytes,
        auto_sparse=prefers_sparse(n, density),
    )
