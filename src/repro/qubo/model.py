"""The index-based QUBO model.

:class:`QuboModel` is the workhorse container produced by every string
formulation in :mod:`repro.core` and consumed by every sampler in
:mod:`repro.anneal`. Variables are the integers ``0 .. num_variables-1``;
labelled models live one level up in
:class:`repro.qubo.bqm.BinaryQuadraticModel`.

Design notes
------------
* Coefficients are stored as an ``i <= j`` dict while the model is being
  built (cheap incremental updates, exact bookkeeping), and materialized into
  dense NumPy arrays on demand. The dense view is cached and invalidated on
  mutation — samplers hit the cached array, builders hit the dict.
* ``set_`` methods overwrite and ``add_`` methods accumulate. The paper's
  substring-matching formulation (§4.3) depends on the *overwrite* semantics:
  later encodings replace earlier ones.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.qubo.energy import qubo_energies
from repro.qubo.matrix import (
    dense_from_dict,
    dict_from_dense,
    split_diagonal,
    to_upper_triangular,
)

__all__ = ["QuboModel"]


class QuboModel:
    """A QUBO ``E(x) = x^T Q x + offset`` over variables ``0..n-1``.

    Parameters
    ----------
    num_variables:
        Number of binary variables; fixed at construction.
    coefficients:
        Optional initial ``(i, j) -> value`` mapping (any triangle
        convention; folded to ``i <= j``).
    offset:
        Constant energy offset.
    """

    __slots__ = ("_n", "_coeffs", "_offset", "_dense_cache")

    def __init__(
        self,
        num_variables: int,
        coefficients: Optional[Mapping[Tuple[int, int], float]] = None,
        offset: float = 0.0,
    ) -> None:
        if num_variables < 0:
            raise ValueError(f"num_variables must be non-negative, got {num_variables}")
        self._n = int(num_variables)
        self._coeffs: Dict[Tuple[int, int], float] = {}
        self._offset = float(offset)
        self._dense_cache: Optional[np.ndarray] = None
        if coefficients:
            for (i, j), value in to_upper_triangular(coefficients).items():
                self._check_index(i)
                self._check_index(j)
                self._coeffs[(i, j)] = value

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def num_variables(self) -> int:
        """Number of binary variables."""
        return self._n

    @property
    def offset(self) -> float:
        """Constant energy offset."""
        return self._offset

    @offset.setter
    def offset(self, value: float) -> None:
        self._offset = float(value)

    @property
    def num_interactions(self) -> int:
        """Number of nonzero off-diagonal couplings."""
        return sum(1 for (i, j) in self._coeffs if i != j)

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return (
            f"QuboModel(num_variables={self._n}, "
            f"nnz={len(self._coeffs)}, offset={self._offset})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuboModel):
            return NotImplemented
        return (
            self._n == other._n
            and self._offset == other._offset
            and self._nonzero() == other._nonzero()
        )

    def _nonzero(self) -> Dict[Tuple[int, int], float]:
        return {k: v for k, v in self._coeffs.items() if v != 0.0}

    # ------------------------------------------------------------------ #
    # coefficient access
    # ------------------------------------------------------------------ #

    def _check_index(self, i: int) -> None:
        if not (0 <= i < self._n):
            raise IndexError(f"variable {i} out of range [0, {self._n})")

    @staticmethod
    def _key(i: int, j: int) -> Tuple[int, int]:
        return (i, j) if i <= j else (j, i)

    def get(self, i: int, j: Optional[int] = None) -> float:
        """Coefficient of ``x_i x_j`` (or the linear/diagonal term if j is None)."""
        if j is None:
            j = i
        self._check_index(i)
        self._check_index(j)
        return self._coeffs.get(self._key(i, j), 0.0)

    def set_linear(self, i: int, value: float) -> None:
        """Overwrite the diagonal entry ``Q[i, i]``."""
        self._check_index(i)
        self._coeffs[(i, i)] = float(value)
        self._dense_cache = None

    def add_linear(self, i: int, value: float) -> None:
        """Accumulate into the diagonal entry ``Q[i, i]``."""
        self._check_index(i)
        key = (i, i)
        self._coeffs[key] = self._coeffs.get(key, 0.0) + float(value)
        self._dense_cache = None

    def set_quadratic(self, i: int, j: int, value: float) -> None:
        """Overwrite the coupling ``Q[min(i,j), max(i,j)]``."""
        if i == j:
            raise ValueError("use set_linear for diagonal entries")
        self._check_index(i)
        self._check_index(j)
        self._coeffs[self._key(i, j)] = float(value)
        self._dense_cache = None

    def add_quadratic(self, i: int, j: int, value: float) -> None:
        """Accumulate into the coupling ``Q[min(i,j), max(i,j)]``."""
        if i == j:
            raise ValueError("use add_linear for diagonal entries")
        self._check_index(i)
        self._check_index(j)
        key = self._key(i, j)
        self._coeffs[key] = self._coeffs.get(key, 0.0) + float(value)
        self._dense_cache = None

    def iter_coefficients(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(i, j, value)`` for every stored nonzero, ``i <= j``."""
        for (i, j), value in self._coeffs.items():
            if value != 0.0:
                yield i, j, value

    def linear_vector(self) -> np.ndarray:
        """The diagonal as an ``(n,)`` float64 vector."""
        d = np.zeros(self._n, dtype=np.float64)
        for (i, j), value in self._coeffs.items():
            if i == j:
                d[i] = value
        return d

    # ------------------------------------------------------------------ #
    # matrix views
    # ------------------------------------------------------------------ #

    def to_dense(self) -> np.ndarray:
        """Dense upper-triangular ``(n, n)`` matrix (cached; do not mutate)."""
        if self._dense_cache is None:
            self._dense_cache = dense_from_dict(self._coeffs, self._n)
        return self._dense_cache

    def to_dict(self) -> Dict[Tuple[int, int], float]:
        """A copy of the ``i <= j`` coefficient dict (zeros dropped)."""
        return self._nonzero()

    def sampler_form(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(diagonal, symmetric off-diagonal)`` arrays for SA kernels."""
        return split_diagonal(self.to_dense())

    @classmethod
    def from_dense(cls, q: np.ndarray, offset: float = 0.0) -> "QuboModel":
        """Build a model from any square matrix (triangles are folded)."""
        q = np.asarray(q, dtype=np.float64)
        model = cls(q.shape[0], offset=offset)
        model._coeffs = dict_from_dense(q)
        return model

    def copy(self) -> "QuboModel":
        """An independent deep copy."""
        clone = QuboModel(self._n, offset=self._offset)
        clone._coeffs = dict(self._coeffs)
        return clone

    # ------------------------------------------------------------------ #
    # semantics
    # ------------------------------------------------------------------ #

    def energy(self, state: np.ndarray) -> float:
        """Energy of a single state in {0,1}^n."""
        return float(self.energies(np.asarray(state)))

    def energies(self, states: np.ndarray) -> np.ndarray:
        """Vectorized energies for a batch of states (shape ``(R, n)``)."""
        return qubo_energies(states, self.to_dense(), self._offset)

    def interaction_graph(self):
        """The coupling graph as a :class:`networkx.Graph` (nodes 0..n-1)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(
            (i, j) for (i, j), v in self._coeffs.items() if i != j and v != 0.0
        )
        return g

    def max_abs_coefficient(self) -> float:
        """Largest absolute coefficient (0.0 for the empty model)."""
        values = [abs(v) for v in self._coeffs.values()]
        return max(values) if values else 0.0
