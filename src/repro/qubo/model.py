"""The index-based QUBO model.

:class:`QuboModel` is the workhorse container produced by every string
formulation in :mod:`repro.core` and consumed by every sampler in
:mod:`repro.anneal`. Variables are the integers ``0 .. num_variables-1``;
labelled models live one level up in
:class:`repro.qubo.bqm.BinaryQuadraticModel`.

Design notes
------------
* Coefficients are stored as an ``i <= j`` dict while the model is being
  built (cheap incremental updates, exact bookkeeping), and materialized into
  dense NumPy arrays *or* a CSR sampler form on demand. Both views are
  cached and invalidated on mutation — samplers hit the cached arrays,
  builders hit the dict. Cached matrix views are **read-only**: mutating a
  returned array would silently corrupt every later energy evaluation, so
  callers that need a scratch matrix must copy.
* ``sampler_form(mode="auto")`` picks the CSR path for large, sparse models
  (every §4 string QUBO at useful lengths) and the dense path otherwise;
  the two paths are bit-identical at a fixed seed for integer-coefficient
  models (see :mod:`repro.qubo.sparse`).
* ``set_`` methods overwrite and ``add_`` methods accumulate. The paper's
  substring-matching formulation (§4.3) depends on the *overwrite* semantics:
  later encodings replace earlier ones.
* Pickling ships only ``(n, coefficients, offset)`` — never a dense matrix —
  so worker payloads in :mod:`repro.anneal.parallel` and
  :mod:`repro.service.batch` stay proportional to the number of nonzeros.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional, Tuple, Union

import numpy as np

from repro.qubo.energy import qubo_energies
from repro.qubo.matrix import (
    dense_from_dict,
    dict_from_dense,
    split_diagonal,
    to_upper_triangular,
)
from repro.qubo.sparse import (
    CsrMatrix,
    coupling_density,
    prefers_sparse,
    qubo_energies_csr,
    sparse_sampler_form,
)

__all__ = ["QuboModel"]


class QuboModel:
    """A QUBO ``E(x) = x^T Q x + offset`` over variables ``0..n-1``.

    Parameters
    ----------
    num_variables:
        Number of binary variables; fixed at construction.
    coefficients:
        Optional initial ``(i, j) -> value`` mapping (any triangle
        convention; folded to ``i <= j``).
    offset:
        Constant energy offset.
    """

    __slots__ = (
        "_n",
        "_coeffs",
        "_offset",
        "_dense_cache",
        "_sparse_cache",
        "_density_cache",
    )

    def __init__(
        self,
        num_variables: int,
        coefficients: Optional[Mapping[Tuple[int, int], float]] = None,
        offset: float = 0.0,
    ) -> None:
        if num_variables < 0:
            raise ValueError(f"num_variables must be non-negative, got {num_variables}")
        self._n = int(num_variables)
        self._coeffs: Dict[Tuple[int, int], float] = {}
        self._offset = float(offset)
        self._dense_cache: Optional[np.ndarray] = None
        self._sparse_cache: Optional[Tuple[np.ndarray, CsrMatrix]] = None
        self._density_cache: Optional[float] = None
        if coefficients:
            for (i, j), value in to_upper_triangular(coefficients).items():
                self._check_index(i)
                self._check_index(j)
                self._coeffs[(i, j)] = value

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def num_variables(self) -> int:
        """Number of binary variables."""
        return self._n

    @property
    def offset(self) -> float:
        """Constant energy offset."""
        return self._offset

    @offset.setter
    def offset(self, value: float) -> None:
        self._offset = float(value)

    @property
    def num_interactions(self) -> int:
        """Number of nonzero off-diagonal couplings."""
        return sum(1 for (i, j) in self._coeffs if i != j)

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return (
            f"QuboModel(num_variables={self._n}, "
            f"nnz={len(self._coeffs)}, offset={self._offset})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuboModel):
            return NotImplemented
        return (
            self._n == other._n
            and self._offset == other._offset
            and self._nonzero() == other._nonzero()
        )

    def _nonzero(self) -> Dict[Tuple[int, int], float]:
        return {k: v for k, v in self._coeffs.items() if v != 0.0}

    def _invalidate(self) -> None:
        """Drop cached matrix views after a coefficient mutation."""
        self._dense_cache = None
        self._sparse_cache = None
        self._density_cache = None

    # ------------------------------------------------------------------ #
    # pickling — ship coefficients, never cached matrices
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> Dict[str, Any]:
        return {"n": self._n, "coeffs": self._coeffs, "offset": self._offset}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._n = state["n"]
        self._coeffs = state["coeffs"]
        self._offset = state["offset"]
        self._dense_cache = None
        self._sparse_cache = None
        self._density_cache = None

    # ------------------------------------------------------------------ #
    # coefficient access
    # ------------------------------------------------------------------ #

    def _check_index(self, i: int) -> None:
        if not (0 <= i < self._n):
            raise IndexError(f"variable {i} out of range [0, {self._n})")

    @staticmethod
    def _key(i: int, j: int) -> Tuple[int, int]:
        return (i, j) if i <= j else (j, i)

    def get(self, i: int, j: Optional[int] = None) -> float:
        """Coefficient of ``x_i x_j`` (or the linear/diagonal term if j is None)."""
        if j is None:
            j = i
        self._check_index(i)
        self._check_index(j)
        return self._coeffs.get(self._key(i, j), 0.0)

    def set_linear(self, i: int, value: float) -> None:
        """Overwrite the diagonal entry ``Q[i, i]``."""
        self._check_index(i)
        self._coeffs[(i, i)] = float(value)
        self._invalidate()

    def add_linear(self, i: int, value: float) -> None:
        """Accumulate into the diagonal entry ``Q[i, i]``."""
        self._check_index(i)
        key = (i, i)
        self._coeffs[key] = self._coeffs.get(key, 0.0) + float(value)
        self._invalidate()

    def set_quadratic(self, i: int, j: int, value: float) -> None:
        """Overwrite the coupling ``Q[min(i,j), max(i,j)]``."""
        if i == j:
            raise ValueError("use set_linear for diagonal entries")
        self._check_index(i)
        self._check_index(j)
        self._coeffs[self._key(i, j)] = float(value)
        self._invalidate()

    def add_quadratic(self, i: int, j: int, value: float) -> None:
        """Accumulate into the coupling ``Q[min(i,j), max(i,j)]``."""
        if i == j:
            raise ValueError("use add_linear for diagonal entries")
        self._check_index(i)
        self._check_index(j)
        key = self._key(i, j)
        self._coeffs[key] = self._coeffs.get(key, 0.0) + float(value)
        self._invalidate()

    def iter_coefficients(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(i, j, value)`` for every stored nonzero, ``i <= j``."""
        for (i, j), value in self._coeffs.items():
            if value != 0.0:
                yield i, j, value

    def linear_vector(self) -> np.ndarray:
        """The diagonal as an ``(n,)`` float64 vector."""
        d = np.zeros(self._n, dtype=np.float64)
        for (i, j), value in self._coeffs.items():
            if i == j:
                d[i] = value
        return d

    # ------------------------------------------------------------------ #
    # matrix views
    # ------------------------------------------------------------------ #

    def to_dense(self) -> np.ndarray:
        """Dense upper-triangular ``(n, n)`` matrix (cached and read-only).

        The returned array is the cache itself, marked non-writable:
        mutating it in place would silently corrupt the model and every
        later energy evaluation, so NumPy now raises instead. Copy first
        if you need a scratch matrix.
        """
        if self._dense_cache is None:
            dense = dense_from_dict(self._coeffs, self._n)
            dense.setflags(write=False)
            self._dense_cache = dense
        return self._dense_cache

    def to_dict(self) -> Dict[Tuple[int, int], float]:
        """A copy of the ``i <= j`` coefficient dict (zeros dropped)."""
        return self._nonzero()

    def coupling_density(self) -> float:
        """Nonzero fraction of the symmetric off-diagonal coupling slots."""
        if self._density_cache is None:
            self._density_cache = coupling_density(self._coeffs, self._n)
        return self._density_cache

    def prefers_sparse(self) -> bool:
        """Whether ``sampler_form(mode="auto")`` selects the CSR path."""
        return prefers_sparse(self._n, self.coupling_density())

    def sampler_form(
        self, mode: str = "auto"
    ) -> Tuple[np.ndarray, Union[np.ndarray, CsrMatrix]]:
        """``(diagonal, symmetric off-diagonal)`` operators for SA kernels.

        Parameters
        ----------
        mode:
            ``"auto"`` (default) returns the CSR form when the model is
            large and sparse (``prefers_sparse()``, the regime of every §4
            string QUBO) and the dense form otherwise; ``"dense"`` /
            ``"sparse"`` force one path. The sparse coupling is a
            :class:`~repro.qubo.sparse.CsrMatrix`; both paths produce
            bit-identical sampler results at a fixed seed for
            integer-coefficient models.
        """
        if mode not in ("auto", "dense", "sparse"):
            raise ValueError(
                f"mode must be 'auto', 'dense' or 'sparse', got {mode!r}"
            )
        if mode == "sparse" or (mode == "auto" and self.prefers_sparse()):
            return self._sparse_form()
        return split_diagonal(self.to_dense())

    def _sparse_form(self) -> Tuple[np.ndarray, CsrMatrix]:
        """The cached ``(diagonal, CsrMatrix)`` form (arrays read-only)."""
        if self._sparse_cache is None:
            self._sparse_cache = sparse_sampler_form(self._coeffs, self._n)
        return self._sparse_cache

    @classmethod
    def from_dense(cls, q: np.ndarray, offset: float = 0.0) -> "QuboModel":
        """Build a model from any square matrix (triangles are folded)."""
        q = np.asarray(q, dtype=np.float64)
        model = cls(q.shape[0], offset=offset)
        model._coeffs = dict_from_dense(q)
        return model

    def copy(self) -> "QuboModel":
        """An independent deep copy."""
        clone = QuboModel(self._n, offset=self._offset)
        clone._coeffs = dict(self._coeffs)
        return clone

    # ------------------------------------------------------------------ #
    # semantics
    # ------------------------------------------------------------------ #

    def energy(self, state: np.ndarray) -> float:
        """Energy of a single state in {0,1}^n."""
        return float(self.energies(np.asarray(state)))

    def energies(self, states: np.ndarray) -> np.ndarray:
        """Vectorized energies for a batch of states (shape ``(R, n)``).

        Follows the same auto-selection as :meth:`sampler_form`: sparse
        models are scored through the ``O(R · nnz)`` CSR kernel, dense
        ones through the ``O(R · n²)`` einsum kernel. Both agree exactly
        on integer-coefficient models and to ~1e-9 otherwise.
        """
        if self.prefers_sparse():
            diag, coupling = self._sparse_form()
            return qubo_energies_csr(states, diag, coupling, self._offset)
        return qubo_energies(states, self.to_dense(), self._offset)

    def interaction_graph(self):
        """The coupling graph as a :class:`networkx.Graph` (nodes 0..n-1)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(
            (i, j) for (i, j), v in self._coeffs.items() if i != j and v != 0.0
        )
        return g

    def max_abs_coefficient(self) -> float:
        """Largest absolute coefficient (0.0 for the empty model)."""
        values = [abs(v) for v in self._coeffs.values()]
        return max(values) if values else 0.0
