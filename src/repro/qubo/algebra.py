"""Model composition: the algebra of QUBOs.

Conjunction of soft constraints is addition of their objectives; these
helpers implement the operations the SMT compiler and the composites layer
need: add, scale, relabel, and fix (partial-assign) variables.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.qubo.model import QuboModel

__all__ = [
    "add_models",
    "scale_model",
    "relabel_variables",
    "fix_variables",
    "expand_states",
]


def add_models(a: QuboModel, b: QuboModel) -> QuboModel:
    """Sum of two QUBOs over the same variable set.

    The result's energy is ``E_a(x) + E_b(x)`` for every state ``x``. Models
    must have the same number of variables; use :func:`relabel_variables`
    first to align differently-indexed models.
    """
    if a.num_variables != b.num_variables:
        raise ValueError(
            f"cannot add models with {a.num_variables} and "
            f"{b.num_variables} variables; relabel onto a common index space first"
        )
    out = a.copy()
    out.offset = a.offset + b.offset
    for i, j, value in b.iter_coefficients():
        if i == j:
            out.add_linear(i, value)
        else:
            out.add_quadratic(i, j, value)
    return out


def scale_model(model: QuboModel, factor: float) -> QuboModel:
    """Multiply every coefficient and the offset by *factor*.

    Scaling by a positive factor preserves the argmin; by a negative factor
    it flips minimization into maximization (rarely what you want — a
    ``ValueError`` guards against an accidental sign flip; pass
    ``allow_negative=True``-style semantics by scaling twice if truly
    needed).
    """
    if factor < 0:
        raise ValueError(
            "negative scale factor would flip minimization into maximization"
        )
    out = QuboModel(model.num_variables, offset=model.offset * factor)
    for i, j, value in model.iter_coefficients():
        if i == j:
            out.set_linear(i, value * factor)
        else:
            out.set_quadratic(i, j, value * factor)
    return out


def relabel_variables(
    model: QuboModel, mapping: Mapping[int, int], num_variables: int
) -> QuboModel:
    """Re-index a model's variables into a (possibly larger) index space.

    Parameters
    ----------
    mapping:
        Injective old-index → new-index map; every variable of *model* must
        be present.
    num_variables:
        Size of the target index space.
    """
    targets = set()
    for old in range(model.num_variables):
        if old not in mapping:
            raise KeyError(f"mapping is missing variable {old}")
        new = mapping[old]
        if not (0 <= new < num_variables):
            raise ValueError(f"target index {new} out of range [0, {num_variables})")
        if new in targets:
            raise ValueError(f"mapping is not injective: {new} used twice")
        targets.add(new)
    out = QuboModel(num_variables, offset=model.offset)
    for i, j, value in model.iter_coefficients():
        ni, nj = mapping[i], mapping[j]
        if ni == nj:
            out.add_linear(ni, value)
        else:
            out.add_quadratic(ni, nj, value)
    return out


def fix_variables(
    model: QuboModel, assignment: Mapping[int, int]
) -> Tuple[QuboModel, Dict[int, int]]:
    """Partially assign variables, producing a reduced model.

    Fixed variables are removed; their contributions fold into the linear
    terms and offset of the survivors. Returns ``(reduced_model,
    new_index_by_old_index)`` for the surviving variables.
    """
    for var, value in assignment.items():
        if not (0 <= var < model.num_variables):
            raise IndexError(f"variable {var} out of range")
        if value not in (0, 1):
            raise ValueError(f"assignment for variable {var} must be 0 or 1")
    survivors = [v for v in range(model.num_variables) if v not in assignment]
    new_index = {old: new for new, old in enumerate(survivors)}
    out = QuboModel(len(survivors), offset=model.offset)
    for i, j, value in model.iter_coefficients():
        fi, fj = i in assignment, j in assignment
        if i == j:
            if fi:
                out.offset += value * assignment[i]
            else:
                out.add_linear(new_index[i], value)
        elif fi and fj:
            out.offset += value * assignment[i] * assignment[j]
        elif fi:
            if assignment[i]:
                out.add_linear(new_index[j], value)
        elif fj:
            if assignment[j]:
                out.add_linear(new_index[i], value)
        else:
            out.add_quadratic(new_index[i], new_index[j], value)
    return out, new_index


def expand_states(
    states, assignment: Mapping[int, int], num_variables: int
):
    """Re-insert fixed variables into reduced sample states.

    The inverse of :func:`fix_variables`'s column removal: given ``(R, m)``
    states over the reduced index space (survivors in ascending original
    order, matching ``fix_variables``'s ``new_index``), returns ``(R, n)``
    states over the original space with every fixed variable's column set
    to its assigned value. Because the fold in :func:`fix_variables` is
    exact, the reduced energies *are* the full-model energies of the
    expanded states.
    """
    import numpy as np

    states = np.atleast_2d(np.asarray(states, dtype=np.int8))
    survivors = [v for v in range(num_variables) if v not in assignment]
    if states.shape[1] != len(survivors):
        raise ValueError(
            f"states have {states.shape[1]} columns but {len(survivors)} "
            f"variables survive the assignment"
        )
    out = np.empty((states.shape[0], num_variables), dtype=np.int8)
    out[:, survivors] = states
    for var, value in assignment.items():
        if not (0 <= var < num_variables):
            raise IndexError(f"variable {var} out of range")
        out[:, var] = value
    return out
