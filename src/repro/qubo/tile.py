"""Block-diagonal batch tiling: fuse K independent QUBOs into one model.

The serving stack queues many *small* string QUBOs (a §4 word is `7 n`
variables), and each one pays its own kernel invocation — schedule
resolution, initial-state draw, sweep loop, energy pass. Hardware annealers
amortize exactly this overhead by *tiling*: placing many independent
embeddings on one chip and annealing them together (the
``DirectEmbeddingComposite`` idea). This module is the software analogue:

* :func:`tile_models` builds a :class:`TiledProblem` from K independent
  :class:`~repro.qubo.model.QuboModel`\\ s. The fused model is the
  block-diagonal direct sum — variable indices shifted by per-block
  offsets, constant offsets summed, couplings composed densely
  (``out[s:e, s:e] = block``) or in CSR form by pure nnz concatenation
  (indptr segments shifted by the running nnz count, indices by the
  block's variable offset).
* :meth:`TiledProblem.split` turns a fused :class:`SampleSet` back into K
  per-block sample sets with per-block energies.
* :meth:`TiledProblem.block_rngs` derives one RNG stream per block, keyed
  by ``(base_seed, block content hash)``.

Batch-invariance contract
-------------------------
Blocks never interact (the fused coupling is exactly block-diagonal), and
every block consumes only its own RNG stream. The stream is seeded by the
block's *content* — ``SeedSequence([base_seed, *sha256(model)])`` — not by
its position in the tile, so a block's result is identical whether it is
solved alone (``sample_model(model, seed=tiled.block_rngs(seed)[k])``) or
fused with arbitrary neighbors, in any order, in any tile size. The fused
kernels in :mod:`repro.anneal` uphold this bit-for-bit for
integer-coefficient models (the PR 2 discipline; see DESIGN.md Appendix G
for the two documented caveats: FP associativity on non-integer models and
equal-energy row order under :meth:`TiledProblem.split`).

Two identical models in one tile hash identically and therefore return
identical results — the batch analogue of solving the same problem twice
at the same seed.
"""

from __future__ import annotations

import hashlib
import struct
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.qubo.model import QuboModel
from repro.qubo.sparse import CsrMatrix, prefers_sparse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (anneal -> qubo)
    from repro.anneal.sampleset import SampleSet

__all__ = ["TiledProblem", "model_content_hash", "tile_models"]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

#: Version tag mixed into every content hash so a future change to the
#: canonical form cannot silently collide with streams from older releases.
_HASH_DOMAIN = b"repro.qubo.tile/content-hash/v1"


def model_content_hash(model: QuboModel) -> str:
    """SHA-256 hex digest of a model's semantic content.

    Canonical form: ``(n, offset, sorted nonzero upper-triangular
    coefficients)`` packed as little-endian int64/float64 — two models
    compare equal under :meth:`QuboModel.__eq__` iff they hash equally
    (modulo ±0.0 and NaN payloads, which no formulation produces).
    """
    h = hashlib.sha256()
    h.update(_HASH_DOMAIN)
    h.update(struct.pack("<qd", model.num_variables, model.offset))
    for i, j, value in sorted(model.iter_coefficients()):
        h.update(struct.pack("<qqd", i, j, value))
    return h.hexdigest()


def _hash_words(hex_digest: str) -> Tuple[int, ...]:
    """The digest as eight 32-bit words — ``SeedSequence`` entropy."""
    return tuple(int(hex_digest[k : k + 8], 16) for k in range(0, 64, 8))


def _resolve_base_entropy(seed: SeedLike) -> int:
    """Collapse a SeedLike into one non-negative base integer.

    ``None`` draws fresh OS entropy (one draw per batch, shared by all
    blocks); a Generator draws from the caller's stream, matching the
    :func:`repro.utils.rng.spawn_rngs` convention.
    """
    if seed is None:
        return int(np.random.SeedSequence().generate_state(1, np.uint64)[0])
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    if isinstance(seed, np.random.SeedSequence):
        return int(seed.generate_state(1, np.uint64)[0])
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return int(seed)
    raise TypeError(
        f"seed must be None, int, SeedSequence or numpy Generator, got {type(seed)!r}"
    )


class TiledProblem:
    """K independent QUBOs fused into one block-diagonal problem.

    Holds the block layout (``starts[k] : starts[k+1]`` is block *k*'s
    column range in the fused variable space), the per-block content
    hashes that key the batch-invariant RNG streams, and lazy fused views
    (full :class:`QuboModel` and composed sampler forms).
    """

    __slots__ = (
        "models",
        "sizes",
        "starts",
        "block_hashes",
        "_fused_model",
        "_fused_forms",
    )

    def __init__(self, models: Iterable[QuboModel]) -> None:
        self.models: Tuple[QuboModel, ...] = tuple(models)
        for model in self.models:
            if not isinstance(model, QuboModel):
                raise TypeError(
                    f"tile blocks must be QuboModel instances, got {type(model)!r}"
                )
        self.sizes: Tuple[int, ...] = tuple(m.num_variables for m in self.models)
        starts = np.zeros(len(self.models) + 1, dtype=np.int64)
        np.cumsum(self.sizes, out=starts[1:])
        starts.setflags(write=False)
        self.starts = starts
        self.block_hashes: Tuple[str, ...] = tuple(
            model_content_hash(m) for m in self.models
        )
        self._fused_model: Optional[QuboModel] = None
        self._fused_forms: dict = {}

    # -------------------------------------------------------------- #
    # layout
    # -------------------------------------------------------------- #

    @property
    def num_blocks(self) -> int:
        """Number of tiled blocks K."""
        return len(self.models)

    @property
    def num_variables(self) -> int:
        """Total fused variable count ``Σ n_k``."""
        return int(self.starts[-1])

    def block_slice(self, k: int) -> slice:
        """Column range of block *k* in the fused variable space."""
        return slice(int(self.starts[k]), int(self.starts[k + 1]))

    def __len__(self) -> int:
        return len(self.models)

    def __repr__(self) -> str:
        return (
            f"TiledProblem(num_blocks={self.num_blocks}, "
            f"num_variables={self.num_variables})"
        )

    # -------------------------------------------------------------- #
    # fused views
    # -------------------------------------------------------------- #

    @property
    def fused_model(self) -> QuboModel:
        """The block-diagonal direct sum as a full :class:`QuboModel`."""
        if self._fused_model is None:
            coeffs = {}
            offset = 0.0
            for model, start in zip(self.models, self.starts):
                s = int(start)
                offset += model.offset
                for i, j, value in model.iter_coefficients():
                    coeffs[(i + s, j + s)] = value
            self._fused_model = QuboModel(self.num_variables, coeffs, offset)
        return self._fused_model

    def resolve_coupling_mode(self, mode: str = "auto") -> str:
        """Concrete ``"dense"`` / ``"sparse"`` choice for the *fused* form.

        ``"auto"`` applies the same size/density heuristic as
        :meth:`QuboModel.sampler_form`, evaluated on the fused matrix —
        tiling drives density toward zero (cross-block slots are empty),
        so fused solves lean sparse sooner than their blocks would alone.
        """
        if mode not in ("auto", "dense", "sparse"):
            raise ValueError(f"mode must be 'auto', 'dense' or 'sparse', got {mode!r}")
        if mode != "auto":
            return mode
        return "sparse" if prefers_sparse(self.num_variables, self.fused_density()) else "dense"

    def fused_density(self) -> float:
        """Off-diagonal density of the fused coupling matrix."""
        n = self.num_variables
        if n < 2:
            return 0.0
        pairs = sum(
            1
            for model in self.models
            for i, j, _ in model.iter_coefficients()
            if i != j
        )
        return 2.0 * pairs / (n * (n - 1))

    def fused_sampler_form(
        self, mode: str = "auto"
    ) -> Tuple[np.ndarray, Union[np.ndarray, CsrMatrix]]:
        """Composed ``(diagonal, coupling)`` sampler form for the fused model.

        Built from the per-block cached forms, not from the fused
        coefficient dict: the diagonal is a concatenation, the dense
        coupling a block-diagonal fill, and the CSR coupling a pure nnz
        concatenation (per-block indptr segments shifted by the running
        nnz count, column indices by the block's variable offset). Each
        fused CSR row is therefore the *same entries in the same order*
        as the block's own row — the property the bit-identity of fused
        sparse field updates rests on.
        """
        mode = self.resolve_coupling_mode(mode)
        cached = self._fused_forms.get(mode)
        if cached is not None:
            return cached
        n = self.num_variables
        forms = [model.sampler_form(mode=mode) for model in self.models]
        diag = (
            np.concatenate([f[0] for f in forms])
            if forms
            else np.zeros(0, dtype=np.float64)
        )
        diag.setflags(write=False)
        if mode == "sparse":
            indptr = np.zeros(n + 1, dtype=np.int64)
            indices_parts: List[np.ndarray] = []
            data_parts: List[np.ndarray] = []
            nnz = 0
            for (_, coupling), start in zip(forms, self.starts):
                s = int(start)
                indptr[s + 1 : s + coupling.shape[0] + 1] = coupling.indptr[1:] + nnz
                indices_parts.append(coupling.indices + s)
                data_parts.append(coupling.data)
                nnz += coupling.nnz
            indices = (
                np.concatenate(indices_parts)
                if indices_parts
                else np.zeros(0, dtype=np.int64)
            )
            data = (
                np.concatenate(data_parts)
                if data_parts
                else np.zeros(0, dtype=np.float64)
            )
            fused_coupling: Union[np.ndarray, CsrMatrix] = CsrMatrix(
                indptr, indices, data, (n, n)
            )
        else:
            dense = np.zeros((n, n), dtype=np.float64)
            for (_, coupling), start, size in zip(forms, self.starts, self.sizes):
                s = int(start)
                dense[s : s + size, s : s + size] = coupling
            dense.setflags(write=False)
            fused_coupling = dense
        self._fused_forms[mode] = (diag, fused_coupling)
        return diag, fused_coupling

    # -------------------------------------------------------------- #
    # batch-invariant RNG streams
    # -------------------------------------------------------------- #

    def seed_sequences(self, seed: SeedLike = None) -> List[np.random.SeedSequence]:
        """One ``SeedSequence`` per block: ``[base_seed, *sha256(block)]``.

        Content-keyed, not position-keyed: the stream depends only on the
        base seed and the block's own coefficients, never on its
        tile-mates or its index — the root of the batch-invariance
        contract. ``None`` draws one fresh base for the whole batch.
        """
        base = _resolve_base_entropy(seed)
        return [
            np.random.SeedSequence([base, *_hash_words(digest)])
            for digest in self.block_hashes
        ]

    def block_rngs(self, seed: SeedLike = None) -> List[np.random.Generator]:
        """Fresh, independent generators for the per-block streams."""
        return [np.random.default_rng(ss) for ss in self.seed_sequences(seed)]

    # -------------------------------------------------------------- #
    # splitting fused results
    # -------------------------------------------------------------- #

    def split_states(self, states: np.ndarray) -> List[np.ndarray]:
        """Per-block column views of a fused ``(R, Σn)`` state matrix."""
        states = np.asarray(states)
        if states.ndim != 2 or states.shape[1] != self.num_variables:
            raise ValueError(
                f"fused states must have {self.num_variables} columns, "
                f"got shape {states.shape}"
            )
        return [states[:, self.block_slice(k)] for k in range(self.num_blocks)]

    def block_energies(self, k: int, block_states: np.ndarray) -> np.ndarray:
        """Energies of block *k* for already-sliced block states."""
        model = self.models[k]
        if model.num_variables == 0:
            return np.full(block_states.shape[0], model.offset)
        return model.energies(block_states)

    def build_samplesets(
        self,
        states: np.ndarray,
        info: Optional[dict] = None,
        per_block_info: Optional[Sequence[dict]] = None,
    ) -> List["SampleSet"]:
        """Per-block :class:`SampleSet`\\ s from a raw fused state matrix.

        The fused kernels call this with their *pre-sort* state matrix so
        each block's rows enter ``SampleSet``'s stable energy sort in
        original read order — exactly as a solo ``sample_model`` call
        would — keeping equal-energy row order bit-identical to the solo
        solve. (:meth:`split` cannot: it only sees the fused sample set's
        already-sorted rows.)
        """
        from repro.anneal.sampleset import SampleSet

        out: List[SampleSet] = []
        for k, block_states in enumerate(self.split_states(states)):
            block_states = np.ascontiguousarray(block_states)
            merged = {
                **(info or {}),
                **((per_block_info[k] if per_block_info is not None else {}) or {}),
                "tile": {"num_blocks": self.num_blocks, "block": k},
            }
            out.append(
                SampleSet(
                    block_states,
                    self.block_energies(k, block_states),
                    info=merged,
                )
            )
        return out

    def split(self, sampleset: "SampleSet") -> List["SampleSet"]:
        """Split a fused :class:`SampleSet` into K per-block sample sets.

        Each block's energies are recomputed against its own model
        (fused-row energy sums include the tile-mates' contributions and
        offsets, so it cannot be sliced). Note the fused set's rows are
        already energy-sorted *globally*; rows tied on a block's energy
        may therefore appear in a different order than a solo solve of
        that block would produce — prefer :meth:`build_samplesets` (what
        ``sample_tiled`` uses) when bit-level row order matters.
        """
        return self.build_samplesets(sampleset.states, info=dict(sampleset.info))


def tile_models(models: Iterable[QuboModel]) -> TiledProblem:
    """Fuse independent QUBOs into one block-diagonal :class:`TiledProblem`."""
    return TiledProblem(models)
