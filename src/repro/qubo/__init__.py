"""QUBO / binary-quadratic-model substrate.

This subpackage is a from-scratch replacement for the parts of D-Wave's
``dimod`` package that the paper relies on:

* :class:`~repro.qubo.model.QuboModel` — an index-based QUBO over variables
  ``0..n-1``, with dict storage, dense/sparse matrix views, and vectorized
  energy evaluation.
* :class:`~repro.qubo.bqm.BinaryQuadraticModel` — labelled variables, SPIN or
  BINARY vartype, offset tracking, and conversions to/from ``QuboModel``.
* :mod:`~repro.qubo.ising` — exact QUBO ↔ Ising transforms.
* :mod:`~repro.qubo.energy` — batched energy kernels (the hot path shared by
  every sampler).
* :mod:`~repro.qubo.sparse` — CSR sampler form and ``O(R · nnz)`` kernels
  for the bit-local string QUBOs (auto-selected by
  ``QuboModel.sampler_form(mode="auto")``).
* :mod:`~repro.qubo.algebra` — model composition: add, scale, shift, relabel,
  fix variables.
"""

from repro.qubo.vartypes import BINARY, SPIN, Vartype
from repro.qubo.model import QuboModel
from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.ising import ising_to_qubo, qubo_to_ising
from repro.qubo.energy import (
    qubo_energies,
    qubo_energy,
    ising_energies,
    ising_energy,
)
from repro.qubo.algebra import (
    add_models,
    fix_variables,
    relabel_variables,
    scale_model,
)
from repro.qubo.matrix import (
    dense_from_dict,
    dict_from_dense,
    to_symmetric,
    to_upper_triangular,
)
from repro.qubo.sparse import (
    CsrMatrix,
    SparseStats,
    coupling_density,
    csr_from_coefficients,
    prefers_sparse,
    qubo_energies_csr,
    sparse_sampler_form,
    sparse_stats,
)
from repro.qubo.hubo import HuboModel, quadratize
from repro.qubo.serialization import load_model, save_model
from repro.qubo.tile import TiledProblem, model_content_hash, tile_models

__all__ = [
    "BINARY",
    "CsrMatrix",
    "SparseStats",
    "coupling_density",
    "csr_from_coefficients",
    "prefers_sparse",
    "qubo_energies_csr",
    "sparse_sampler_form",
    "sparse_stats",
    "HuboModel",
    "quadratize",
    "load_model",
    "save_model",
    "SPIN",
    "BinaryQuadraticModel",
    "QuboModel",
    "TiledProblem",
    "Vartype",
    "model_content_hash",
    "tile_models",
    "add_models",
    "dense_from_dict",
    "dict_from_dense",
    "fix_variables",
    "ising_energies",
    "ising_energy",
    "ising_to_qubo",
    "qubo_energies",
    "qubo_energy",
    "qubo_to_ising",
    "relabel_variables",
    "scale_model",
    "to_symmetric",
    "to_upper_triangular",
]
