"""Vectorized energy kernels.

These are the hot path shared by every sampler and by solution verification.
Following the NumPy-vectorization idiom, energies are always computed for a
*batch* of states at once (shape ``(R, n)``), never in a Python loop over
reads; the scalar entry points just wrap the batched kernels.
"""

from __future__ import annotations

from typing import Mapping, Tuple

import numpy as np

__all__ = [
    "qubo_energies",
    "qubo_energy",
    "ising_energies",
    "ising_energy",
    "qubo_energies_dict",
]


def qubo_energies(states: np.ndarray, q: np.ndarray, offset: float = 0.0) -> np.ndarray:
    """Energies ``E(x) = x^T Q x + offset`` for a batch of binary states.

    Parameters
    ----------
    states:
        ``(R, n)`` or ``(n,)`` array with entries in {0, 1}.
    q:
        ``(n, n)`` QUBO matrix; any triangle convention is accepted because
        ``x^T Q x`` only depends on ``Q + Q^T``.
    offset:
        Constant added to every energy.

    Returns
    -------
    ``(R,)`` float64 array (or a 0-d array for a single state).
    """
    x = np.asarray(states, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    single = x.ndim == 1
    if single:
        x = x[None, :]
    if x.shape[1] != q.shape[0]:
        raise ValueError(
            f"state width {x.shape[1]} does not match QUBO size {q.shape[0]}"
        )
    # einsum avoids materializing (X @ Q) when R is large relative to n.
    energies = np.einsum("ri,ij,rj->r", x, q, x, optimize=True) + offset
    return energies[0] if single else energies


def qubo_energy(state: np.ndarray, q: np.ndarray, offset: float = 0.0) -> float:
    """Energy of a single binary state (convenience scalar wrapper)."""
    return float(qubo_energies(np.asarray(state), q, offset))


def qubo_energies_dict(
    states: np.ndarray,
    coefficients: Mapping[Tuple[int, int], float],
    offset: float = 0.0,
) -> np.ndarray:
    """Energies straight from dict-of-pairs coefficients.

    Avoids densifying for very sparse models: cost is
    ``O(R * nnz)`` instead of ``O(R * n^2)``.
    """
    x = np.asarray(states, dtype=np.float64)
    single = x.ndim == 1
    if single:
        x = x[None, :]
    energies = np.full(x.shape[0], float(offset), dtype=np.float64)
    for (i, j), value in coefficients.items():
        if i == j:
            energies += value * x[:, i]
        else:
            energies += value * x[:, i] * x[:, j]
    return energies[0] if single else energies


def ising_energies(
    states: np.ndarray,
    h: np.ndarray,
    j: np.ndarray,
    offset: float = 0.0,
) -> np.ndarray:
    """Energies ``E(s) = h·s + s^T J s + offset`` for spin states in {-1,+1}.

    ``J`` may use any triangle convention; only ``J + J^T`` matters and the
    diagonal of ``J`` must be zero (spin variables square to one, so diagonal
    terms are constants and belong in *offset*).
    """
    s = np.asarray(states, dtype=np.float64)
    h = np.asarray(h, dtype=np.float64)
    j = np.asarray(j, dtype=np.float64)
    if np.any(np.diag(j) != 0.0):
        raise ValueError("Ising coupling matrix must have a zero diagonal")
    single = s.ndim == 1
    if single:
        s = s[None, :]
    energies = s @ h + np.einsum("ri,ij,rj->r", s, j, s, optimize=True) + offset
    return energies[0] if single else energies


def ising_energy(
    state: np.ndarray, h: np.ndarray, j: np.ndarray, offset: float = 0.0
) -> float:
    """Energy of a single spin state."""
    return float(ising_energies(np.asarray(state), h, j, offset))
