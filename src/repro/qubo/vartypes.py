"""Variable types for binary quadratic models.

``BINARY`` variables take values in ``{0, 1}`` (the QUBO convention used by
the paper); ``SPIN`` variables take values in ``{-1, +1}`` (the Ising
convention used by annealing hardware). The two are affinely related:
``s = 2 x - 1``.
"""

from __future__ import annotations

import enum
from typing import Union

__all__ = ["Vartype", "BINARY", "SPIN", "as_vartype"]


class Vartype(enum.Enum):
    """Domain of a binary quadratic model's variables."""

    BINARY = "BINARY"
    SPIN = "SPIN"

    @property
    def values(self) -> tuple:
        """The two admissible values, low first."""
        return (0, 1) if self is Vartype.BINARY else (-1, 1)


BINARY = Vartype.BINARY
SPIN = Vartype.SPIN


def as_vartype(vartype: Union[str, Vartype]) -> Vartype:
    """Coerce a string or :class:`Vartype` into a :class:`Vartype`.

    Accepts ``"BINARY"``/``"SPIN"`` case-insensitively.
    """
    if isinstance(vartype, Vartype):
        return vartype
    if isinstance(vartype, str):
        try:
            return Vartype[vartype.upper()]
        except KeyError:
            pass
    raise ValueError(f"unknown vartype: {vartype!r} (expected BINARY or SPIN)")
