"""Labelled binary quadratic models (the ``dimod.BinaryQuadraticModel`` role).

A :class:`BinaryQuadraticModel` (BQM) carries arbitrary hashable variable
labels, a vartype (SPIN or BINARY), linear biases, quadratic couplings, and a
constant offset. The hardware layer (:mod:`repro.hardware`) works with BQMs
because embedded chains need labelled qubits; the string formulations work
with the leaner index-based :class:`~repro.qubo.model.QuboModel` and are
lifted into BQMs when they pass through composites.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.qubo.ising import ising_to_qubo, qubo_to_ising
from repro.qubo.model import QuboModel
from repro.qubo.vartypes import BINARY, SPIN, Vartype, as_vartype

__all__ = ["BinaryQuadraticModel"]

Variable = Hashable


class BinaryQuadraticModel:
    """Labelled quadratic model over SPIN or BINARY variables.

    Parameters
    ----------
    linear:
        ``variable -> bias`` mapping.
    quadratic:
        ``(u, v) -> coupling`` mapping with ``u != v``; symmetric duplicates
        are summed.
    offset:
        Constant energy offset.
    vartype:
        ``"BINARY"`` (values {0,1}) or ``"SPIN"`` (values {-1,+1}).
    """

    def __init__(
        self,
        linear: Optional[Mapping[Variable, float]] = None,
        quadratic: Optional[Mapping[Tuple[Variable, Variable], float]] = None,
        offset: float = 0.0,
        vartype: Union[str, Vartype] = BINARY,
    ) -> None:
        self._vartype = as_vartype(vartype)
        self._linear: Dict[Variable, float] = {}
        self._adj: Dict[Variable, Dict[Variable, float]] = {}
        self._offset = float(offset)
        if linear:
            for v, bias in linear.items():
                self.add_variable(v, bias)
        if quadratic:
            for (u, v), coupling in quadratic.items():
                self.add_interaction(u, v, coupling)

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    @property
    def vartype(self) -> Vartype:
        return self._vartype

    @property
    def offset(self) -> float:
        return self._offset

    @offset.setter
    def offset(self, value: float) -> None:
        self._offset = float(value)

    @property
    def variables(self) -> List[Variable]:
        """Variables in insertion order."""
        return list(self._linear)

    @property
    def num_variables(self) -> int:
        return len(self._linear)

    @property
    def num_interactions(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    @property
    def linear(self) -> Dict[Variable, float]:
        """A copy of the linear biases."""
        return dict(self._linear)

    @property
    def quadratic(self) -> Dict[Tuple[Variable, Variable], float]:
        """A copy of the couplings, one entry per unordered pair."""
        seen = set()
        out: Dict[Tuple[Variable, Variable], float] = {}
        for u, nbrs in self._adj.items():
            for v, coupling in nbrs.items():
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    out[(u, v)] = coupling
        return out

    def __contains__(self, v: Variable) -> bool:
        return v in self._linear

    def __len__(self) -> int:
        return len(self._linear)

    def __repr__(self) -> str:
        return (
            f"BinaryQuadraticModel({self.num_variables} variables, "
            f"{self.num_interactions} interactions, {self._vartype.name})"
        )

    def degree(self, v: Variable) -> int:
        self._check_variable(v)
        return len(self._adj.get(v, ()))

    def adjacency(self, v: Variable) -> Dict[Variable, float]:
        """Neighbours of *v* with their couplings (a copy)."""
        self._check_variable(v)
        return dict(self._adj.get(v, {}))

    def _check_variable(self, v: Variable) -> None:
        if v not in self._linear:
            raise KeyError(f"unknown variable: {v!r}")

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add_variable(self, v: Variable, bias: float = 0.0) -> None:
        """Add *v* (idempotent) and accumulate *bias* onto its linear term."""
        self._linear[v] = self._linear.get(v, 0.0) + float(bias)
        self._adj.setdefault(v, {})

    def set_linear(self, v: Variable, bias: float) -> None:
        """Overwrite the linear bias of *v*, creating it if needed."""
        self._linear[v] = float(bias)
        self._adj.setdefault(v, {})

    def add_interaction(self, u: Variable, v: Variable, coupling: float) -> None:
        """Accumulate *coupling* onto the edge ``{u, v}`` (u ≠ v)."""
        if u == v:
            raise ValueError(f"self-loop on {u!r}; use add_variable for linear terms")
        self.add_variable(u)
        self.add_variable(v)
        new = self._adj[u].get(v, 0.0) + float(coupling)
        self._adj[u][v] = new
        self._adj[v][u] = new

    def get_linear(self, v: Variable) -> float:
        self._check_variable(v)
        return self._linear[v]

    def get_quadratic(self, u: Variable, v: Variable, default: float = 0.0) -> float:
        self._check_variable(u)
        self._check_variable(v)
        return self._adj.get(u, {}).get(v, default)

    def remove_variable(self, v: Variable) -> None:
        """Delete *v* and all incident couplings."""
        self._check_variable(v)
        for u in list(self._adj.get(v, ())):
            del self._adj[u][v]
        self._adj.pop(v, None)
        del self._linear[v]

    def copy(self) -> "BinaryQuadraticModel":
        clone = BinaryQuadraticModel(vartype=self._vartype, offset=self._offset)
        clone._linear = dict(self._linear)
        clone._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        return clone

    def relabel_variables(
        self, mapping: Mapping[Variable, Variable]
    ) -> "BinaryQuadraticModel":
        """Return a copy with variables renamed through *mapping*.

        Variables absent from *mapping* keep their labels; the final label
        set must be collision-free.
        """
        new_labels = [mapping.get(v, v) for v in self._linear]
        if len(set(new_labels)) != len(new_labels):
            raise ValueError("relabelling would merge distinct variables")
        out = BinaryQuadraticModel(vartype=self._vartype, offset=self._offset)
        for v, bias in self._linear.items():
            out.add_variable(mapping.get(v, v), bias)
        for (u, v), coupling in self.quadratic.items():
            out.add_interaction(mapping.get(u, u), mapping.get(v, v), coupling)
        return out

    def fix_variable(self, v: Variable, value: int) -> None:
        """Assign *v* in place, folding its terms into neighbours/offset."""
        self._check_variable(v)
        lo, hi = self._vartype.values
        if value not in (lo, hi):
            raise ValueError(f"value for {self._vartype.name} variable must be {lo} or {hi}")
        self._offset += self._linear[v] * value
        for u, coupling in list(self._adj.get(v, {}).items()):
            self._linear[u] += coupling * value
        self.remove_variable(v)

    # ------------------------------------------------------------------ #
    # vartype conversion & energies
    # ------------------------------------------------------------------ #

    def change_vartype(self, vartype: Union[str, Vartype]) -> "BinaryQuadraticModel":
        """Return an equivalent model in the requested vartype.

        Energies are preserved for every state under the bijection
        ``s = 2x - 1``.
        """
        vartype = as_vartype(vartype)
        if vartype is self._vartype:
            return self.copy()
        order = self.variables
        index = {v: i for i, v in enumerate(order)}
        if self._vartype is BINARY:
            q = {(index[v], index[v]): b for v, b in self._linear.items()}
            for (u, v), coupling in self.quadratic.items():
                q[(index[u], index[v])] = coupling
            h, j, off = qubo_to_ising(q, self._offset)
            out = BinaryQuadraticModel(vartype=SPIN, offset=off)
            for v in order:
                out.add_variable(v, h.get(index[v], 0.0))
            for (a, b), coupling in j.items():
                out.add_interaction(order[a], order[b], coupling)
            return out
        h = {index[v]: b for v, b in self._linear.items()}
        j = {(index[u], index[v]): c for (u, v), c in self.quadratic.items()}
        q, off = ising_to_qubo(h, j, self._offset)
        out = BinaryQuadraticModel(vartype=BINARY, offset=off)
        for v in order:
            out.add_variable(v, q.get((index[v], index[v]), 0.0))
        for (a, b), coupling in q.items():
            if a != b:
                out.add_interaction(order[a], order[b], coupling)
        return out

    def to_qubo_model(self) -> Tuple[QuboModel, List[Variable]]:
        """Lower to an index-based :class:`QuboModel`.

        Returns ``(model, order)`` where ``order[i]`` is the label of
        variable ``i``. SPIN models are converted to BINARY first.
        """
        bqm = self if self._vartype is BINARY else self.change_vartype(BINARY)
        order = bqm.variables
        index = {v: i for i, v in enumerate(order)}
        model = QuboModel(len(order), offset=bqm._offset)
        for v, bias in bqm._linear.items():
            if bias != 0.0:
                model.set_linear(index[v], bias)
        for (u, v), coupling in bqm.quadratic.items():
            if coupling != 0.0:
                model.set_quadratic(index[u], index[v], coupling)
        return model, order

    @classmethod
    def from_qubo_model(
        cls, model: QuboModel, labels: Optional[Iterable[Variable]] = None
    ) -> "BinaryQuadraticModel":
        """Lift an index-based model into a labelled BINARY BQM."""
        order = list(labels) if labels is not None else list(range(model.num_variables))
        if len(order) != model.num_variables:
            raise ValueError(
                f"got {len(order)} labels for {model.num_variables} variables"
            )
        out = cls(vartype=BINARY, offset=model.offset)
        for v in order:
            out.add_variable(v)
        for i, j, value in model.iter_coefficients():
            if i == j:
                out.add_variable(order[i], value)
            else:
                out.add_interaction(order[i], order[j], value)
        return out

    @classmethod
    def from_ising(
        cls,
        h: Mapping[Variable, float],
        j: Mapping[Tuple[Variable, Variable], float],
        offset: float = 0.0,
    ) -> "BinaryQuadraticModel":
        """Build a SPIN model from Ising fields and couplings."""
        out = cls(vartype=SPIN, offset=offset)
        for v, bias in h.items():
            out.add_variable(v, bias)
        for (u, v), coupling in j.items():
            out.add_interaction(u, v, coupling)
        return out

    def energy(self, sample: Mapping[Variable, int]) -> float:
        """Energy of one labelled sample."""
        e = self._offset
        for v, bias in self._linear.items():
            e += bias * sample[v]
        for (u, v), coupling in self.quadratic.items():
            e += coupling * sample[u] * sample[v]
        return float(e)

    def energies(
        self, states: np.ndarray, order: Optional[List[Variable]] = None
    ) -> np.ndarray:
        """Vectorized energies for ``(R, n)`` states in *order* column order."""
        order = order if order is not None else self.variables
        index = {v: i for i, v in enumerate(order)}
        if set(index) != set(self._linear):
            raise ValueError("order must cover exactly the model's variables")
        x = np.asarray(states, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        energies = np.full(x.shape[0], self._offset, dtype=np.float64)
        for v, bias in self._linear.items():
            if bias:
                energies += bias * x[:, index[v]]
        for (u, v), coupling in self.quadratic.items():
            if coupling:
                energies += coupling * x[:, index[u]] * x[:, index[v]]
        return energies

    def interaction_graph(self):
        """Coupling graph as a :class:`networkx.Graph` over the labels."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._linear)
        for (u, v), coupling in self.quadratic.items():
            if coupling != 0.0:
                g.add_edge(u, v)
        return g
