"""Model serialization: JSON-compatible dicts and file round-trips.

Lets QUBOs/BQMs produced by the string compiler be stored, diffed, and
shipped to other tools (or a real annealer's API, which accepts exactly
this shape of payload). The format is deliberately plain:

```json
{
  "format": "repro-qubo", "version": 1,
  "num_variables": 14, "offset": 0.0,
  "linear": {"0": -1.0, ...},
  "quadratic": [[0, 7, -2.0], ...]
}
```

BQMs additionally carry ``vartype`` and a ``variables`` label list (labels
must be JSON-representable; tuples are converted to lists and restored as
tuples on load).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.model import QuboModel

__all__ = [
    "qubo_to_dict",
    "qubo_from_dict",
    "bqm_to_dict",
    "bqm_from_dict",
    "save_model",
    "load_model",
]

_QUBO_FORMAT = "repro-qubo"
_BQM_FORMAT = "repro-bqm"
_VERSION = 1


def qubo_to_dict(model: QuboModel) -> Dict[str, Any]:
    """Serialize a :class:`QuboModel` to a JSON-compatible dict."""
    linear: Dict[str, float] = {}
    quadratic = []
    for i, j, value in model.iter_coefficients():
        if i == j:
            linear[str(i)] = value
        else:
            quadratic.append([i, j, value])
    return {
        "format": _QUBO_FORMAT,
        "version": _VERSION,
        "num_variables": model.num_variables,
        "offset": model.offset,
        "linear": linear,
        "quadratic": sorted(quadratic),
    }


def qubo_from_dict(payload: Dict[str, Any]) -> QuboModel:
    """Inverse of :func:`qubo_to_dict`."""
    _check_header(payload, _QUBO_FORMAT)
    model = QuboModel(int(payload["num_variables"]), offset=float(payload["offset"]))
    for key, value in payload["linear"].items():
        model.set_linear(int(key), float(value))
    for i, j, value in payload["quadratic"]:
        model.set_quadratic(int(i), int(j), float(value))
    return model


def _label_out(label: Any) -> Any:
    if isinstance(label, tuple):
        return {"__tuple__": [_label_out(x) for x in label]}
    return label


def _label_in(label: Any) -> Any:
    if isinstance(label, dict) and "__tuple__" in label:
        return tuple(_label_in(x) for x in label["__tuple__"])
    return label


def bqm_to_dict(bqm: BinaryQuadraticModel) -> Dict[str, Any]:
    """Serialize a labelled BQM (labels must be JSON-representable)."""
    variables = bqm.variables
    index = {v: i for i, v in enumerate(variables)}
    return {
        "format": _BQM_FORMAT,
        "version": _VERSION,
        "vartype": bqm.vartype.name,
        "offset": bqm.offset,
        "variables": [_label_out(v) for v in variables],
        "linear": {str(index[v]): bias for v, bias in bqm.linear.items()},
        "quadratic": sorted(
            [index[u], index[v], coupling]
            if index[u] < index[v]
            else [index[v], index[u], coupling]
            for (u, v), coupling in bqm.quadratic.items()
        ),
    }


def bqm_from_dict(payload: Dict[str, Any]) -> BinaryQuadraticModel:
    """Inverse of :func:`bqm_to_dict`."""
    _check_header(payload, _BQM_FORMAT)
    variables = [_label_in(v) for v in payload["variables"]]
    bqm = BinaryQuadraticModel(
        vartype=payload["vartype"], offset=float(payload["offset"])
    )
    for v in variables:
        bqm.add_variable(v)
    for key, bias in payload["linear"].items():
        bqm.set_linear(variables[int(key)], float(bias))
    for i, j, coupling in payload["quadratic"]:
        bqm.add_interaction(variables[int(i)], variables[int(j)], float(coupling))
    return bqm


def save_model(
    model: Union[QuboModel, BinaryQuadraticModel], path: Union[str, Path]
) -> None:
    """Write a model to a JSON file."""
    if isinstance(model, QuboModel):
        payload = qubo_to_dict(model)
    elif isinstance(model, BinaryQuadraticModel):
        payload = bqm_to_dict(model)
    else:
        raise TypeError(f"cannot serialize {type(model).__name__}")
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))


def load_model(path: Union[str, Path]) -> Union[QuboModel, BinaryQuadraticModel]:
    """Read a model written by :func:`save_model` (dispatches on format)."""
    payload = json.loads(Path(path).read_text())
    fmt = payload.get("format")
    if fmt == _QUBO_FORMAT:
        return qubo_from_dict(payload)
    if fmt == _BQM_FORMAT:
        return bqm_from_dict(payload)
    raise ValueError(f"unrecognized model format: {fmt!r}")


def _check_header(payload: Dict[str, Any], expected: str) -> None:
    if payload.get("format") != expected:
        raise ValueError(
            f"expected format {expected!r}, got {payload.get('format')!r}"
        )
    if payload.get("version") != _VERSION:
        raise ValueError(f"unsupported version {payload.get('version')!r}")
