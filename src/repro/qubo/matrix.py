"""Matrix normal forms for QUBO coefficient storage.

A QUBO is fully described by an upper-triangular matrix ``Q`` with the
objective ``E(x) = x^T Q x`` for ``x ∈ {0,1}^n``; because ``x_i^2 = x_i`` the
diagonal doubles as the linear term. Samplers prefer the *symmetric*
zero-diagonal form ``W = Q_offdiag + Q_offdiag^T`` plus a separate diagonal
vector, because local-field updates become plain matrix rows.

This module converts between the dict-of-pairs form used by model builders
and the dense forms used by the numeric kernels.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = [
    "dense_from_dict",
    "dict_from_dense",
    "to_upper_triangular",
    "to_symmetric",
    "coo_from_dict",
    "split_diagonal",
]

PairDict = Mapping[Tuple[int, int], float]


def to_upper_triangular(coefficients: PairDict) -> Dict[Tuple[int, int], float]:
    """Fold arbitrary ``(i, j) -> value`` entries into ``i <= j`` normal form.

    Entries ``(i, j)`` and ``(j, i)`` are summed — QUBO semantics are
    insensitive to which triangle holds a coupling as long as the total is
    preserved. Zero-sum entries are dropped.
    """
    out: Dict[Tuple[int, int], float] = {}
    for (i, j), value in coefficients.items():
        if i < 0 or j < 0:
            raise ValueError(f"variable indices must be non-negative, got ({i}, {j})")
        key = (i, j) if i <= j else (j, i)
        out[key] = out.get(key, 0.0) + float(value)
    return {k: v for k, v in out.items() if v != 0.0}


def dense_from_dict(coefficients: PairDict, num_variables: int) -> np.ndarray:
    """Build the dense upper-triangular ``(n, n)`` float64 matrix."""
    upper = to_upper_triangular(coefficients)
    q = np.zeros((num_variables, num_variables), dtype=np.float64)
    if upper:
        rows, cols, vals = _unzip(upper)
        if rows.size and (rows.max() >= num_variables or cols.max() >= num_variables):
            raise ValueError(
                f"coefficient index out of range for {num_variables} variables"
            )
        q[rows, cols] = vals
    return q


def coo_from_dict(coefficients: PairDict, num_variables: int) -> sp.coo_matrix:
    """Build a sparse COO upper-triangular matrix (for very large models)."""
    upper = to_upper_triangular(coefficients)
    if not upper:
        return sp.coo_matrix((num_variables, num_variables), dtype=np.float64)
    rows, cols, vals = _unzip(upper)
    return sp.coo_matrix(
        (vals, (rows, cols)), shape=(num_variables, num_variables), dtype=np.float64
    )


def dict_from_dense(q: np.ndarray, atol: float = 0.0) -> Dict[Tuple[int, int], float]:
    """Extract ``i <= j`` entries from a dense matrix.

    The lower triangle, if populated, is folded into the upper one.
    Entries with ``|value| <= atol`` are dropped.
    """
    q = np.asarray(q, dtype=np.float64)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {q.shape}")
    n = q.shape[0]
    folded = np.triu(q) + np.tril(q, k=-1).T
    rows, cols = np.nonzero(np.abs(folded) > atol)
    return {
        (int(i), int(j)): float(folded[i, j])
        for i, j in zip(rows, cols)
        if i <= j and 0 <= i < n
    }


def to_symmetric(q: np.ndarray) -> np.ndarray:
    """Symmetric zero-diagonal coupling matrix from an upper-triangular one.

    Returns ``W`` with ``W[i, j] = W[j, i] = Q[i, j] + Q[j, i]`` for
    ``i != j`` and ``W[i, i] = 0``; pair this with
    :func:`split_diagonal` for the sampler-facing ``(diag, W)`` form.
    """
    q = np.asarray(q, dtype=np.float64)
    w = q + q.T
    np.fill_diagonal(w, 0.0)
    return w


def split_diagonal(q: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split a QUBO matrix into ``(diagonal, symmetric off-diagonal)``.

    With ``d, W = split_diagonal(Q)`` the energy of a batch ``X`` of shape
    ``(R, n)`` is ``X @ d + 0.5 * ((X @ W) * X).sum(axis=1)``.
    """
    q = np.asarray(q, dtype=np.float64)
    return np.diag(q).copy(), to_symmetric(q)


def _unzip(upper: PairDict) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    keys = np.array(list(upper.keys()), dtype=np.int64).reshape(-1, 2)
    vals = np.array(list(upper.values()), dtype=np.float64)
    return keys[:, 0], keys[:, 1], vals
