"""``repro.opt`` — anytime weighted-MaxSMT optimization.

The optimization vertical over the solver stack: ``assert-soft`` weighted
constraints (parsed by :mod:`repro.smt.parser`) compile through
:func:`~repro.opt.weighted.compile_weighted` into gap-calibrated weighted
QUBOs, and :class:`~repro.opt.driver.AnytimeOptimizer` tightens objective
bounds across annealer restarts under a deadline budget. Results are typed
:class:`~repro.opt.result.OptimizeResult` envelopes with an
``optimal | feasible | infeasible | unknown`` status, per-soft-assertion
breakdown, and the weight-calibration gap certificate.
"""

from repro.opt.driver import AnytimeOptimizer, audit_cost
from repro.opt.result import (
    OptimizeResult,
    OptStatus,
    SoftReport,
    solve_status_for,
)
from repro.opt.weighted import (
    WeightedFormulation,
    WeightedProblem,
    compile_weighted,
    model_spread,
)

__all__ = [
    "AnytimeOptimizer",
    "OptStatus",
    "OptimizeResult",
    "SoftReport",
    "WeightedFormulation",
    "WeightedProblem",
    "audit_cost",
    "compile_weighted",
    "model_spread",
    "solve_status_for",
]
