"""The weighted MaxSMT compiler pass: hard + soft assertions → one QUBO.

Each soft assertion's §4 penalty block is scaled by its weight; the hard
assertions' blocks are scaled by an auto-calibrated factor so that **no
weighted sum of soft violations can ever pay for a hard violation**:

* every soft block's weighted energy spread is bounded above by
  ``weight * sum(|coefficients|)`` (binary variables make each term range
  over ``{0, c}``), so the total soft budget ``W`` bounds how much energy
  the soft side could possibly offer;
* every hard block compiled at penalty strength ``A`` has an integral
  energy spectrum in units of ``A`` (each §4 formulation penalizes in
  whole ±A quanta), so the cheapest hard violation costs at least ``A``;
* the hard side is therefore scaled by ``hard_scale = floor(W / A) + 1``,
  making the cheapest scaled hard violation ``hard_scale * A > W``.

The resulting **gap certificate** ``{hard_scale, hard_gap, soft_budget}``
is recorded on the compiled problem and travels into every
:class:`~repro.opt.result.OptimizeResult`; the property
``hard_scale * hard_gap > soft_budget`` is what the campaign's
gap-certificate test asserts.

Soft terms outside the QUBO fragment (or trivially decided at the
inferred length) degrade to **audit-only**: they contribute no penalty
block — the annealer is not guided by them — but they still count toward
the objective, which is always re-audited under the concrete semantics.

One hard block is deliberately *not* scaled wholesale:
:class:`~repro.core.length.StringLength` in ``decodable`` mode carries a
random printable **content preference** on the first ``7 L`` diagonal
entries — pure guidance that varies *within* the feasible set (every
feasible string satisfies the length either way). Amplifying it by
``hard_scale`` would let that arbitrary preference outbid every real soft
weight and steer the annealer to the preference's random target instead
of the objective. The weighted build therefore splits the block: pad
pinning (actual length enforcement) scales by ``hard_scale``; the content
preference keeps its native strength, small enough that any encoded soft
block dominates it at its position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.formulation import FormulationError, StringFormulation
from repro.qubo.algebra import add_models, relabel_variables, scale_model
from repro.qubo.model import QuboModel
from repro.smt import ast
from repro.smt.compiler import (
    CompilationError,
    CompiledProblem,
    _compile_one,
    _infer_length,
    compile_assertions,
)
from repro.smt.theory import eval_formula
from repro.utils.asciitab import CHAR_BITS
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["WeightedFormulation", "WeightedProblem", "compile_weighted", "model_spread"]

#: Mixed into the soft-compiler RNG stream so soft blocks never replay the
#: hard compiler's per-child seed sequence.
_SOFT_SEED_SALT = 0x50F7


def model_spread(model: QuboModel) -> float:
    """Upper bound on ``max E - min E`` of a QUBO: ``sum |coefficients|``."""
    return float(sum(abs(value) for _, _, value in model.iter_coefficients()))


def _model_floor(model: QuboModel) -> float:
    """Lower bound on a QUBO's energy: offset plus all negative terms."""
    return float(
        model.offset
        + sum(min(value, 0.0) for _, _, value in model.iter_coefficients())
    )


def _iter_hard_children(hard: StringFormulation):
    """The conjuncts of one variable's hard side (composite-aware)."""
    from repro.smt.compiler import CompositeFormulation

    if isinstance(hard, CompositeFormulation):
        for child in hard.children:
            yield child
    else:
        yield hard


def _split_scale_length(
    model: QuboModel, boundary: int, hard_scale: float
) -> QuboModel:
    """Scale a diagonal length block, exempting its content preference.

    Diagonal entries below *boundary* (the ``7 L`` content bits) are the
    decodable-mode printable preference — intra-feasible guidance, kept at
    native strength; everything else (NUL pad pinning, i.e. the actual
    length constraint) scales by *hard_scale*.
    """
    out = QuboModel(model.num_variables)
    for i, j, value in model.iter_coefficients():
        scale = 1.0 if (i == j and i < boundary) else hard_scale
        if i == j:
            out.set_linear(i, scale * value)
        else:
            out.add_quadratic(i, j, scale * value)
    out.offset = float(model.offset)
    return out


def _scaled_hard_blocks(
    hard: StringFormulation, hard_scale: float
) -> List[QuboModel]:
    """The hard side as per-conjunct blocks at the calibrated scale.

    See the module docstring: :class:`StringLength`'s decodable content
    preference must not be amplified, so length blocks are split-scaled.
    """
    from repro.core.length import StringLength

    blocks: List[QuboModel] = []
    for child in _iter_hard_children(hard):
        model = child.build_model()
        if (
            isinstance(child, StringLength)
            and child.mode == "decodable"
            and not model.num_interactions
        ):
            blocks.append(
                _split_scale_length(model, CHAR_BITS * child.length, hard_scale)
            )
        else:
            blocks.append(scale_model(model, hard_scale))
    return blocks


def _string_prefix(formulation: StringFormulation) -> int:
    """The formulation's string-bit prefix (aux bits come after it)."""
    for attr in ("num_string_bits", "string_bits"):
        value = getattr(formulation, attr, None)
        if value:
            return int(value)
    return formulation.build_model().num_variables


class WeightedFormulation(StringFormulation):
    """One variable's weighted QUBO: scaled hard block + weighted soft blocks.

    The hard child (a plain compiled formulation, possibly a
    :class:`~repro.smt.compiler.CompositeFormulation`) is scaled by
    ``hard_scale``; each soft child is scaled by its assertion's weight and
    shifted so a satisfied soft block contributes (close to) zero energy.
    Children share the ``7 L`` string-bit prefix; auxiliary blocks are
    relabelled onto disjoint fresh indices, exactly as in composite
    conjunction.
    """

    name = "weighted"

    def __init__(
        self,
        variable: str,
        length: int,
        hard: Optional[StringFormulation],
        soft_children: List[Tuple[ast.SoftAssertion, StringFormulation]],
        hard_scale: float,
        penalty_strength: float = 1.0,
    ) -> None:
        super().__init__(penalty_strength)
        if hard is None and not soft_children:
            raise CompilationError(f"nothing to optimize for {variable!r}")
        self.variable = variable
        self.length = length
        self.hard = hard
        self.soft_children = list(soft_children)
        self.hard_scale = float(hard_scale)
        self.num_string_bits = length * CHAR_BITS

    def _build(self) -> QuboModel:
        prefix = self.num_string_bits
        scaled: List[QuboModel] = []
        if self.hard is not None:
            scaled.extend(_scaled_hard_blocks(self.hard, self.hard_scale))
        for soft, child in self.soft_children:
            block = scale_model(child.build_model(), float(soft.weight))
            # Shift so the block's minimum possible contribution is zero:
            # satisfied soft assertions then cost (at most) nothing and the
            # combined energy stays a sum of non-negative violation terms.
            block.offset = block.offset - _model_floor(block)
            scaled.append(block)
        widths = [m.num_variables for m in scaled]
        total = prefix + sum(max(w - prefix, 0) for w in widths)
        combined = QuboModel(total)
        next_aux = prefix
        for block, width in zip(scaled, widths):
            mapping = {i: i for i in range(min(prefix, width))}
            for j in range(prefix, width):
                mapping[j] = next_aux
                next_aux += 1
            combined = add_models(combined, relabel_variables(block, mapping, total))
        return combined

    def decode(self, state) -> str:
        from repro.core.encoding import state_to_string

        return state_to_string(np.asarray(state)[: self.num_string_bits])

    def verify(self, decoded: str) -> bool:
        """Hard feasibility only — soft assertions never gate a model."""
        if self.hard is not None:
            return self.hard.verify(decoded)
        return isinstance(decoded, str) and len(decoded) == self.length

    def describe(self) -> str:
        hard = self.hard.describe() if self.hard is not None else "none"
        return (
            f"WeightedFormulation({self.variable!r}: hard={hard} "
            f"x{self.hard_scale:g}, soft={len(self.soft_children)})"
        )


@dataclass
class WeightedProblem:
    """A compiled weighted instance: everything the anytime driver needs."""

    formulations: Dict[str, WeightedFormulation] = field(default_factory=dict)
    #: The hard-side compile result (ground truths, per-variable asserts).
    hard: CompiledProblem = field(default_factory=CompiledProblem)
    soft: List[ast.SoftAssertion] = field(default_factory=list)
    per_variable_soft: Dict[str, List[ast.SoftAssertion]] = field(default_factory=dict)
    #: Ground soft assertions with their fixed truth value.
    ground_soft: List[Tuple[ast.SoftAssertion, bool]] = field(default_factory=list)
    #: Non-ground softs compiled to no block (objective audit still counts them).
    audit_only: List[ast.SoftAssertion] = field(default_factory=list)
    certificate: Dict[str, Any] = field(default_factory=dict)

    @property
    def trivially_infeasible(self) -> bool:
        return self.hard.trivially_unsat

    @property
    def ground_cost(self) -> float:
        """Objective contribution fixed before any model is chosen."""
        return float(
            sum(soft.weight for soft, truth in self.ground_soft if not truth)
        )


def compile_weighted(
    assertions: List[ast.Term],
    soft_assertions: List[ast.SoftAssertion],
    penalty_strength: float = 1.0,
    seed: SeedLike = None,
) -> WeightedProblem:
    """Compile hard + soft assertions into a :class:`WeightedProblem`.

    The hard conjunction compiles exactly as in
    :func:`~repro.smt.compiler.compile_assertions` (same RNG discipline,
    so the hard blocks are bit-identical to an unweighted compile at the
    same seed); soft blocks draw from a salted stream.
    """
    hard_problem = compile_assertions(
        list(assertions), penalty_strength=penalty_strength, seed=seed
    )
    problem = WeightedProblem(hard=hard_problem, soft=list(soft_assertions))

    if isinstance(seed, (int, np.integer)):
        soft_rng = ensure_rng(int(seed) ^ _SOFT_SEED_SALT)
    else:
        soft_rng = ensure_rng(seed)

    # Partition soft assertions: ground / single-variable / out-of-fragment.
    grouped: Dict[str, List[ast.SoftAssertion]] = {}
    for soft in soft_assertions:
        variables = ast.free_string_variables(soft.term)
        if not variables:
            problem.ground_soft.append((soft, bool(eval_formula(soft.term, {}))))
            continue
        if len(variables) > 1:
            raise CompilationError(
                f"soft assertion relates several string variables "
                f"({sorted(variables)}); only single-variable constraints are "
                f"in the QUBO fragment: {soft.term!r}"
            )
        (variable,) = variables
        grouped.setdefault(variable, []).append(soft)
    problem.per_variable_soft = {k: list(v) for k, v in grouped.items()}

    # Per-variable lengths: hard facts first, soft facts as a fallback for
    # soft-only variables (a soft length conflict is a genuine error there).
    lengths: Dict[str, int] = {}
    soft_blocks: Dict[str, List[Tuple[ast.SoftAssertion, StringFormulation]]] = {}
    all_variables = list(hard_problem.formulations)
    for variable in grouped:
        if variable not in lengths and variable not in hard_problem.formulations:
            all_variables.append(variable)
    for variable in all_variables:
        hard_group = hard_problem.per_variable.get(variable, [])
        try:
            lengths[variable] = _infer_length(variable, hard_group)
        except CompilationError:
            soft_terms = [s.term for s in grouped.get(variable, [])]
            lengths[variable] = _infer_length(variable, hard_group + soft_terms)

    soft_budget = 0.0
    num_encoded = 0
    for variable, softs in grouped.items():
        length = lengths[variable]
        blocks: List[Tuple[ast.SoftAssertion, StringFormulation]] = []
        for soft in softs:
            child: Optional[StringFormulation]
            try:
                child = _compile_one(
                    variable, soft.term, length, penalty_strength, soft_rng,
                    [soft.term],
                )
            except (CompilationError, FormulationError):
                # Out-of-fragment or out-of-buffer soft terms (e.g. a soft
                # length fact contradicting the hard-pinned length) cannot
                # steer the annealer, but the objective audit still counts
                # them.
                child = None
            if child is None:
                problem.audit_only.append(soft)
                continue
            blocks.append((soft, child))
            soft_budget += float(soft.weight) * model_spread(child.build_model())
            num_encoded += 1
        soft_blocks[variable] = blocks

    # Gap calibration: the cheapest hard violation costs >= A (integral
    # spectra in units of the penalty strength), so scaling the hard side
    # by floor(W / A) + 1 puts it strictly above the whole soft budget.
    hard_gap = float(penalty_strength)
    hard_scale = float(int(soft_budget / hard_gap) + 1) if num_encoded else 1.0
    problem.certificate = {
        "hard_scale": hard_scale,
        "hard_gap": hard_gap,
        "soft_budget": soft_budget,
        "num_soft_encoded": num_encoded,
        "num_soft_audit_only": len(problem.audit_only),
    }

    for variable in all_variables:
        hard_child = hard_problem.formulations.get(variable)
        problem.formulations[variable] = WeightedFormulation(
            variable,
            lengths[variable],
            hard_child,
            soft_blocks.get(variable, []),
            hard_scale,
            penalty_strength=penalty_strength,
        )
    return problem
