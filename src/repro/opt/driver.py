"""The anytime weighted-MaxSMT driver.

:class:`AnytimeOptimizer` turns the solver stack into an optimizer: it
compiles hard + soft assertions through :mod:`repro.opt.weighted`, then
tightens an upper bound on the objective (total violated soft weight)
across annealer restarts under a deadline budget. Small variables finish
with an exhaustive pass over their whole decoded string space, which
proves optimality outright.

Soundness contract: the reported objective is always **re-audited** under
the concrete string semantics — the QUBO energy only *guides* the search
(a violated soft block can cost more energy than its weight when it is
"more wrong", so energies are never trusted as costs). ``infeasible`` is
only ever reported for ground-false hard assertions; a fixed-length
encoding that admits no witness yields ``unknown``, mirroring the
incompleteness contract of ``check_sat``.

Anytime-bound contract (DESIGN.md Appendix J): after every restart,
``lower_bound <= true optimum <= upper_bound`` holds, the upper bound is
non-increasing, and ``status="optimal"`` is reported exactly when the two
bounds meet or every variable was finished exhaustively.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.anneal.base import Sampler
from repro.opt.result import OptimizeResult, OptStatus, SoftReport
from repro.opt.weighted import WeightedProblem, compile_weighted
from repro.service.metrics import MetricsRegistry
from repro.smt import ast
from repro.smt.compiler import CompilationError, _length_facts
from repro.smt.parser import parse_script
from repro.smt.printer import render_term
from repro.smt.theory import eval_formula
from repro.utils.asciitab import ALPHABET_SIZE
from repro.utils.rng import SeedLike

__all__ = ["AnytimeOptimizer", "audit_cost"]

#: Salt for the per-restart annealer seed stream (disjoint from the
#: compiler's and the refinement engine's streams).
_RESTART_SEED_SALT = 0x0A17


def audit_cost(
    hard_asserts: List[ast.Term],
    softs: List[Tuple[float, ast.Term]],
    assignment: Dict[str, str],
) -> Tuple[bool, float]:
    """``(feasible, violated_weight)`` of one assignment, concretely.

    This is the single source of truth for objective values — the driver,
    the optimality oracle, and the campaign auditor all call it.
    """
    for assertion in hard_asserts:
        if not eval_formula(assertion, assignment):
            return False, 0.0
    cost = 0.0
    for weight, term in softs:
        if not eval_formula(term, assignment):
            cost += float(weight)
    return True, cost


class AnytimeOptimizer:
    """Anytime weighted-MaxSMT optimization over the string QUBO stack.

    Parameters
    ----------
    sampler:
        Any :class:`~repro.anneal.base.Sampler`; default simulated
        annealing. Each restart consumes ``num_reads`` reads.
    max_restarts:
        Annealer restarts per variable; odd restarts are warm-started from
        the best state found so far (the anytime tightening move).
    deadline_ms:
        Total wall-clock budget; once exceeded no further restart begins
        (the result keeps whatever bounds were reached — anytime).
    exhaustive_bits:
        Variables whose string encoding has at most this many bits are
        finished by exhaustive enumeration of the decoded space, proving
        per-variable optimality. ``0`` disables the exhaustive pass.
    """

    def __init__(
        self,
        sampler: Optional[Sampler] = None,
        *,
        num_reads: int = 64,
        seed: SeedLike = None,
        sampler_params: Optional[Dict[str, Any]] = None,
        penalty_strength: float = 1.0,
        max_restarts: int = 4,
        deadline_ms: Optional[float] = None,
        exhaustive_bits: int = 16,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        if max_restarts < 1:
            raise ValueError(f"max_restarts must be >= 1, got {max_restarts}")
        if exhaustive_bits < 0:
            raise ValueError(f"exhaustive_bits must be >= 0, got {exhaustive_bits}")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {deadline_ms}")
        if seed is not None and not isinstance(seed, (int, np.integer)):
            raise TypeError(
                f"AnytimeOptimizer needs a reproducible seed (int or None), "
                f"got {type(seed)!r}"
            )
        self.sampler = sampler
        self.num_reads = num_reads
        self.seed = None if seed is None else int(seed)
        self.sampler_params = dict(sampler_params or {})
        self.penalty_strength = penalty_strength
        self.max_restarts = max_restarts
        self.deadline_ms = deadline_ms
        self.exhaustive_bits = exhaustive_bits
        self.metrics = metrics

    # ------------------------------------------------------------------ #
    # entry points
    # ------------------------------------------------------------------ #

    def optimize_script(self, text: str, **solve_params: Any) -> OptimizeResult:
        """Optimize an SMT-LIB script with ``assert-soft`` commands."""
        script = parse_script(text)
        return self.optimize(
            list(script.assertions), list(script.soft_assertions), **solve_params
        )

    def optimize(
        self,
        assertions: List[ast.Term],
        soft_assertions: List[ast.SoftAssertion],
        **solve_params: Any,
    ) -> OptimizeResult:
        """Compile and optimize; see the module-level contracts."""
        started = time.monotonic()
        try:
            problem = compile_weighted(
                assertions,
                soft_assertions,
                penalty_strength=self.penalty_strength,
                seed=self.seed,
            )
        except CompilationError as exc:
            result = OptimizeResult(
                status=OptStatus.UNKNOWN,
                breakdown=self._breakdown_skeleton(soft_assertions),
                reason=f"compilation: {exc}",
            )
            self._count(result)
            return result
        result = self.optimize_compiled(problem, **solve_params)
        result.wall_time = time.monotonic() - started
        if self.metrics is not None:
            self.metrics.observe("opt.wall", result.wall_time)
        return result

    def optimize_compiled(
        self, problem: WeightedProblem, **solve_params: Any
    ) -> OptimizeResult:
        """Optimize a pre-compiled :class:`WeightedProblem`."""
        deadline = (
            None
            if self.deadline_ms is None
            else time.monotonic() + self.deadline_ms / 1000.0
        )
        if problem.trivially_infeasible:
            failed = [a for a, truth in problem.hard.ground_results if not truth]
            result = OptimizeResult(
                status=OptStatus.INFEASIBLE,
                breakdown=self._breakdown_skeleton(problem.soft),
                certificate=dict(problem.certificate),
                reason=f"ground assertion false: {failed[0]!r}",
            )
            self._count(result)
            return result

        model: Dict[str, str] = {}
        lower = problem.ground_cost
        upper = problem.ground_cost
        all_optimal = True
        restarts = 0
        reads_used = 0
        unknown_reason = ""
        audit_only = set(id(s) for s in problem.audit_only)

        for variable, formulation in problem.formulations.items():
            hard_asserts = problem.hard.per_variable.get(variable, [])
            softs = [
                (float(s.weight), s.term)
                for s in problem.per_variable_soft.get(variable, [])
            ]
            outcome = self._solve_variable(
                variable, formulation, hard_asserts, softs, deadline, solve_params
            )
            restarts += outcome["restarts"]
            reads_used += outcome["reads"]
            if outcome["value"] is None:
                unknown_reason = outcome["reason"]
                all_optimal = False
                result = OptimizeResult(
                    status=(
                        OptStatus.INFEASIBLE
                        if outcome.get("refuted")
                        else OptStatus.UNKNOWN
                    ),
                    model=model,
                    breakdown=self._breakdown_skeleton(problem.soft),
                    certificate=dict(problem.certificate),
                    reason=unknown_reason,
                    restarts=restarts,
                    reads_used=reads_used,
                )
                self._count(result)
                return result
            model[variable] = outcome["value"]
            upper += outcome["cost"]
            lower += outcome["lower"]
            all_optimal = all_optimal and outcome["optimal"]

        status = (
            OptStatus.OPTIMAL
            if all_optimal or upper <= lower
            else OptStatus.FEASIBLE
        )
        result = OptimizeResult(
            status=status,
            model=model,
            objective=upper,
            lower_bound=min(lower, upper),
            upper_bound=upper,
            breakdown=self._breakdown(problem.soft, model, audit_only),
            certificate=dict(problem.certificate),
            restarts=restarts,
            reads_used=reads_used,
        )
        self._count(result)
        if self.metrics is not None and result.objective is not None:
            self.metrics.observe("opt.objective", float(result.objective))
        return result

    # ------------------------------------------------------------------ #
    # per-variable search
    # ------------------------------------------------------------------ #

    def _solve_variable(
        self,
        variable: str,
        formulation,
        hard_asserts: List[ast.Term],
        softs: List[Tuple[float, ast.Term]],
        deadline: Optional[float],
        solve_params: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Best audited value for one variable (exhaustive or anytime SA)."""
        if (
            self.exhaustive_bits
            and formulation.num_string_bits <= self.exhaustive_bits
        ):
            if self.metrics is not None:
                self.metrics.counter("opt.exhaustive_vars").inc()
            return self._solve_exhaustive(formulation, hard_asserts, softs)
        return self._solve_anytime(
            variable, formulation, hard_asserts, softs, deadline, solve_params
        )

    def _solve_exhaustive(
        self,
        formulation,
        hard_asserts: List[ast.Term],
        softs: List[Tuple[float, ast.Term]],
    ) -> Dict[str, Any]:
        """Enumerate every decodable string; exact, so per-variable optimal."""
        variable = formulation.variable
        length = formulation.length
        best_value: Optional[str] = None
        best_cost = 0.0
        alphabet = [chr(c) for c in range(ALPHABET_SIZE)]
        for chars in itertools.product(alphabet, repeat=length):
            candidate = "".join(chars)
            feasible, cost = audit_cost(
                hard_asserts, softs, {variable: candidate}
            )
            if feasible and (best_value is None or cost < best_cost):
                best_value, best_cost = candidate, cost
                if cost == 0.0:
                    break
        if best_value is None:
            # An exhausted enumeration only *refutes* when the hard group
            # pins the length exactly: every model then has this length,
            # so "no witness at this length" means "no witness at all".
            # A merely lower-bounded length stays unknown (the true model
            # could be longer than the compiled encoding).
            exact = any(
                _length_facts(variable, a)[0] is not None
                for a in hard_asserts
            )
            return {
                "value": None,
                "cost": 0.0,
                "lower": 0.0,
                "optimal": False,
                "restarts": 0,
                "reads": 0,
                "refuted": exact,
                "reason": (
                    f"no witness of length {length} exists for {variable!r} "
                    f"(exhaustive pass"
                    + (", length pinned exactly: infeasible)" if exact else ")")
                ),
            }
        return {
            "value": best_value,
            "cost": best_cost,
            "lower": best_cost,
            "optimal": True,
            "restarts": 0,
            "reads": 0,
            "reason": "",
        }

    def _solve_anytime(
        self,
        variable: str,
        formulation,
        hard_asserts: List[ast.Term],
        softs: List[Tuple[float, ast.Term]],
        deadline: Optional[float],
        solve_params: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Annealer restarts with warm-started tightening under the deadline."""
        from repro.anneal.simulated import SimulatedAnnealingSampler

        sampler = self.sampler if self.sampler is not None else SimulatedAnnealingSampler()
        model = formulation.build_model()
        seed_rng = np.random.default_rng(
            None if self.seed is None else (self.seed ^ _RESTART_SEED_SALT)
        )
        takes_seed = "seed" in type(sampler).parameters

        best_value: Optional[str] = None
        best_cost = 0.0
        best_state: Optional[np.ndarray] = None
        restarts = 0
        reads = 0
        for restart in range(self.max_restarts):
            if deadline is not None and restart > 0 and time.monotonic() >= deadline:
                break
            params = dict(self.sampler_params)
            params.update(solve_params)
            params["num_reads"] = self.num_reads
            if takes_seed:
                params["seed"] = int(seed_rng.integers(0, 2**63 - 1))
            if restart % 2 == 1 and best_state is not None:
                # Warm restart: tighten around the incumbent.
                params["initial_states"] = best_state
            sampleset = sampler.sample_model(model, **params)
            restarts += 1
            reads += len(sampleset)
            if self.metrics is not None:
                self.metrics.counter("opt.restarts").inc()
            seen = set()
            for row, state in enumerate(sampleset.states):
                value = formulation.decode(state)
                if value in seen:
                    continue
                seen.add(value)
                feasible, cost = audit_cost(hard_asserts, softs, {variable: value})
                if feasible and (best_value is None or cost < best_cost):
                    best_value, best_cost = value, cost
                    best_state = np.asarray(state, dtype=np.int8)
            if best_value is not None and best_cost == 0.0:
                break  # lower bound reached: provably optimal for this variable
        if best_value is None:
            return {
                "value": None,
                "cost": 0.0,
                "lower": 0.0,
                "optimal": False,
                "restarts": restarts,
                "reads": reads,
                "reason": (
                    f"annealer produced no hard-feasible witness for "
                    f"{variable!r} in {restarts} restart(s)"
                ),
            }
        return {
            "value": best_value,
            "cost": best_cost,
            "lower": 0.0,
            "optimal": best_cost == 0.0,
            "restarts": restarts,
            "reads": reads,
            "reason": "",
        }

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def _breakdown_skeleton(
        self, softs: List[ast.SoftAssertion]
    ) -> List[SoftReport]:
        return [
            SoftReport(
                term_text=render_term(s.term),
                weight=float(s.weight),
                group=s.group,
                satisfied=None,
            )
            for s in softs
        ]

    def _breakdown(
        self,
        softs: List[ast.SoftAssertion],
        model: Dict[str, str],
        audit_only_ids: set,
    ) -> List[SoftReport]:
        out: List[SoftReport] = []
        for soft in softs:
            try:
                satisfied: Optional[bool] = bool(eval_formula(soft.term, model))
            except Exception:
                satisfied = None
            out.append(
                SoftReport(
                    term_text=render_term(soft.term),
                    weight=float(soft.weight),
                    group=soft.group,
                    satisfied=satisfied,
                    encoded=id(soft) not in audit_only_ids,
                )
            )
        return out

    def _count(self, result: OptimizeResult) -> None:
        if self.metrics is not None:
            self.metrics.counter("opt.optimize").inc()
            self.metrics.counter(f"opt.{result.status.value}").inc()
