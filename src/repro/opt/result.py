"""Typed results for the weighted MaxSMT optimization mode.

:class:`OptimizeResult` is to :mod:`repro.opt` what
:class:`~repro.smt.solver.SmtResult` is to ``check_sat``: the single
envelope every front end (driver, session, batch, server, verify) passes
around. The status taxonomy follows MaxSMT convention:

* ``optimal`` — a feasible model whose objective is *proven* minimal
  (exhaustive finishing pass, or the objective hit its lower bound);
* ``feasible`` — a model satisfying every hard assertion was found, with
  ``lower_bound <= objective <= upper_bound`` but no optimality proof;
* ``infeasible`` — the hard assertions alone are unsatisfiable;
* ``unknown`` — no feasible model surfaced within the budget.

The *objective* is the total weight of violated soft assertions
(minimized); ``satisfied_weight`` reports the maximization view of the
same quantity. Bounds always bracket the true optimum: ``lower_bound``
never exceeds it, ``upper_bound`` is the best audited feasible cost.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["OptStatus", "SoftReport", "OptimizeResult", "solve_status_for"]


class OptStatus(str, enum.Enum):
    """Canonical optimization outcome (a str-mixin, like ``SolveStatus``)."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # match SolveStatus: print the bare value
        return str.__str__(self)

    @property
    def is_feasible(self) -> bool:
        """True when the result carries a hard-satisfying model."""
        return self in (OptStatus.OPTIMAL, OptStatus.FEASIBLE)

    @classmethod
    def from_value(cls, value: Any) -> "OptStatus":
        if isinstance(value, cls):
            return value
        text = str(value).strip().lower()
        for member in cls:
            if member.value == text:
                return member
        alias = _ALIASES.get(text)
        if alias is not None:
            return alias
        raise ValueError(f"not an optimization status: {value!r}")


_ALIASES = {
    "opt": OptStatus.OPTIMAL,
    "sat": OptStatus.FEASIBLE,
    "unsat": OptStatus.INFEASIBLE,
    "timeout": OptStatus.UNKNOWN,
    "indeterminate": OptStatus.UNKNOWN,
}


def solve_status_for(status: "OptStatus") -> str:
    """Project an optimization status onto the sat/unsat/unknown axis.

    The service layer (batch, server) reports results through
    :class:`~repro.smt.solver.SmtResult`, whose status is pinned to
    ``SolveStatus`` — the optimization refinement rides in dedicated
    ``objective``/bound fields next to it.
    """
    status = OptStatus.from_value(status)
    if status.is_feasible:
        return "sat"
    if status is OptStatus.INFEASIBLE:
        return "unsat"
    return "unknown"


@dataclass
class SoftReport:
    """Per-soft-assertion outcome in the best model."""

    term_text: str
    weight: float
    group: str = ""
    #: None when no feasible model was found to evaluate against.
    satisfied: Optional[bool] = None
    #: False when the soft term fell outside the QUBO fragment and was
    #: audit-only (it still counts toward the objective).
    encoded: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "term": self.term_text,
            "weight": self.weight,
            "group": self.group,
            "satisfied": self.satisfied,
            "encoded": self.encoded,
        }


@dataclass
class OptimizeResult:
    """Outcome of one anytime weighted-MaxSMT optimization."""

    status: OptStatus
    model: Dict[str, str] = field(default_factory=dict)
    #: Total violated soft weight of ``model`` (None when infeasible/unknown).
    objective: Optional[float] = None
    lower_bound: float = 0.0
    upper_bound: float = math.inf
    breakdown: List[SoftReport] = field(default_factory=list)
    #: The weighted compiler's gap certificate (see repro.opt.weighted).
    certificate: Dict[str, Any] = field(default_factory=dict)
    reason: str = ""
    restarts: int = 0
    reads_used: int = 0
    wall_time: float = 0.0

    def __post_init__(self) -> None:
        self.status = OptStatus.from_value(self.status)

    @property
    def total_weight(self) -> float:
        """Sum of all soft-assertion weights."""
        return float(sum(entry.weight for entry in self.breakdown))

    @property
    def satisfied_weight(self) -> Optional[float]:
        """The maximization view: total weight minus the objective."""
        if self.objective is None:
            return None
        return self.total_weight - self.objective

    @property
    def bounds(self) -> Dict[str, Optional[float]]:
        """JSON-friendly ``{lower, upper}`` (None encodes +inf)."""
        upper = None if math.isinf(self.upper_bound) else self.upper_bound
        return {"lower": self.lower_bound, "upper": upper}

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON form (campaign reports, server envelopes)."""
        return {
            "status": self.status.value,
            "model": dict(sorted(self.model.items())),
            "objective": self.objective,
            "bounds": self.bounds,
            "satisfied_weight": self.satisfied_weight,
            "breakdown": [entry.to_dict() for entry in self.breakdown],
            "certificate": dict(self.certificate),
            "reason": self.reason,
            "restarts": self.restarts,
            "reads_used": self.reads_used,
        }

    def __repr__(self) -> str:
        return (
            f"OptimizeResult(status={self.status.value!r}, "
            f"objective={self.objective!r}, bounds=[{self.lower_bound}, "
            f"{self.upper_bound}])"
        )
