"""Concrete semantics of the string theory.

Evaluates ground (or environment-closed) terms per the SMT-LIB Unicode/
strings standard restricted to 7-bit ASCII:

* ``str.indexof`` returns −1 when the needle does not occur at or after the
  start index, and the needle's emptiness/start edge cases follow SMT-LIB
  (empty needle at a valid start returns the start).
* ``str.replace`` replaces the **first** occurrence (or prepends nothing if
  absent — SMT-LIB returns the source unchanged); ``str.replace_all``
  replaces every occurrence.
* ``str.in_re`` membership is evaluated by compiling the regular-language
  term to the subset matcher in :mod:`repro.core.regex`.

The evaluator is the library's source of truth: QUBO solutions, classical-
solver outputs, and DPLL(T) theory checks are all verified against it.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.core.regex import RegexToken, regex_matches
from repro.smt import ast

__all__ = ["TheoryError", "eval_term", "eval_formula", "regex_term_to_tokens"]

Env = Dict[str, str]
Value = Union[str, int, bool]


class TheoryError(ValueError):
    """Evaluation failure: unbound variable or ill-sorted application."""


def eval_term(term: ast.Term, env: Env) -> Value:
    """Evaluate *term* under the string assignment *env*."""
    if isinstance(term, ast.StrVar):
        try:
            return env[term.name]
        except KeyError:
            raise TheoryError(f"unbound string variable {term.name!r}") from None
    if isinstance(term, ast.StrLit):
        return term.value
    if isinstance(term, ast.IntLit):
        return term.value
    if isinstance(term, ast.Concat):
        return "".join(_string(part, env) for part in term.parts)
    if isinstance(term, ast.Replace):
        source = _string(term.source, env)
        old = _string(term.old, env)
        new = _string(term.new, env)
        if term.replace_all:
            if old == "":
                # SMT-LIB: replace_all with empty pattern is the identity.
                return source
            return source.replace(old, new)
        if old == "":
            # SMT-LIB: replacing the empty string prepends the replacement.
            return new + source
        return source.replace(old, new, 1)
    if isinstance(term, ast.Reverse):
        return _string(term.source, env)[::-1]
    if isinstance(term, ast.At):
        source = _string(term.source, env)
        index = _int(term.index, env)
        if 0 <= index < len(source):
            return source[index]
        return ""
    if isinstance(term, ast.Substr):
        source = _string(term.source, env)
        offset = _int(term.offset, env)
        count = _int(term.count, env)
        if offset < 0 or count < 0 or offset > len(source):
            # SMT-LIB: out-of-range substr is the empty string. (An offset
            # equal to the length is in range and yields "" anyway.)
            return ""
        return source[offset : offset + count]
    if isinstance(term, ast.Length):
        return len(_string(term.source, env))
    if isinstance(term, ast.Contains):
        return _string(term.needle, env) in _string(term.haystack, env)
    if isinstance(term, ast.PrefixOf):
        return _string(term.string, env).startswith(_string(term.prefix, env))
    if isinstance(term, ast.SuffixOf):
        return _string(term.string, env).endswith(_string(term.suffix, env))
    if isinstance(term, ast.IndexOf):
        haystack = _string(term.haystack, env)
        needle = _string(term.needle, env)
        start = _int(term.start, env)
        if start < 0 or start > len(haystack):
            return -1
        return haystack.find(needle, start)
    if isinstance(term, ast.InRe):
        text = _string(term.string, env)
        tokens = regex_term_to_tokens(term.regex)
        return regex_matches(tokens, text)
    if isinstance(term, ast.Eq):
        return eval_term(term.lhs, env) == eval_term(term.rhs, env)
    if isinstance(term, ast.Not):
        return not _bool(term.operand, env)
    raise TheoryError(f"cannot evaluate term of this kind: {term!r}")


def eval_formula(formula: ast.Term, env: Env) -> bool:
    """Evaluate a Bool-sorted term."""
    value = eval_term(formula, env)
    if not isinstance(value, bool):
        raise TheoryError(f"formula evaluated to non-boolean {value!r}")
    return value


def _string(term: ast.Term, env: Env) -> str:
    value = eval_term(term, env)
    if not isinstance(value, str):
        raise TheoryError(f"expected a string value, got {value!r}")
    return value


def _int(term: ast.Term, env: Env) -> int:
    value = eval_term(term, env)
    if isinstance(value, bool) or not isinstance(value, int):
        raise TheoryError(f"expected an integer value, got {value!r}")
    return value


def _bool(term: ast.Term, env: Env) -> bool:
    value = eval_term(term, env)
    if not isinstance(value, bool):
        raise TheoryError(f"expected a boolean value, got {value!r}")
    return value


# --------------------------------------------------------------------- #
# regular-language lowering
# --------------------------------------------------------------------- #


def regex_term_to_tokens(term: ast.Term) -> List[RegexToken]:
    """Compile a ``re.*`` term to the subset token list.

    Supported shapes (anything else raises :class:`TheoryError`):

    * ``ReLit("abc")`` — a run of literal tokens;
    * ``ReRange("a", "z")`` — one class token;
    * ``ReUnion`` of single-character pieces — one class token;
    * ``RePlus`` of a single-token child — that token, plussed;
    * ``ReConcat`` — token concatenation.
    """
    if isinstance(term, ast.ReLit):
        if not term.value:
            raise TheoryError("empty str.to_re literal is not in the subset")
        return [RegexToken(frozenset(c)) for c in term.value]
    if isinstance(term, ast.ReRange):
        chars = frozenset(chr(c) for c in range(ord(term.lo), ord(term.hi) + 1))
        return [RegexToken(chars)]
    if isinstance(term, ast.ReUnion):
        chars: set = set()
        for part in term.parts:
            sub = regex_term_to_tokens(part)
            if len(sub) != 1 or sub[0].plus:
                raise TheoryError(
                    "re.union is only supported over single characters / ranges "
                    "(the paper's character classes)"
                )
            chars |= set(sub[0].chars)
        return [RegexToken(frozenset(chars))]
    if isinstance(term, ast.RePlus):
        sub = regex_term_to_tokens(term.child)
        if len(sub) != 1 or sub[0].plus:
            raise TheoryError("re.+ is only supported over a single literal/class")
        return [RegexToken(sub[0].chars, plus=True)]
    if isinstance(term, ast.ReConcat):
        out: List[RegexToken] = []
        for part in term.parts:
            out.extend(regex_term_to_tokens(part))
        return out
    raise TheoryError(f"unsupported regular-language term: {term!r}")
