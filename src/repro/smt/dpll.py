"""A compact CDCL SAT solver.

The boolean engine behind the DPLL(T) driver (paper §2.1: modern SMT
solvers pair a SAT core with theory solvers). Features the standard
modern-solver kit, scaled to this library's needs:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS-style activity heuristics with decay,
* Luby-sequence restarts.

Literal encoding: DIMACS-style nonzero integers; ``+v`` is variable ``v``
true, ``-v`` false. Variables are ``1..num_vars``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["CdclSolver", "DpllResult"]


@dataclass
class DpllResult:
    """Outcome of a SAT solve."""

    satisfiable: bool
    assignment: Dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0
    restarts: int = 0


class CdclSolver:
    """Conflict-driven clause learning over a CNF.

    Parameters
    ----------
    num_vars:
        Number of boolean variables (1-based).
    clauses:
        Iterable of clauses; each clause is a sequence of nonzero ints.
    """

    def __init__(self, num_vars: int, clauses: Sequence[Sequence[int]]) -> None:
        if num_vars < 0:
            raise ValueError(f"num_vars must be >= 0, got {num_vars}")
        self.num_vars = num_vars
        self.clauses: List[List[int]] = []
        self._empty_clause = False
        # assignment[v] in {None, True, False}
        self.assign: List[Optional[bool]] = [None] * (num_vars + 1)
        self.level: List[int] = [0] * (num_vars + 1)
        self.reason: List[Optional[int]] = [None] * (num_vars + 1)  # clause index
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.activity: List[float] = [0.0] * (num_vars + 1)
        self._var_inc = 1.0
        self._var_decay = 0.95
        # watches[lit] = clause indices watching lit
        self.watches: Dict[int, List[int]] = {}
        for clause in clauses:
            self._add_clause([int(l) for l in clause], learned=False)

    # ------------------------------------------------------------------ #
    # clause management
    # ------------------------------------------------------------------ #

    def _add_clause(self, literals: List[int], learned: bool) -> Optional[int]:
        for lit in literals:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} out of range for {self.num_vars} vars")
        # Deduplicate; drop tautologies.
        seen = set()
        unique: List[int] = []
        for lit in literals:
            if -lit in seen:
                return None  # tautology
            if lit not in seen:
                seen.add(lit)
                unique.append(lit)
        if not unique:
            self._empty_clause = True
            return None
        index = len(self.clauses)
        self.clauses.append(unique)
        if len(unique) == 1:
            # Unit clauses are enqueued at level 0 during solve().
            return index
        for lit in unique[:2]:
            self.watches.setdefault(lit, []).append(index)
        return index

    # ------------------------------------------------------------------ #
    # assignment helpers
    # ------------------------------------------------------------------ #

    def _value(self, lit: int) -> Optional[bool]:
        value = self.assign[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        current = self._value(lit)
        if current is not None:
            return current
        var = abs(lit)
        self.assign[var] = lit > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> Optional[int]:
        """Exhaust unit propagation; returns a conflicting clause index or None."""
        head = getattr(self, "_qhead", 0)
        while head < len(self.trail):
            lit = self.trail[head]
            head += 1
            falsified = -lit
            watching = self.watches.get(falsified, [])
            keep: List[int] = []
            i = 0
            while i < len(watching):
                ci = watching[i]
                i += 1
                clause = self.clauses[ci]
                # Ensure the falsified literal sits at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                if self._value(clause[0]) is True:
                    keep.append(ci)
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(clause[1], []).append(ci)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(ci)
                if self._value(clause[0]) is False:
                    # Conflict: restore remaining watchers and report.
                    keep.extend(watching[i:])
                    self.watches[falsified] = keep
                    self._qhead = len(self.trail)
                    return ci
                self._enqueue(clause[0], ci)
            self.watches[falsified] = keep
        self._qhead = head
        return None

    # ------------------------------------------------------------------ #
    # conflict analysis
    # ------------------------------------------------------------------ #

    def _analyze(self, conflict: int) -> tuple:
        """First-UIP learning; returns (learned_clause, backjump_level)."""
        learned: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        clause = self.clauses[conflict]
        index = len(self.trail) - 1
        current_level = len(self.trail_lim)

        while True:
            for l in clause:
                var = abs(l)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(l)
            # Walk the trail back to the next marked literal.
            while not seen[abs(self.trail[index])]:
                index -= 1
            lit = self.trail[index]
            index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            reason = self.reason[var]
            assert reason is not None
            clause = [l for l in self.clauses[reason] if abs(l) != var]
        learned.insert(0, -lit)
        if len(learned) == 1:
            return learned, 0
        levels = sorted({self.level[abs(l)] for l in learned[1:]}, reverse=True)
        return learned, levels[0]

    def _bump(self, var: int) -> None:
        self.activity[var] += self._var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _backjump(self, level: int) -> None:
        while len(self.trail_lim) > level:
            mark = self.trail_lim.pop()
            while len(self.trail) > mark:
                lit = self.trail.pop()
                var = abs(lit)
                self.assign[var] = None
                self.reason[var] = None
        self._qhead = len(self.trail)

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def solve(self, max_conflicts: Optional[int] = None) -> DpllResult:
        """Run CDCL to completion (or the conflict budget)."""
        if self._empty_clause:
            return DpllResult(satisfiable=False)
        self._qhead = 0
        conflicts = decisions = restarts = 0
        luby_index = 1
        restart_base = 64

        # Level-0 units.
        for ci, clause in enumerate(self.clauses):
            if len(clause) == 1:
                if self._value(clause[0]) is False:
                    return DpllResult(satisfiable=False, conflicts=conflicts)
                self._enqueue(clause[0], ci)

        restart_budget = restart_base * _luby(luby_index)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts += 1
                if max_conflicts is not None and conflicts > max_conflicts:
                    return DpllResult(satisfiable=False, conflicts=conflicts)
                if not self.trail_lim:
                    return DpllResult(
                        satisfiable=False,
                        conflicts=conflicts,
                        decisions=decisions,
                        restarts=restarts,
                    )
                learned, back_level = self._analyze(conflict)
                self._backjump(back_level)
                ci = self._add_clause(learned, learned=True)
                if ci is not None:
                    self._enqueue(learned[0], ci)
                self._var_inc /= self._var_decay
                if conflicts >= restart_budget:
                    restarts += 1
                    luby_index += 1
                    restart_budget = conflicts + restart_base * _luby(luby_index)
                    self._backjump(0)
                continue
            # Pick a branching variable (highest activity, then lowest index).
            candidate = 0
            best = -1.0
            for var in range(1, self.num_vars + 1):
                if self.assign[var] is None and self.activity[var] > best:
                    best = self.activity[var]
                    candidate = var
            if candidate == 0:
                assignment = {
                    v: bool(self.assign[v])
                    for v in range(1, self.num_vars + 1)
                    if self.assign[v] is not None
                }
                for v in range(1, self.num_vars + 1):
                    assignment.setdefault(v, False)
                return DpllResult(
                    satisfiable=True,
                    assignment=assignment,
                    conflicts=conflicts,
                    decisions=decisions,
                    restarts=restarts,
                )
            decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(-candidate, None)  # negative-phase default


def _luby(i: int) -> int:
    """The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    k = 1
    while (1 << (k + 1)) - 1 <= i:
        k += 1
    while i != (1 << k) - 1:
        i = i - (1 << k) + 1
        k = 1
        while (1 << (k + 1)) - 1 <= i:
            k += 1
    return 1 << (k - 1)
