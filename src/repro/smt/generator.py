"""Random instance generator for the strings fragment.

Produces satisfiable-by-construction SMT-LIB problems (plant a witness,
emit constraints it satisfies) and refutation instances, for fuzzing the
solvers against each other and for throughput benchmarking — the role the
paper's §2.1.1 assigns to SMT-LIB benchmark libraries.

Two operating modes:

* **legacy** (``ops=None``, the default): the historical five constraint
  shapes (contains / prefixof / suffixof / charat / indexof), drawn with
  the historical RNG consumption pattern, so existing seeds reproduce the
  exact same instances.
* **op-targeted** (``ops="all"`` or an explicit op list): constraints are
  drawn from the full §4.1–§4.12 operator set — equality, length, concat,
  contains, index-of, char-at, prefix/suffix, substr, replace /
  replace-all, reverse, regex membership, disequality, and ground
  includes — which is what the differential-verification campaigns in
  :mod:`repro.verify` fuzz over.

Scripts are rendered through :mod:`repro.smt.printer` and round-trip
exactly through :func:`repro.smt.parser.parse_script`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.smt import ast
from repro.smt.printer import render_assertion, render_script
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["InstanceGenerator", "GeneratedInstance", "ALL_OPS"]

_ALPHABET = "abcdefgh"

#: A character guaranteed never to occur in generated witnesses; used to
#: build replace constraints with a unique pattern occurrence.
_HOLE = "z"

#: Every constraint operator the generator can plant (§4.1–§4.12 coverage).
ALL_OPS: Tuple[str, ...] = (
    "equality",      # §4.1  x = "lit"
    "length",        # §4.3  (= (str.len x) n) as the only constraint
    "contains",      # §4.4  windows of the witness
    "indexof",       # §4.5  first occurrence of a witness character
    "charat",        # §4.6  pinned character
    "prefixof",      # §4.7  witness prefixes
    "suffixof",      # §4.7  witness suffixes
    "substr",        # §4.6  x = (str.substr padded i n)
    "concat",        # §4.8  x = (str.++ left right)
    "replace",       # §4.9  x = (str.replace source hole c)
    "replace_all",   # §4.9  x = (str.replace_all source hole c)
    "reverse",       # §4.10 x = (str.rev reversed-lit)
    "regex",         # §4.11 (str.in_re x ...)
    "notequals",     # §4.2  (not (= x other))
    "includes",      # §4.4  ground (str.contains witness window)
)

#: The historical five constraint picks, in legacy pick order.
_LEGACY_OPS: Tuple[str, ...] = (
    "contains", "prefixof", "suffixof", "charat", "indexof"
)


@dataclass
class GeneratedInstance:
    """A generated problem with its planted witness."""

    assertions: List[ast.Term]
    witness: dict
    script: str = ""
    satisfiable: bool = True
    #: Names of the constraint operators drawn for this instance.
    ops: List[str] = field(default_factory=list)
    #: Weighted mode only (``soft=k``): the drawn soft assertions, in
    #: script order; empty for plain decision instances.
    soft_assertions: List[ast.SoftAssertion] = field(default_factory=list)
    #: Session mode only: the expected status of each ``check-sat`` query
    #: in ``script`` order (``"sat"``/``"unsat"``); empty for single-query
    #: instances.
    expected_statuses: List[str] = field(default_factory=list)


class InstanceGenerator:
    """Draw random single-variable string problems.

    Parameters
    ----------
    min_length, max_length:
        Witness length range.
    max_constraints:
        Constraints per variable (a length fact is always included).
    ops:
        ``None`` for the historical five-shape mix, ``"all"`` for the full
        §4 operator set, or an explicit sequence of op names (a subset of
        :data:`ALL_OPS`).
    seed:
        RNG seed.
    sessions:
        ``None`` (the default) keeps the historical single-query output —
        the legacy RNG stream is byte-preserved. An int ``k >= 1`` switches
        :meth:`generate` to **session mode**: multi-frame push/pop scripts
        with exactly ``k`` ``check-sat`` queries and per-query expected
        statuses (for fuzzing incremental solving).
    soft:
        ``None``/``0`` (the default) generates plain decision instances.
        An int ``k >= 1`` appends ``k`` weighted ``assert-soft``
        constraints to every instance (for the :mod:`repro.opt` campaigns).
        Soft draws happen strictly **after** every legacy draw, so at a
        fixed seed the hard side of a weighted instance is byte-identical
        to the unweighted instance — the digest-pin test holds the legacy
        stream to that contract.
    """

    def __init__(
        self,
        min_length: int = 3,
        max_length: int = 8,
        max_constraints: int = 3,
        seed: SeedLike = None,
        ops: Optional[Sequence[str]] = None,
        sessions: Optional[int] = None,
        soft: Optional[int] = None,
    ) -> None:
        if not (1 <= min_length <= max_length):
            raise ValueError(
                f"need 1 <= min_length <= max_length, got {min_length}, {max_length}"
            )
        if max_constraints < 1:
            raise ValueError("max_constraints must be >= 1")
        self.min_length = min_length
        self.max_length = max_length
        self.max_constraints = max_constraints
        if ops is None:
            self.ops: Optional[Tuple[str, ...]] = None
        else:
            if isinstance(ops, str):
                if ops != "all":
                    raise ValueError(f"ops must be None, 'all' or a sequence, got {ops!r}")
                ops = ALL_OPS
            unknown = sorted(set(ops) - set(ALL_OPS))
            if unknown:
                raise ValueError(f"unknown ops {unknown}; choose from {list(ALL_OPS)}")
            if not ops:
                raise ValueError("ops must not be empty")
            self.ops = tuple(ops)
        if sessions is not None and sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {sessions}")
        if soft is not None and soft < 0:
            raise ValueError(f"soft must be >= 0, got {soft}")
        self.sessions = sessions
        self.soft = soft
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------ #

    def _random_word(self, length: int) -> str:
        codes = self._rng.integers(0, len(_ALPHABET), size=length)
        return "".join(_ALPHABET[int(c)] for c in codes)

    def generate(self, variable: str = "x") -> GeneratedInstance:
        """One instance: plant a witness, describe it.

        In session mode (``sessions=k``) the instance is a multi-frame
        push/pop script with ``k`` queries; see :meth:`_generate_session`.
        """
        if self.sessions is not None:
            return self._generate_session(variable)
        rng = self._rng
        length = int(rng.integers(self.min_length, self.max_length + 1))
        witness = self._random_word(length)
        var = ast.StrVar(variable)
        assertions: List[ast.Term] = [
            ast.Eq(ast.Length(var), ast.IntLit(length))
        ]
        ops_used: List[str] = ["length"]
        if self.ops is None:
            # Legacy mode: keep the historical RNG consumption pattern so
            # fixed seeds reproduce the exact pre-existing instances.
            picks = rng.integers(
                0, 5, size=int(rng.integers(1, self.max_constraints + 1))
            )
            for pick in picks:
                assertions.append(
                    self._constraint_from_witness(var, witness, int(pick))
                )
                ops_used.append(_LEGACY_OPS[int(pick)])
        else:
            count = int(rng.integers(1, self.max_constraints + 1))
            choices = rng.integers(0, len(self.ops), size=count)
            for choice in choices:
                op = self.ops[int(choice)]
                term = self._op_constraint(op, var, witness)
                if term is not None:
                    assertions.append(term)
                ops_used.append(op)
        # Soft draws come after every hard draw: the legacy stream prefix
        # (and therefore the hard side of the instance) is seed-stable.
        soft_assertions = self._draw_soft(var, witness) if self.soft else []
        script = render_script(
            assertions,
            {variable: ast.StringSort},
            soft_assertions=soft_assertions,
        )
        return GeneratedInstance(
            assertions=assertions,
            witness={variable: witness},
            script=script,
            ops=ops_used,
            soft_assertions=soft_assertions,
        )

    def generate_unsat(self, variable: str = "x") -> GeneratedInstance:
        """A refutation instance.

        Legacy mode keeps the historical shape (two incompatible
        equalities); op-targeted mode also draws conflicting pinned
        characters and an over-long containment window.
        """
        rng = self._rng
        length = int(rng.integers(self.min_length, self.max_length + 1))
        var = ast.StrVar(variable)
        shape = 0 if self.ops is None else int(rng.integers(0, 3))
        ops_used: List[str]
        if shape == 0:  # two incompatible equalities
            a = self._random_word(length)
            b = a
            while b == a:
                b = self._random_word(length)
            assertions = [
                ast.Eq(var, ast.StrLit(a)),
                ast.Eq(var, ast.StrLit(b)),
            ]
            ops_used = ["equality", "equality"]
        elif shape == 1:  # same position pinned to two characters
            index = int(rng.integers(0, length))
            c = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
            d = c
            while d == c:
                d = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
            assertions = [
                ast.Eq(ast.Length(var), ast.IntLit(length)),
                ast.Eq(ast.At(var, ast.IntLit(index)), ast.StrLit(c)),
                ast.Eq(ast.At(var, ast.IntLit(index)), ast.StrLit(d)),
            ]
            ops_used = ["length", "charat", "charat"]
        else:  # containment window longer than the pinned length
            needle = self._random_word(length + 1)
            assertions = [
                ast.Eq(ast.Length(var), ast.IntLit(length)),
                ast.Contains(var, ast.StrLit(needle)),
            ]
            ops_used = ["length", "contains"]
        # Weighted mode attaches softs to refutations too (the optimizer
        # must report infeasible no matter how much soft weight is dangled).
        soft_witness = self._random_word(length) if self.soft else ""
        soft_assertions = (
            self._draw_soft(var, soft_witness) if self.soft else []
        )
        return GeneratedInstance(
            assertions=assertions,
            witness={},
            script=render_script(
                assertions,
                {variable: ast.StringSort},
                soft_assertions=soft_assertions,
            ),
            satisfiable=False,
            ops=ops_used,
            soft_assertions=soft_assertions,
        )

    # ------------------------------------------------------------------ #
    # weighted mode: soft-constraint draws
    # ------------------------------------------------------------------ #

    def _draw_soft(
        self, var: ast.StrVar, witness: str
    ) -> List[ast.SoftAssertion]:
        """``self.soft`` weighted soft assertions around a witness.

        A mix of witness-agreeing and witness-disagreeing preferences, so
        the optimum is usually a genuine trade-off rather than "satisfy
        everything". Weights are small integers (render canonically).
        """
        rng = self._rng
        n = len(witness)
        softs: List[ast.SoftAssertion] = []
        for _ in range(int(self.soft or 0)):
            weight = int(rng.integers(1, 10))
            shape = int(rng.integers(0, 4))
            if shape == 0 and n:  # agree with the witness at one position
                index = int(rng.integers(0, n))
                term: ast.Term = ast.Eq(
                    ast.At(var, ast.IntLit(index)), ast.StrLit(witness[index])
                )
            elif shape == 1 and n:  # disagree at one position
                index = int(rng.integers(0, n))
                other = witness[index]
                while other == witness[index]:
                    other = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
                term = ast.Eq(
                    ast.At(var, ast.IntLit(index)), ast.StrLit(other)
                )
            elif shape == 2:  # prefer a whole different word
                term = ast.Eq(var, ast.StrLit(self._random_word(max(n, 1))))
            else:  # prefer containing a short window
                size = int(rng.integers(1, min(2, max(n, 1)) + 1))
                term = ast.Contains(var, ast.StrLit(self._random_word(size)))
            group = f"g{int(rng.integers(0, 2))}" if rng.random() < 0.25 else ""
            softs.append(ast.SoftAssertion(term, weight, group))
        return softs

    # ------------------------------------------------------------------ #
    # session mode: multi-frame push/pop scripts
    # ------------------------------------------------------------------ #

    def _witness_constraint(self, var: ast.StrVar, witness: str) -> Tuple[ast.Term, str]:
        """One random witness-satisfying constraint (term, op name)."""
        rng = self._rng
        if self.ops is None:
            pick = int(rng.integers(0, 5))
            return (
                self._constraint_from_witness(var, witness, pick),
                _LEGACY_OPS[pick],
            )
        while True:
            op = self.ops[int(rng.integers(0, len(self.ops)))]
            term = self._op_constraint(op, var, witness)
            if term is not None:
                return term, op

    def _generate_session(self, variable: str = "x") -> GeneratedInstance:
        """A multi-frame script with exactly ``self.sessions`` queries.

        The base frame plants a witness (length fact + witness-satisfying
        constraints), so query 0 expects ``sat``. Each further query first
        mutates the stack — push + satisfying extension, push + a planted
        contradiction (two equalities to distinct same-length words, unsat
        in any context), or pop — then checks. The expected status at each
        query is ``unsat`` iff a contradiction frame is live, which the
        frame bookkeeping tracks exactly.
        """
        rng = self._rng
        queries = int(self.sessions or 1)
        length = int(rng.integers(self.min_length, self.max_length + 1))
        witness = self._random_word(length)
        var = ast.StrVar(variable)
        base: List[ast.Term] = [ast.Eq(ast.Length(var), ast.IntLit(length))]
        ops_used: List[str] = ["length"]
        for _ in range(int(rng.integers(1, self.max_constraints + 1))):
            term, op = self._witness_constraint(var, witness)
            base.append(term)
            ops_used.append(op)

        lines: List[str] = [f"(declare-const {variable} String)"]
        lines.extend(render_assertion(term) for term in base)
        lines.append("(check-sat)")
        expected: List[str] = ["sat"]
        # One bool per frame above the base: does it plant a contradiction?
        contradicts: List[bool] = []
        for _ in range(queries - 1):
            action = int(rng.integers(0, 3))
            if action == 2 and contradicts:
                lines.append("(pop 1)")
                contradicts.pop()
            elif action == 1:
                # Planted contradiction: x equals two distinct words.
                a = self._random_word(length)
                b = a
                while b == a:
                    b = self._random_word(length)
                lines.append("(push 1)")
                lines.append(render_assertion(ast.Eq(var, ast.StrLit(a))))
                lines.append(render_assertion(ast.Eq(var, ast.StrLit(b))))
                contradicts.append(True)
                ops_used.extend(["equality", "equality"])
            else:
                term, op = self._witness_constraint(var, witness)
                lines.append("(push 1)")
                lines.append(render_assertion(term))
                contradicts.append(False)
                ops_used.append(op)
            lines.append("(check-sat)")
            expected.append("unsat" if any(contradicts) else "sat")
        return GeneratedInstance(
            assertions=base,
            witness={variable: witness},
            script="\n".join(lines) + "\n",
            satisfiable=expected[0] == "sat",
            ops=ops_used,
            expected_statuses=expected,
        )

    # ------------------------------------------------------------------ #
    # legacy constraint shapes (RNG-stable)
    # ------------------------------------------------------------------ #

    def _constraint_from_witness(
        self, var: ast.StrVar, witness: str, pick: int
    ) -> ast.Term:
        rng = self._rng
        n = len(witness)
        if pick == 0:  # contains a random window
            size = int(rng.integers(1, min(3, n) + 1))
            start = int(rng.integers(0, n - size + 1))
            return ast.Contains(var, ast.StrLit(witness[start : start + size]))
        if pick == 1:  # prefix
            size = int(rng.integers(1, n + 1))
            return ast.PrefixOf(ast.StrLit(witness[:size]), var)
        if pick == 2:  # suffix
            size = int(rng.integers(1, n + 1))
            return ast.SuffixOf(ast.StrLit(witness[-size:]), var)
        if pick == 3:  # char pinned
            index = int(rng.integers(0, n))
            return ast.Eq(
                ast.At(var, ast.IntLit(index)), ast.StrLit(witness[index])
            )
        # indexof of the first character's first occurrence
        char = witness[int(rng.integers(0, n))]
        return ast.Eq(
            ast.IndexOf(var, ast.StrLit(char)),
            ast.IntLit(witness.find(char)),
        )

    # ------------------------------------------------------------------ #
    # §4 operator constraint shapes
    # ------------------------------------------------------------------ #

    def _op_constraint(
        self, op: str, var: ast.StrVar, witness: str
    ) -> Optional[ast.Term]:
        """One witness-satisfying constraint of kind *op* (None = no-op)."""
        rng = self._rng
        n = len(witness)
        if op == "length":
            return None  # the length fact is always asserted separately
        if op == "equality":
            return ast.Eq(var, ast.StrLit(witness))
        if op in ("contains", "prefixof", "suffixof", "charat", "indexof"):
            return self._constraint_from_witness(
                var, witness, _LEGACY_OPS.index(op)
            )
        if op == "concat":
            if n < 2:
                return ast.Eq(var, ast.StrLit(witness))
            cut = int(rng.integers(1, n))
            return ast.Eq(
                var,
                ast.Concat(
                    (ast.StrLit(witness[:cut]), ast.StrLit(witness[cut:]))
                ),
            )
        if op == "replace":
            # Put a unique hole character at one position; replacing its
            # (first and only) occurrence restores the witness.
            index = int(rng.integers(0, n))
            source = witness[:index] + _HOLE + witness[index + 1 :]
            return ast.Eq(
                var,
                ast.Replace(
                    ast.StrLit(source),
                    ast.StrLit(_HOLE),
                    ast.StrLit(witness[index]),
                ),
            )
        if op == "replace_all":
            # Punch holes at every occurrence of one witness character;
            # replace-all refills them.
            char = witness[int(rng.integers(0, n))]
            source = witness.replace(char, _HOLE)
            return ast.Eq(
                var,
                ast.Replace(
                    ast.StrLit(source),
                    ast.StrLit(_HOLE),
                    ast.StrLit(char),
                    replace_all=True,
                ),
            )
        if op == "reverse":
            return ast.Eq(var, ast.Reverse(ast.StrLit(witness[::-1])))
        if op == "substr":
            pre = self._random_word(int(rng.integers(0, 3)))
            post = self._random_word(int(rng.integers(0, 3)))
            return ast.Eq(
                var,
                ast.Substr(
                    ast.StrLit(pre + witness + post),
                    ast.IntLit(len(pre)),
                    ast.IntLit(n),
                ),
            )
        if op == "regex":
            return ast.InRe(var, self._regex_for(witness))
        if op == "notequals":
            other = witness
            while other == witness:
                other = self._random_word(n)
            return ast.Not(ast.Eq(var, ast.StrLit(other)))
        if op == "includes":
            size = int(rng.integers(1, min(3, n) + 1))
            start = int(rng.integers(0, n - size + 1))
            return ast.Contains(
                ast.StrLit(witness), ast.StrLit(witness[start : start + size])
            )
        raise ValueError(f"unknown op {op!r}")

    def _regex_for(self, witness: str) -> ast.Term:
        """A regular-language term the witness is a member of.

        Per character: a literal, a range around it, or a two-character
        class; one piece is occasionally plussed (the plus then absorbs
        exactly one position at the witness length).
        """
        rng = self._rng
        pieces: List[ast.Term] = []
        for char in witness:
            kind = int(rng.integers(0, 3))
            if kind == 0:
                piece: ast.Term = ast.ReLit(char)
            elif kind == 1:
                lo = chr(max(ord(_ALPHABET[0]), ord(char) - int(rng.integers(0, 3))))
                hi = chr(min(ord(_ALPHABET[-1]), ord(char) + int(rng.integers(0, 3))))
                piece = ast.ReRange(lo, hi)
            else:
                other = char
                while other == char:
                    other = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
                piece = ast.ReUnion((ast.ReLit(char), ast.ReLit(other)))
            if rng.random() < 0.2:
                piece = ast.RePlus(piece)
            pieces.append(piece)
        if len(pieces) == 1:
            return pieces[0]
        return ast.ReConcat(tuple(pieces))
