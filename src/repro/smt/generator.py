"""Random instance generator for the strings fragment.

Produces satisfiable-by-construction SMT-LIB problems (plant a witness,
emit constraints it satisfies) and refutation instances, for fuzzing the
solvers against each other and for throughput benchmarking — the role the
paper's §2.1.1 assigns to SMT-LIB benchmark libraries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.smt import ast
from repro.utils.asciitab import PRINTABLE_MAX, PRINTABLE_MIN
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["InstanceGenerator", "GeneratedInstance"]

_ALPHABET = "abcdefgh"


@dataclass
class GeneratedInstance:
    """A generated problem with its planted witness."""

    assertions: List[ast.Term]
    witness: dict
    script: str = ""
    satisfiable: bool = True


class InstanceGenerator:
    """Draw random single-variable string problems.

    Parameters
    ----------
    min_length, max_length:
        Witness length range.
    max_constraints:
        Constraints per variable (a length fact is always included).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        min_length: int = 3,
        max_length: int = 8,
        max_constraints: int = 3,
        seed: SeedLike = None,
    ) -> None:
        if not (1 <= min_length <= max_length):
            raise ValueError(
                f"need 1 <= min_length <= max_length, got {min_length}, {max_length}"
            )
        if max_constraints < 1:
            raise ValueError("max_constraints must be >= 1")
        self.min_length = min_length
        self.max_length = max_length
        self.max_constraints = max_constraints
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------ #

    def _random_word(self, length: int) -> str:
        codes = self._rng.integers(0, len(_ALPHABET), size=length)
        return "".join(_ALPHABET[int(c)] for c in codes)

    def generate(self, variable: str = "x") -> GeneratedInstance:
        """One satisfiable instance: plant a witness, describe it."""
        rng = self._rng
        length = int(rng.integers(self.min_length, self.max_length + 1))
        witness = self._random_word(length)
        var = ast.StrVar(variable)
        assertions: List[ast.Term] = [
            ast.Eq(ast.Length(var), ast.IntLit(length))
        ]
        picks = rng.integers(0, 5, size=int(rng.integers(1, self.max_constraints + 1)))
        for pick in picks:
            assertions.append(self._constraint_from_witness(var, witness, int(pick)))
        script = self._to_script(variable, assertions)
        return GeneratedInstance(
            assertions=assertions, witness={variable: witness}, script=script
        )

    def generate_unsat(self, variable: str = "x") -> GeneratedInstance:
        """A refutation instance: two incompatible equalities."""
        length = int(self._rng.integers(self.min_length, self.max_length + 1))
        a = self._random_word(length)
        b = a
        while b == a:
            b = self._random_word(length)
        var = ast.StrVar(variable)
        assertions = [
            ast.Eq(var, ast.StrLit(a)),
            ast.Eq(var, ast.StrLit(b)),
        ]
        return GeneratedInstance(
            assertions=assertions,
            witness={},
            script=self._to_script(variable, assertions),
            satisfiable=False,
        )

    # ------------------------------------------------------------------ #

    def _constraint_from_witness(
        self, var: ast.StrVar, witness: str, pick: int
    ) -> ast.Term:
        rng = self._rng
        n = len(witness)
        if pick == 0:  # contains a random window
            size = int(rng.integers(1, min(3, n) + 1))
            start = int(rng.integers(0, n - size + 1))
            return ast.Contains(var, ast.StrLit(witness[start : start + size]))
        if pick == 1:  # prefix
            size = int(rng.integers(1, n + 1))
            return ast.PrefixOf(ast.StrLit(witness[:size]), var)
        if pick == 2:  # suffix
            size = int(rng.integers(1, n + 1))
            return ast.SuffixOf(ast.StrLit(witness[-size:]), var)
        if pick == 3:  # char pinned
            index = int(rng.integers(0, n))
            return ast.Eq(
                ast.At(var, ast.IntLit(index)), ast.StrLit(witness[index])
            )
        # indexof of the first character's first occurrence
        char = witness[int(rng.integers(0, n))]
        return ast.Eq(
            ast.IndexOf(var, ast.StrLit(char)),
            ast.IntLit(witness.find(char)),
        )

    @staticmethod
    def _to_script(variable: str, assertions: List[ast.Term]) -> str:
        """Render the instance as SMT-LIB text (for the REPL/bench paths)."""
        lines = [f"(declare-const {variable} String)"]
        for assertion in assertions:
            lines.append(f"(assert {_render(assertion)})")
        lines.append("(check-sat)")
        return "\n".join(lines)


def _render(term: ast.Term) -> str:
    """Minimal SMT-LIB printer for the generated fragment."""
    if isinstance(term, ast.StrVar):
        return term.name
    if isinstance(term, ast.StrLit):
        return '"' + term.value.replace('"', '""') + '"'
    if isinstance(term, ast.IntLit):
        return str(term.value)
    if isinstance(term, ast.Length):
        return f"(str.len {_render(term.source)})"
    if isinstance(term, ast.Contains):
        return f"(str.contains {_render(term.haystack)} {_render(term.needle)})"
    if isinstance(term, ast.PrefixOf):
        return f"(str.prefixof {_render(term.prefix)} {_render(term.string)})"
    if isinstance(term, ast.SuffixOf):
        return f"(str.suffixof {_render(term.suffix)} {_render(term.string)})"
    if isinstance(term, ast.At):
        return f"(str.at {_render(term.source)} {_render(term.index)})"
    if isinstance(term, ast.IndexOf):
        return (
            f"(str.indexof {_render(term.haystack)} {_render(term.needle)} "
            f"{_render(term.start)})"
        )
    if isinstance(term, ast.Eq):
        return f"(= {_render(term.lhs)} {_render(term.rhs)})"
    if isinstance(term, ast.Not):
        return f"(not {_render(term.operand)})"
    raise TypeError(f"no printer for {term!r}")
