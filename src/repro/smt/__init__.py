"""SMT front end, classical baselines, and DPLL(T) machinery.

The paper positions its QUBO solver as an alternative theory engine for
SMT solving over strings (§1, §2.1). This subpackage supplies everything
around the QUBO core that a real solver needs:

* :mod:`~repro.smt.sexpr` / :mod:`~repro.smt.parser` — an SMT-LIB 2.6
  reader for the strings fragment (``declare-const``, ``assert`` over
  ``str.++ str.len str.contains str.indexof str.replace str.replace_all
  str.rev str.in_re`` and the ``re.*`` regex constructors).
* :mod:`~repro.smt.ast` / :mod:`~repro.smt.theory` — typed terms and their
  concrete SMT-LIB semantics (used to check models).
* :mod:`~repro.smt.compiler` — lowers assertions to the paper's §4
  formulations, summing QUBOs when several constraints bind one variable.
* :mod:`~repro.smt.solver` — :class:`QuantumSMTSolver`, the user-facing
  check-sat / get-model facade.
* :mod:`~repro.smt.classical` — a classical baseline string solver
  (propagation + backtracking enumeration).
* :mod:`~repro.smt.dpll` / :mod:`~repro.smt.dpllt` — a CDCL SAT core and a
  DPLL(T) driver using the string theory as its T-solver.
"""

from repro.smt.ast import (
    BoolSort,
    Concat,
    Contains,
    Eq,
    IndexOf,
    IntLit,
    IntSort,
    InRe,
    Length,
    Not,
    ReConcat,
    ReLit,
    RePlus,
    ReRange,
    ReUnion,
    Replace,
    Reverse,
    StringSort,
    StrLit,
    StrVar,
)
from repro.smt.sexpr import SExprError, Symbol, parse_sexprs
from repro.smt.status import SolveStatus
from repro.smt.theory import TheoryError, eval_formula, eval_term
from repro.smt.parser import ParseError, SmtScript, parse_script
from repro.smt.printer import render_assertion, render_script, render_term
from repro.smt.compiler import CompilationError, CompiledProblem, compile_assertions
from repro.smt.solver import QuantumSMTSolver, SmtResult
from repro.smt.classical import ClassicalStringSolver
from repro.smt.dpll import CdclSolver, DpllResult
from repro.smt.dpllt import DpllTSolver
from repro.smt.generator import ALL_OPS, GeneratedInstance, InstanceGenerator
from repro.smt.refine import (
    RefinementEngine,
    RefineStats,
    UnsoundPropagationError,
)
from repro.smt.session import SolverSession

__all__ = [
    "ALL_OPS",
    "BoolSort",
    "CdclSolver",
    "ClassicalStringSolver",
    "CompilationError",
    "CompiledProblem",
    "Concat",
    "GeneratedInstance",
    "InstanceGenerator",
    "Contains",
    "DpllResult",
    "DpllTSolver",
    "Eq",
    "IndexOf",
    "InRe",
    "IntLit",
    "IntSort",
    "Length",
    "Not",
    "ParseError",
    "QuantumSMTSolver",
    "ReConcat",
    "ReLit",
    "RefineStats",
    "RefinementEngine",
    "RePlus",
    "ReRange",
    "ReUnion",
    "Replace",
    "Reverse",
    "SExprError",
    "SmtResult",
    "SmtScript",
    "SolveStatus",
    "SolverSession",
    "UnsoundPropagationError",
    "StringSort",
    "StrLit",
    "StrVar",
    "Symbol",
    "TheoryError",
    "compile_assertions",
    "eval_formula",
    "eval_term",
    "parse_script",
    "parse_sexprs",
    "render_assertion",
    "render_script",
    "render_term",
]
