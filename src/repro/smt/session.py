"""Incremental push/pop solving sessions (SMT-LIB assertion stacks).

A :class:`SolverSession` holds a **frame stack** of assertion groups —
``(push n)`` opens frames, ``(pop n)`` discards them, declarations persist
across pops (common solver practice, matching
:meth:`~repro.smt.solver.QuantumSMTSolver.run_script_text`) — and answers
``check-sat`` for the *flattened* stack at its current depth.

Compilation discipline (see DESIGN.md Appendix H)
-------------------------------------------------

Every distinct frame-stack state compiles **once** per content hash:
``check_sat`` keys the flattened conjunction with
:func:`~repro.service.cache.compile_cache_key` and compiles through a
shared :class:`~repro.service.cache.CompileCache`, memoizing the full
:class:`~repro.smt.solver.SmtResult` per state key. Popping frames
invalidates nothing — the popped state's compiled problem and result stay
cached — so re-pushing the identical frame is a pure cache hit: no
recompile, no re-anneal. This is the delta contract the incremental
architecture needs; it deliberately operates at frame-*state* granularity
rather than per-frame QUBO deltas, because the compiler draws sequential
per-constraint RNG seeds and infers variable lengths per conjunction
(compiling a frame alone is neither bit-identical to, nor always possible
without, the frames below it).

Correctness contract
--------------------

In the default (exact) mode, a session ``check_sat`` at any depth is
**bit-identical** to a fresh :class:`QuantumSMTSolver` given the flattened
frame stack at the same seed: same status, same model, same per-variable
energies. The session builds a fresh solver per (uncached) check — solver
instances advance a live per-solve RNG, so reuse would drift — and the
property suite (``tests/properties/test_property_session.py``) pins the
equivalence over random push/assert/pop/check interleavings across the
serial, thread and process backends.

``warm_start=True`` trades that bit-identity for repeat-solve speed (the
documented break, Appendix H): a check first tries to *verify the previous
frame's satisfying assignment* against the new conjunction (sound — the
model is re-evaluated under the concrete semantics before ``sat`` is
reported, no annealing involved), and otherwise seeds the annealer's
``initial_states`` with that assignment, which changes downstream RNG
consumption relative to a cold solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.encoding import encode_string
from repro.utils.asciitab import CHAR_BITS
from repro.service.cache import CompileCache, LruCache, compile_cache_key
from repro.service.metrics import MetricsRegistry
from repro.service.policy import RetryPolicy
from repro.smt import ast
from repro.smt.compiler import CompilationError
from repro.smt.parser import SmtScript, parse_script
from repro.smt.solver import QuantumSMTSolver, SmtResult
from repro.smt.status import SolveStatus
from repro.smt.theory import TheoryError, eval_formula

__all__ = [
    "SessionError",
    "SessionStats",
    "SolverSession",
    "iter_check_states",
    "run_session_script",
]


class SessionError(ValueError):
    """An operation outside the assertion-stack contract (pop below 0, ...)."""


@dataclass
class SessionStats:
    """Point-in-time counters of one session's incremental behaviour."""

    checks: int = 0
    #: Weighted-MaxSMT optimize() calls at any depth.
    optimizes: int = 0
    #: Checks answered from the per-state result memo (re-push fast path).
    memo_hits: int = 0
    #: optimize() calls answered from the weighted-state memo.
    opt_memo_hits: int = 0
    #: Compiles answered by the shared CompileCache without recompiling.
    compile_hits: int = 0
    compile_misses: int = 0
    #: Warm-mode checks answered by re-verifying the previous model.
    warm_hits: int = 0
    pushes: int = 0
    pops: int = 0
    asserts: int = 0


class SolverSession:
    """An incremental solving session over a frame stack of assertions.

    Parameters
    ----------
    num_reads, seed, sampler_params, max_attempts, penalty_strength,
    retry_policy, metrics:
        Solver configuration, forwarded to the fresh
        :class:`~repro.smt.solver.QuantumSMTSolver` each uncached check
        builds. ``seed`` should be an int (or None) — live RNG objects
        defeat both caches.
    sampler_factory:
        Optional zero-arg callable building the sampler per check (the
        server's fault-injection hook).
    cache:
        Shared :class:`~repro.service.cache.CompileCache`; one is created
        per session when omitted. Sharing one across sessions lets
        structurally identical frame states hit across session boundaries.
    memo_size:
        Entries in the per-session state-key → :class:`SmtResult` memo.
    warm_start:
        Opt into the previous-model fast path and ``initial_states``
        seeding (see the module docstring for the bit-identity caveat).
    strategy, refine_max_rounds:
        Solve strategy per check: ``"direct"`` or ``"refine"`` (the CEGAR
        loop of :mod:`repro.smt.refine`). Refined checks compile their
        lemma-frame states through this session's shared
        :class:`~repro.service.cache.CompileCache`, so lemma states
        learned in one check delta-compile for free in later ones.
    """

    def __init__(
        self,
        *,
        num_reads: int = 64,
        seed: Optional[int] = None,
        sampler_params: Optional[Dict[str, Any]] = None,
        max_attempts: int = 3,
        penalty_strength: float = 1.0,
        retry_policy: Optional[RetryPolicy] = None,
        sampler_factory: Optional[Callable[[], Any]] = None,
        cache: Optional[CompileCache] = None,
        memo_size: int = 256,
        warm_start: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        strategy: str = "direct",
        refine_max_rounds: int = 4,
        opt_max_restarts: int = 4,
        opt_deadline_ms: Optional[float] = None,
        opt_exhaustive_bits: int = 16,
    ) -> None:
        if strategy not in ("direct", "refine"):
            raise SessionError(
                f"strategy must be 'direct' or 'refine', got {strategy!r}"
            )
        self.num_reads = num_reads
        self.seed = seed
        self.sampler_params = dict(sampler_params or {})
        self.max_attempts = max_attempts
        self.penalty_strength = penalty_strength
        self.retry_policy = retry_policy
        self.sampler_factory = sampler_factory
        self.cache = cache if cache is not None else CompileCache(maxsize=256)
        self.warm_start = warm_start
        self.metrics = metrics
        self.strategy = strategy
        self.refine_max_rounds = refine_max_rounds
        self.opt_max_restarts = opt_max_restarts
        self.opt_deadline_ms = opt_deadline_ms
        self.opt_exhaustive_bits = opt_exhaustive_bits
        self.declarations: Dict[str, Any] = {}
        self._frames: List[List[ast.Term]] = [[]]
        self._soft_frames: List[List[ast.SoftAssertion]] = [[]]
        self._memo = LruCache(maxsize=memo_size)
        self._opt_memo = LruCache(maxsize=memo_size)
        self._warm_model: Optional[Dict[str, str]] = None
        self.stats = SessionStats()
        self._last: Optional[SmtResult] = None

    # ------------------------------------------------------------------ #
    # the frame stack
    # ------------------------------------------------------------------ #

    @property
    def depth(self) -> int:
        """Current push depth (0 = only the base frame)."""
        return len(self._frames) - 1

    def flattened(self) -> List[ast.Term]:
        """The asserted conjunction at the current depth, oldest first."""
        return [term for frame in self._frames for term in frame]

    def flattened_soft(self) -> List[ast.SoftAssertion]:
        """The soft assertions at the current depth, oldest first."""
        return [soft for frame in self._soft_frames for soft in frame]

    def push(self, levels: int = 1) -> int:
        """Open *levels* new frames; returns the new depth."""
        if levels < 0:
            raise SessionError(f"push levels must be >= 0, got {levels}")
        for _ in range(levels):
            self._frames.append([])
            self._soft_frames.append([])
        self.stats.pushes += levels
        return self.depth

    def pop(self, levels: int = 1) -> int:
        """Discard *levels* frames; returns the new depth.

        Popping **never** invalidates caches: the discarded state's
        compiled problem and memoized result remain, so re-pushing the
        identical frame is answered without recompilation.
        """
        if levels < 0:
            raise SessionError(f"pop levels must be >= 0, got {levels}")
        if levels > self.depth:
            raise SessionError(
                f"pop {levels} exceeds the assertion-stack depth {self.depth}"
            )
        for _ in range(levels):
            self._frames.pop()
            self._soft_frames.pop()
        self.stats.pops += levels
        self._last = None
        return self.depth

    def declare_const(self, name: str, sort: Any = ast.StringSort) -> ast.StrVar:
        """Declare a constant (persists across pops, like real solvers)."""
        if name in self.declarations:
            if self.declarations[name] is sort:
                return ast.StrVar(name)
            raise SessionError(f"conflicting re-declaration of {name!r}")
        self.declarations[name] = sort
        return ast.StrVar(name)

    def assert_term(self, term: ast.Term) -> None:
        """Add one assertion to the top frame."""
        self._frames[-1].append(term)
        self.stats.asserts += 1
        self._last = None

    def assert_soft(
        self, term: ast.Term, weight: float = 1.0, group: str = ""
    ) -> None:
        """Add one weighted soft assertion to the top frame.

        Soft assertions pop with their frame like hard ones, but never
        influence :meth:`check_sat` — satisfiability is decided on the
        hard conjunction alone; softs only shape :meth:`optimize`.
        """
        soft = (
            term
            if isinstance(term, ast.SoftAssertion)
            else ast.SoftAssertion(term=term, weight=weight, group=group)
        )
        self._soft_frames[-1].append(soft)
        self.stats.asserts += 1

    def assert_text(self, fragment: str) -> int:
        """Parse an SMT-LIB fragment of ``declare-const``/``assert``/
        ``assert-soft`` commands against the session's declarations and
        apply it to the top frame; returns the number of assertions added."""
        script = parse_script(fragment, initial_declarations=self.declarations)
        added = 0
        for command, payload in script.commands:
            if command == "declare-const":
                name, _sort_name = payload
                self.declarations[name] = script.declarations[name]
            elif command == "assert":
                self.assert_term(payload)
                added += 1
            elif command == "assert-soft":
                self.assert_soft(payload)
                added += 1
            else:
                raise SessionError(
                    f"only declare-const/assert/assert-soft are allowed in "
                    f"an assert fragment, got {command!r}"
                )
        return added

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #

    def state_key(self) -> str:
        """Content hash of the current flattened frame-stack state.

        Hard assertions only — soft assertions never influence
        ``check_sat``, so the sat-side key (and with it the re-push memo
        and the shared compile cache) stays byte-identical to a session
        that never asserted a soft constraint.
        """
        return compile_cache_key(
            self.flattened(), self.penalty_strength, self.seed
        )

    def opt_state_key(self) -> str:
        """Content hash of the weighted frame-stack state (hard + soft)."""
        return compile_cache_key(
            self.flattened(),
            self.penalty_strength,
            self.seed,
            soft=self.flattened_soft(),
        )

    def _new_solver(self) -> QuantumSMTSolver:
        sampler = self.sampler_factory() if self.sampler_factory else None
        solver = QuantumSMTSolver(
            sampler=sampler,
            num_reads=self.num_reads,
            seed=self.seed,
            sampler_params=self.sampler_params,
            max_attempts=self.max_attempts,
            penalty_strength=self.penalty_strength,
            retry_policy=self.retry_policy,
            metrics=self.metrics,
            strategy=self.strategy,
            refine_max_rounds=self.refine_max_rounds,
            compile_cache=self.cache,
        )
        solver.declarations = dict(self.declarations)
        return solver

    def check_sat(self) -> SmtResult:
        """Decide the flattened stack at the current depth.

        Resolution order: per-state result memo (re-push hit) → warm-model
        re-verification (``warm_start`` only) → compile through the shared
        cache and anneal with a fresh solver.
        """
        self.stats.checks += 1
        flattened = self.flattened()
        key = self.state_key()
        cached = self._memo.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            return self._finish(cached)

        if self.warm_start:
            warm = self._try_warm_model(flattened)
            if warm is not None:
                self.stats.warm_hits += 1
                self._memo.put(key, warm)
                return self._finish(warm)

        solver = self._new_solver()
        solver.assertions = list(flattened)
        try:
            problem, hit = self.cache.get_or_compile(
                flattened,
                penalty_strength=self.penalty_strength,
                seed=self.seed,
                compile_fn=solver.compile,
            )
        except CompilationError as exc:
            result = SmtResult(
                status=SolveStatus.UNKNOWN, reason=f"compilation: {exc}"
            )
            self._memo.put(key, result)
            return self._finish(result)
        if hit:
            self.stats.compile_hits += 1
        else:
            self.stats.compile_misses += 1

        solve_params: Dict[str, Any] = {}
        if self.warm_start and self._warm_model:
            warm_states = self._warm_states_for(problem)
            if warm_states:
                solve_params["warm_states"] = warm_states
        result = solver.solve_compiled(problem, **solve_params)
        self._memo.put(key, result)
        return self._finish(result)

    def optimize(self, **solve_params: Any) -> Any:
        """Weighted-MaxSMT optimization of the current frame-stack state.

        Minimizes the total violated soft weight subject to the hard
        conjunction via :class:`repro.opt.AnytimeOptimizer`, configured
        with this session's solver settings and ``opt_*`` budgets.
        Results are memoized per weighted state key (hard + soft), so a
        popped-and-re-pushed weighted state is answered without
        re-annealing — the same delta contract as :meth:`check_sat`.
        Returns an :class:`~repro.opt.result.OptimizeResult`.
        """
        from repro.opt import AnytimeOptimizer

        self.stats.optimizes += 1
        key = self.opt_state_key()
        cached = self._opt_memo.get(key)
        if cached is not None:
            self.stats.opt_memo_hits += 1
            return cached
        sampler = self.sampler_factory() if self.sampler_factory else None
        optimizer = AnytimeOptimizer(
            sampler=sampler,
            num_reads=self.num_reads,
            seed=self.seed,
            sampler_params=self.sampler_params,
            penalty_strength=self.penalty_strength,
            max_restarts=self.opt_max_restarts,
            deadline_ms=self.opt_deadline_ms,
            exhaustive_bits=self.opt_exhaustive_bits,
            metrics=self.metrics,
        )
        result = optimizer.optimize(
            self.flattened(), self.flattened_soft(), **solve_params
        )
        self._opt_memo.put(key, result)
        return result

    def _finish(self, result: SmtResult) -> SmtResult:
        if result.status is SolveStatus.SAT:
            self._warm_model = dict(result.model)
        self._last = result
        return result

    def get_model(self) -> Dict[str, str]:
        """The model of the last ``sat`` answer at the current depth."""
        if self._last is None:
            raise RuntimeError("call check_sat() first")
        if self._last.status is not SolveStatus.SAT:
            raise RuntimeError(
                f"no model: last status was {self._last.status.value!r}"
            )
        return dict(self._last.model)

    # ------------------------------------------------------------------ #
    # warm start
    # ------------------------------------------------------------------ #

    def _try_warm_model(
        self, flattened: Sequence[ast.Term]
    ) -> Optional[SmtResult]:
        """A verified ``sat`` from the previous model, or None.

        Sound by construction: the previous frame's satisfying assignment
        is re-evaluated against every assertion of the *new* conjunction
        under the concrete semantics; only a full pass reports ``sat``.
        """
        model = self._warm_model
        if not model:
            return None
        free: set = set()
        for assertion in flattened:
            free |= ast.free_string_variables(assertion)
        if not free or not free.issubset(model.keys()):
            return None
        projected = {name: model[name] for name in sorted(free)}
        try:
            if not all(eval_formula(a, projected) for a in flattened):
                return None
        except TheoryError:
            return None
        return SmtResult(
            status=SolveStatus.SAT,
            model=projected,
            reason="warm-start: previous model re-verified",
        )

    def _warm_states_for(self, problem: Any) -> Dict[str, np.ndarray]:
        """Per-variable annealer starting states from the previous model.

        The encoded previous value fills the string-bit prefix of each
        formulation's variable vector; auxiliary bits start at zero. The
        sampler broadcasts the 1-d vector to every read.
        """
        states: Dict[str, np.ndarray] = {}
        model = self._warm_model or {}
        for variable, formulation in getattr(
            problem, "formulations", {}
        ).items():
            value = model.get(variable)
            if value is None:
                continue
            num_variables = formulation.build_model().num_variables
            state = np.zeros(num_variables, dtype=np.int8)
            bits = encode_string(value)
            prefix = min(len(bits), num_variables)
            if prefix and len(value) * CHAR_BITS == len(bits):
                state[:prefix] = bits[:prefix]
                states[variable] = state
        return states

    # ------------------------------------------------------------------ #
    # script execution
    # ------------------------------------------------------------------ #

    def run_script(self, script: SmtScript) -> List[SmtResult]:
        """Execute a parsed script's commands; one result per check-sat.

        ``get-model``/``get-value``/``echo``/``set-*`` commands are
        tolerated and skipped — the session's callers consume
        :class:`SmtResult` objects, not printed output.
        """
        for name, sort in script.declarations.items():
            if name not in self.declarations:
                self.declarations[name] = sort
        results: List[SmtResult] = []
        for command, payload in script.commands:
            if command == "assert":
                self.assert_term(payload)
            elif command == "assert-soft":
                self.assert_soft(payload)
            elif command == "push":
                self.push(payload)
            elif command == "pop":
                self.pop(payload)
            elif command == "check-sat":
                results.append(self.check_sat())
            elif command == "exit":
                break
        return results

    def run_script_text(self, text: str) -> List[SmtResult]:
        """Parse and :meth:`run_script` an SMT-LIB source string."""
        return self.run_script(
            parse_script(text, initial_declarations=self.declarations)
        )


# --------------------------------------------------------------------- #
# stack-walking helpers (shared with repro.verify and the perf suite)
# --------------------------------------------------------------------- #


def iter_check_states(
    script: SmtScript,
) -> Iterator[Tuple[int, List[ast.Term]]]:
    """Yield ``(query_index, flattened_assertions)`` per ``check-sat``.

    Walks the command sequence with assertion-stack semantics — the
    flattened list at each yield is exactly what a fresh solver must be
    given to reproduce that query. Raises :class:`SessionError` on a pop
    below depth 0 (mirroring :class:`SolverSession`).
    """
    frames: List[List[ast.Term]] = [[]]
    index = 0
    for command, payload in script.commands:
        if command == "assert":
            frames[-1].append(payload)
        elif command == "push":
            for _ in range(payload):
                frames.append([])
        elif command == "pop":
            if payload > len(frames) - 1:
                raise SessionError(
                    f"pop {payload} exceeds the assertion-stack depth "
                    f"{len(frames) - 1}"
                )
            for _ in range(payload):
                frames.pop()
        elif command == "check-sat":
            yield index, [term for frame in frames for term in frame]
            index += 1
        elif command == "exit":
            return


def run_session_script(
    text: str, session: Optional[SolverSession] = None, **session_kwargs: Any
) -> List[SmtResult]:
    """Run a multi-query SMT-LIB script through a (possibly fresh) session."""
    if session is None:
        session = SolverSession(**session_kwargs)
    return session.run_script_text(text)
