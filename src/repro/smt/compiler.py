"""Lowering SMT assertions to the paper's §4 QUBO formulations.

The compiler partitions assertions into

* **ground** assertions (no free string variables) — decided concretely by
  the theory evaluator; a false one makes the whole problem unsat. Ground
  ``str.contains`` assertions additionally get a
  :class:`~repro.core.includes.StringIncludes` QUBO so the quantum decision
  path can be exercised and benchmarked;
* **single-variable** assertions — compiled to formulations. Several
  constraints on one variable become a :class:`CompositeFormulation` whose
  QUBO is the *sum* of the member QUBOs (conjunction of soft objectives),
  the conjunctive counterpart of the paper's sequential §4.12 pipeline;
* **multi-variable** assertions — outside the supported fragment; a
  :class:`CompilationError` explains why.

Length inference: generation formulations need the output length. Exact
lengths come from ``str.len`` equalities and ground right-hand sides;
``str.contains`` and ``str.in_re`` provide lower bounds used when nothing
pins the length exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.affixes import (
    StringCharAt,
    StringPrefixOf,
    StringSubstr,
    StringSuffixOf,
)
from repro.core.concat import StringConcatenation
from repro.core.equality import StringEquality
from repro.core.formulation import StringFormulation
from repro.core.includes import StringIncludes
from repro.core.indexof import SubstringIndexOf
from repro.core.length import StringLength
from repro.core.notequals import StringNotEquals
from repro.core.regex import RegexMatching, expand_to_length
from repro.core.replace import StringReplace, StringReplaceAll
from repro.core.reverse import StringReversal
from repro.core.substring import SubstringMatching
from repro.qubo.algebra import add_models
from repro.qubo.model import QuboModel
from repro.smt import ast
from repro.smt.theory import TheoryError, eval_formula, eval_term, regex_term_to_tokens
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["CompilationError", "CompiledProblem", "CompositeFormulation", "compile_assertions"]


class CompilationError(ValueError):
    """Assertion outside the supported QUBO fragment."""


class CompositeFormulation(StringFormulation):
    """Conjunction of constraints on one variable: the sum of their QUBOs.

    All children share the same string-bit prefix (variables ``0..7n-1``
    encode the string in every §4 formulation); children carrying
    *auxiliary* variables beyond the string bits (e.g.
    :class:`~repro.core.notequals.StringNotEquals`'s AND chain) have those
    blocks relabelled onto disjoint fresh indices before summing.
    """

    name = "composite"

    def __init__(self, variable: str, children: List[StringFormulation]) -> None:
        if not children:
            raise CompilationError(f"no constraints to combine for {variable!r}")
        super().__init__(penalty_strength=children[0].penalty_strength)
        self.variable = variable
        self.children = list(children)
        # Children that carry auxiliary bits advertise their true string
        # prefix via ``num_string_bits``; for the rest the model width IS
        # the prefix. Taking the min over raw widths alone mis-sizes the
        # prefix when *every* child has ancillas (e.g. two not-equals
        # constraints on one variable) and decode then slices aux bits
        # into the string.
        self.string_bits = min(
            getattr(c, "num_string_bits", None) or c.build_model().num_variables
            for c in children
        )

    def _build(self) -> QuboModel:
        from repro.qubo.algebra import relabel_variables

        widths = [child.build_model().num_variables for child in self.children]
        total = self.string_bits + sum(w - self.string_bits for w in widths)
        combined = QuboModel(total)
        next_aux = self.string_bits
        for child, width in zip(self.children, widths):
            mapping = {i: i for i in range(self.string_bits)}
            for j in range(self.string_bits, width):
                mapping[j] = next_aux
                next_aux += 1
            combined = add_models(
                combined, relabel_variables(child.build_model(), mapping, total)
            )
        return combined

    def decode(self, state) -> str:
        import numpy as np

        from repro.core.encoding import state_to_string

        return state_to_string(np.asarray(state)[: self.string_bits])

    def verify(self, decoded: str) -> bool:
        return all(child.verify(decoded) for child in self.children)

    def ground_energy(self) -> Optional[float]:
        # The sum of per-child optima is only a lower bound in general;
        # exact only when the model stays diagonal (then bits decouple).
        model = self.build_model()
        if model.num_interactions:
            return None
        return float(np.minimum(model.linear_vector(), 0.0).sum() + model.offset)

    def describe(self) -> str:
        inner = ", ".join(child.describe() for child in self.children)
        return f"CompositeFormulation({self.variable!r}: [{inner}])"


@dataclass
class CompiledProblem:
    """Everything the SMT driver needs to run the quantum pipeline."""

    #: Per-variable formulation to sample.
    formulations: Dict[str, StringFormulation] = field(default_factory=dict)
    #: Ground assertions with their concrete truth value.
    ground_results: List[Tuple[ast.Term, bool]] = field(default_factory=list)
    #: Ground str.contains assertions lowered to the §4.4 decision QUBO.
    includes: List[Tuple[ast.Term, StringIncludes]] = field(default_factory=list)
    #: Assertions touching each variable, for model checking.
    per_variable: Dict[str, List[ast.Term]] = field(default_factory=dict)

    @property
    def trivially_unsat(self) -> bool:
        """True when some ground assertion is concretely false."""
        return any(not truth for _, truth in self.ground_results)


def compile_assertions(
    assertions: List[ast.Term],
    penalty_strength: float = 1.0,
    seed: SeedLike = None,
) -> CompiledProblem:
    """Compile a conjunction of assertions into a :class:`CompiledProblem`."""
    rng = ensure_rng(seed)
    problem = CompiledProblem()
    grouped: Dict[str, List[ast.Term]] = {}
    for assertion in assertions:
        variables = ast.free_string_variables(assertion)
        if not variables:
            truth = eval_formula(assertion, {})
            problem.ground_results.append((assertion, truth))
            includes = _ground_contains_to_includes(assertion, penalty_strength)
            if includes is not None:
                problem.includes.append((assertion, includes))
            continue
        if len(variables) > 1:
            raise CompilationError(
                f"assertion relates several string variables "
                f"({sorted(variables)}); only single-variable constraints are "
                f"in the QUBO fragment: {assertion!r}"
            )
        (variable,) = variables
        grouped.setdefault(variable, []).append(assertion)

    for variable, group in grouped.items():
        problem.per_variable[variable] = list(group)
        length = _infer_length(variable, group)
        children: List[StringFormulation] = []
        for assertion in group:
            child = _compile_one(
                variable, assertion, length, penalty_strength, rng, group
            )
            if child is not None:
                children.append(child)
        if not children:
            # Every constraint was trivially satisfied (e.g. a disequality
            # against a string of a different length): fall back to a plain
            # length-constrained generator and let the final theory check
            # validate the model.
            children.append(
                StringLength(
                    length,
                    length,
                    penalty_strength=penalty_strength,
                    mode="decodable",
                    seed=int(rng.integers(0, 2**63 - 1)),
                )
            )
        problem.formulations[variable] = (
            children[0] if len(children) == 1 else CompositeFormulation(variable, children)
        )
    return problem


# --------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------- #


def _ground_value(term: ast.Term) -> Optional[str]:
    """Concrete string value of a ground term, else None."""
    if ast.free_string_variables(term):
        return None
    try:
        value = eval_term(term, {})
    except TheoryError:
        return None
    return value if isinstance(value, str) else None


def _ground_contains_to_includes(
    assertion: ast.Term, penalty_strength: float
) -> Optional[StringIncludes]:
    if not isinstance(assertion, ast.Contains):
        return None
    haystack = _ground_value(assertion.haystack)
    needle = _ground_value(assertion.needle)
    if haystack is None or needle is None or not needle or len(needle) > len(haystack):
        return None
    return StringIncludes(haystack, needle, penalty_strength)


def _infer_length(variable: str, group: List[ast.Term]) -> int:
    exact: List[int] = []
    lower: List[int] = []
    for assertion in group:
        exact_len, lower_len = _length_facts(variable, assertion)
        if exact_len is not None:
            exact.append(exact_len)
        if lower_len is not None:
            lower.append(lower_len)
    if exact:
        if len(set(exact)) > 1:
            raise CompilationError(
                f"conflicting exact lengths for {variable!r}: {sorted(set(exact))}"
            )
        length = exact[0]
        if lower and max(lower) > length:
            raise CompilationError(
                f"{variable!r} needs length >= {max(lower)} but is pinned to {length}"
            )
        return length
    if lower:
        return max(lower)
    raise CompilationError(
        f"cannot infer a length for {variable!r}; add a (= (str.len {variable}) N) "
        f"assertion or an equality with a ground term"
    )


def _length_facts(
    variable: str, assertion: ast.Term
) -> Tuple[Optional[int], Optional[int]]:
    """``(exact, lower_bound)`` length information from one assertion."""
    if isinstance(assertion, ast.Eq):
        lhs, rhs = assertion.lhs, assertion.rhs
        # (= (str.len x) N) in either orientation.
        for a, b in ((lhs, rhs), (rhs, lhs)):
            if (
                isinstance(a, ast.Length)
                and isinstance(a.source, ast.StrVar)
                and a.source.name == variable
                and isinstance(b, ast.IntLit)
            ):
                if b.value < 0:
                    raise CompilationError(f"negative length for {variable!r}")
                return b.value, None
        # (= x <ground>) in either orientation.
        for a, b in ((lhs, rhs), (rhs, lhs)):
            if isinstance(a, ast.StrVar) and a.name == variable:
                value = _ground_value(b)
                if value is not None:
                    return len(value), None
    if isinstance(assertion, ast.Contains):
        if (
            isinstance(assertion.haystack, ast.StrVar)
            and assertion.haystack.name == variable
        ):
            needle = _ground_value(assertion.needle)
            if needle is not None:
                return None, len(needle)
    if isinstance(assertion, ast.PrefixOf) and isinstance(assertion.string, ast.StrVar):
        prefix = _ground_value(assertion.prefix)
        if prefix is not None:
            return None, len(prefix)
    if isinstance(assertion, ast.SuffixOf) and isinstance(assertion.string, ast.StrVar):
        suffix = _ground_value(assertion.suffix)
        if suffix is not None:
            return None, len(suffix)
    if isinstance(assertion, ast.Eq):
        # (= (str.at x i) "c") pins position i, so |x| >= i + 1.
        for a, b in ((assertion.lhs, assertion.rhs), (assertion.rhs, assertion.lhs)):
            if (
                isinstance(a, ast.At)
                and isinstance(a.source, ast.StrVar)
                and a.source.name == variable
                and isinstance(a.index, ast.IntLit)
                and a.index.value >= 0
            ):
                char = _ground_value(b)
                if char is not None and len(char) == 1:
                    return None, a.index.value + 1
    if isinstance(assertion, ast.InRe) and isinstance(assertion.string, ast.StrVar):
        try:
            tokens = regex_term_to_tokens(assertion.regex)
        except TheoryError:
            return None, None
        return (None, len(tokens))
    if isinstance(assertion, ast.Eq):
        # (= (str.indexof x s) p) pins a window ending at p + len(s).
        for a, b in ((assertion.lhs, assertion.rhs), (assertion.rhs, assertion.lhs)):
            if (
                isinstance(a, ast.IndexOf)
                and isinstance(a.haystack, ast.StrVar)
                and a.haystack.name == variable
                and isinstance(b, ast.IntLit)
                and b.value >= 0
            ):
                needle = _ground_value(a.needle)
                if needle is not None:
                    return None, b.value + len(needle)
    return None, None


def _compile_one(
    variable: str,
    assertion: ast.Term,
    length: int,
    a: float,
    rng,
    group: List[ast.Term],
) -> Optional[StringFormulation]:
    """Lower one single-variable assertion (None = redundant length fact)."""
    if isinstance(assertion, ast.Eq):
        lhs, rhs = assertion.lhs, assertion.rhs
        # Length fact: redundant when a generator exists, else a decodable
        # length formulation stands alone.
        for x, other in ((lhs, rhs), (rhs, lhs)):
            if (
                isinstance(x, ast.Length)
                and isinstance(x.source, ast.StrVar)
                and isinstance(other, ast.IntLit)
            ):
                has_generator = any(g is not assertion for g in group)
                if has_generator:
                    return None
                return StringLength(
                    length,
                    other.value,
                    penalty_strength=a,
                    mode="decodable",
                    seed=int(rng.integers(0, 2**63 - 1)),
                )
        # Generation: x equals a ground term.
        for x, other in ((lhs, rhs), (rhs, lhs)):
            if isinstance(x, ast.StrVar) and x.name == variable:
                return _compile_generation(other, a)
        # (= (str.indexof x s) p): pin the window.
        for x, other in ((lhs, rhs), (rhs, lhs)):
            if (
                isinstance(x, ast.IndexOf)
                and isinstance(x.haystack, ast.StrVar)
                and isinstance(other, ast.IntLit)
            ):
                needle = _ground_value(x.needle)
                if needle is None:
                    raise CompilationError(
                        f"str.indexof needle must be ground: {assertion!r}"
                    )
                if other.value < 0:
                    raise CompilationError(
                        f"cannot generate a witness for indexof = {other.value} "
                        f"(absence constraints are outside the QUBO fragment)"
                    )
                start = eval_term(x.start, {})
                if start != 0:
                    raise CompilationError(
                        f"str.indexof with nonzero start is unsupported: {assertion!r}"
                    )
                return SubstringIndexOf(
                    length,
                    needle,
                    other.value,
                    penalty_strength=a,
                    seed=int(rng.integers(0, 2**63 - 1)),
                )
        # (= (str.at x i) "c"): a one-character pinned window.
        for x, other in ((lhs, rhs), (rhs, lhs)):
            if (
                isinstance(x, ast.At)
                and isinstance(x.source, ast.StrVar)
                and isinstance(x.index, ast.IntLit)
            ):
                char = _ground_value(other)
                if char is None:
                    raise CompilationError(
                        f"str.at comparand must be ground: {assertion!r}"
                    )
                if len(char) != 1:
                    raise CompilationError(
                        "generating a witness for an out-of-range str.at "
                        f"(empty comparand) is outside the QUBO fragment: {assertion!r}"
                    )
                return StringCharAt(
                    length,
                    char,
                    x.index.value,
                    penalty_strength=a,
                    seed=int(rng.integers(0, 2**63 - 1)),
                )
        raise CompilationError(f"unsupported equality shape: {assertion!r}")
    if isinstance(assertion, ast.PrefixOf):
        if isinstance(assertion.string, ast.StrVar):
            prefix = _ground_value(assertion.prefix)
            if prefix is None:
                raise CompilationError(
                    f"str.prefixof prefix must be ground: {assertion!r}"
                )
            return StringPrefixOf(
                length, prefix, penalty_strength=a,
                seed=int(rng.integers(0, 2**63 - 1)),
            )
        raise CompilationError(
            f"str.prefixof with a variable prefix is unsupported: {assertion!r}"
        )
    if isinstance(assertion, ast.SuffixOf):
        if isinstance(assertion.string, ast.StrVar):
            suffix = _ground_value(assertion.suffix)
            if suffix is None:
                raise CompilationError(
                    f"str.suffixof suffix must be ground: {assertion!r}"
                )
            return StringSuffixOf(
                length, suffix, penalty_strength=a,
                seed=int(rng.integers(0, 2**63 - 1)),
            )
        raise CompilationError(
            f"str.suffixof with a variable suffix is unsupported: {assertion!r}"
        )
    if isinstance(assertion, ast.Contains):
        if (
            isinstance(assertion.haystack, ast.StrVar)
            and assertion.haystack.name == variable
        ):
            needle = _ground_value(assertion.needle)
            if needle is None:
                raise CompilationError(
                    f"str.contains needle must be ground: {assertion!r}"
                )
            return SubstringMatching(length, needle, penalty_strength=a)
        raise CompilationError(
            f"str.contains with a variable needle is unsupported: {assertion!r}"
        )
    if isinstance(assertion, ast.InRe):
        tokens = regex_term_to_tokens(assertion.regex)
        # Validate the expansion now for a clean error at compile time.
        expand_to_length(tokens, length)
        return RegexMatching(tokens, length, penalty_strength=a)
    if isinstance(assertion, ast.Not):
        # Disequality against a ground string: the AND-chain gadget of
        # repro.core.notequals makes this expressible after all.
        inner = assertion.operand
        if isinstance(inner, ast.Eq):
            for x, other in ((inner.lhs, inner.rhs), (inner.rhs, inner.lhs)):
                if isinstance(x, ast.StrVar) and x.name == variable:
                    value = _ground_value(other)
                    if value is not None:
                        if len(value) != length:
                            # Different lengths: trivially satisfied.
                            return None
                        if length == 0:
                            raise CompilationError(
                                "x != \"\" with |x| = 0 is unsatisfiable"
                            )
                        return StringNotEquals(
                            value,
                            penalty_strength=a,
                            seed=int(rng.integers(0, 2**63 - 1)),
                        )
        raise CompilationError(
            f"this negative constraint is outside the QUBO fragment (use the "
            f"DPLL(T) driver): {assertion!r}"
        )
    raise CompilationError(f"unsupported assertion: {assertion!r}")


def _compile_generation(term: ast.Term, a: float) -> StringFormulation:
    """``x = <ground term>``: pick the formulation matching the term's shape."""
    value = _ground_value(term)
    if value is None:
        raise CompilationError(
            f"right-hand side must be ground (no free variables): {term!r}"
        )
    if isinstance(term, ast.Concat) and len(term.parts) == 2:
        left = _ground_value(term.parts[0])
        right = _ground_value(term.parts[1])
        assert left is not None and right is not None
        return StringConcatenation(left, right, penalty_strength=a)
    if isinstance(term, ast.Replace):
        source = _ground_value(term.source)
        old = _ground_value(term.old)
        new = _ground_value(term.new)
        assert source is not None and old is not None and new is not None
        if len(old) == 1 and len(new) == 1:
            cls = StringReplaceAll if term.replace_all else StringReplace
            return cls(source, old, new, penalty_strength=a)
        # Multi-character replacement: fall back to equality with the result.
        return StringEquality(value, penalty_strength=a)
    if isinstance(term, ast.Reverse):
        source = _ground_value(term.source)
        assert source is not None
        return StringReversal(source, penalty_strength=a)
    if isinstance(term, ast.Substr):
        source = _ground_value(term.source)
        offset = eval_term(term.offset, {})
        count = eval_term(term.count, {})
        if source is not None and isinstance(offset, int) and isinstance(count, int):
            return StringSubstr(source, offset, count, penalty_strength=a)
    return StringEquality(value, penalty_strength=a)
