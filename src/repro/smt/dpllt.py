"""DPLL(T): the SAT core driving the string theory solver.

The lazy-SMT loop from the paper's §2.1 background: the CDCL engine
enumerates boolean assignments over the *atoms* (string constraints); each
candidate assignment's implied conjunction is handed to a theory solver;
theory-inconsistent assignments are blocked with a learned clause and the
loop continues until a theory-consistent model or boolean exhaustion.

The theory solver is pluggable: the classical baseline
(:class:`~repro.smt.classical.ClassicalStringSolver`, default) or the
quantum path (:class:`~repro.smt.solver.QuantumSMTSolver`) — making this
module the integration point the paper's future work describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt import ast
from repro.smt.classical import ClassicalStringSolver
from repro.smt.dpll import CdclSolver
from repro.smt.status import SolveStatus

__all__ = ["DpllTSolver", "DpllTResult", "QuantumTheoryAdapter"]

# Shared enum; bare-string comparisons keep working (str-mixin).
SAT = SolveStatus.SAT
UNSAT = SolveStatus.UNSAT
UNKNOWN = SolveStatus.UNKNOWN


@dataclass
class DpllTResult:
    """Outcome of a DPLL(T) solve."""

    status: SolveStatus
    model: Dict[str, str] = field(default_factory=dict)
    boolean_assignment: Dict[int, bool] = field(default_factory=dict)
    theory_calls: int = 0
    #: Distinct theory lemmas learned (blocking clauses, deduplicated).
    lemmas_learned: int = 0
    reason: str = ""

    def __post_init__(self) -> None:
        self.status = SolveStatus.from_value(self.status)


class QuantumTheoryAdapter:
    """Adapt :class:`~repro.smt.solver.QuantumSMTSolver` to the T-solver
    interface — the paper's architecture realized end to end: CDCL handles
    the boolean structure, the quantum annealer decides the theory
    conjunctions.

    Caveat inherited from the annealing path: the adapter can answer
    ``sat`` (verified witness) or ``unknown``; it never proves theory
    *unsatisfiability* on its own, so ``DpllTSolver`` cannot conclude
    ``unsat`` through it. Pair it with the classical solver when
    refutations matter (the standard portfolio arrangement).
    """

    def __init__(self, **solver_kwargs) -> None:
        self._kwargs = dict(solver_kwargs)

    def solve(self, assertions: Sequence[ast.Term]):
        from repro.smt.solver import QuantumSMTSolver

        solver = QuantumSMTSolver(**self._kwargs)
        names = set()
        for assertion in assertions:
            names |= ast.free_string_variables(assertion)
        for name in sorted(names):
            solver.declare_const(name)
        for assertion in assertions:
            solver.add_assertion(assertion)
        return solver.check_sat()


class DpllTSolver:
    """Boolean structure over string-theory atoms.

    Parameters
    ----------
    atoms:
        The theory atoms; atom ``i`` is boolean variable ``i + 1`` in the
        CNF. Each atom is a Bool-sorted :mod:`repro.smt.ast` term.
    clauses:
        CNF over the atom variables (DIMACS literals). An empty clause list
        means the bare conjunction of all atoms.
    theory_solver:
        Object with ``solve(assertions) -> result`` carrying ``status`` and
        ``model`` — the classical baseline by default.
    max_theory_calls:
        Budget on theory consultations before answering ``unknown``.
    """

    def __init__(
        self,
        atoms: Sequence[ast.Term],
        clauses: Optional[Sequence[Sequence[int]]] = None,
        theory_solver=None,
        max_theory_calls: int = 64,
    ) -> None:
        if not atoms:
            raise ValueError("need at least one theory atom")
        if max_theory_calls < 1:
            raise ValueError("max_theory_calls must be >= 1")
        self.atoms = list(atoms)
        if clauses is None:
            # Bare conjunction: a unit clause per atom.
            clauses = [[i + 1] for i in range(len(atoms))]
        self.clauses: List[List[int]] = [list(c) for c in clauses]
        for clause in self.clauses:
            for lit in clause:
                if lit == 0 or abs(lit) > len(atoms):
                    raise ValueError(f"literal {lit} does not name an atom")
        self.theory = (
            theory_solver if theory_solver is not None else ClassicalStringSolver()
        )
        self.max_theory_calls = max_theory_calls

    # ------------------------------------------------------------------ #

    def solve(self) -> DpllTResult:
        """Run the lazy DPLL(T) loop."""
        learned: List[List[int]] = []
        seen_lemmas: set = set()
        theory_calls = 0
        while theory_calls < self.max_theory_calls:
            sat_solver = CdclSolver(len(self.atoms), self.clauses + learned)
            boolean = sat_solver.solve()
            if not boolean.satisfiable:
                return DpllTResult(
                    status=UNSAT,
                    theory_calls=theory_calls,
                    lemmas_learned=len(learned),
                    reason="boolean abstraction exhausted",
                )
            assignment = boolean.assignment
            conjunction = self._implied_conjunction(assignment)
            theory_calls += 1
            outcome = self.theory.solve(conjunction)
            status = getattr(outcome, "status", UNKNOWN)
            if status == SAT:
                return DpllTResult(
                    status=SAT,
                    model=dict(getattr(outcome, "model", {})),
                    boolean_assignment=assignment,
                    theory_calls=theory_calls,
                    lemmas_learned=len(learned),
                )
            if status == UNKNOWN:
                return DpllTResult(
                    status=UNKNOWN,
                    boolean_assignment=assignment,
                    theory_calls=theory_calls,
                    lemmas_learned=len(learned),
                    reason=f"theory solver: {getattr(outcome, 'reason', '')}",
                )
            # Theory-inconsistent: block this assignment. A blocking
            # clause the SAT core has already been given means it handed
            # back an assignment its CNF forbids — re-learning it would
            # loop forever, so surface the inconsistency instead.
            lemma = self._blocking_clause(assignment)
            key = frozenset(lemma)
            if key in seen_lemmas:
                return DpllTResult(
                    status=UNKNOWN,
                    boolean_assignment=assignment,
                    theory_calls=theory_calls,
                    lemmas_learned=len(learned),
                    reason="duplicate theory lemma: the SAT core returned "
                    "an already-blocked assignment",
                )
            seen_lemmas.add(key)
            learned.append(lemma)
        return DpllTResult(
            status=UNKNOWN,
            theory_calls=theory_calls,
            lemmas_learned=len(learned),
            reason=f"theory-call budget ({self.max_theory_calls}) exhausted",
        )

    # ------------------------------------------------------------------ #

    def _implied_conjunction(self, assignment: Dict[int, bool]) -> List[ast.Term]:
        """The theory conjunction a boolean assignment selects."""
        conjunction: List[ast.Term] = []
        for index, atom in enumerate(self.atoms):
            if assignment.get(index + 1, False):
                conjunction.append(atom)
            else:
                conjunction.append(ast.Not(atom))
        return conjunction

    def _blocking_clause(self, assignment: Dict[int, bool]) -> List[int]:
        """Negate the full atom assignment (a standard naive T-lemma)."""
        clause: List[int] = []
        for index in range(len(self.atoms)):
            var = index + 1
            clause.append(-var if assignment.get(var, False) else var)
        return clause
