"""SMT-LIB 2.6 script parser for the strings fragment.

Turns script text into an :class:`SmtScript`: declarations, assertions (as
:mod:`repro.smt.ast` terms), and the command sequence (``check-sat``,
``get-model``, ``get-value``). ``and`` inside an assert is flattened into
separate assertions (conjunction of soft objectives = QUBO addition later).

Supported commands: ``set-logic``, ``set-option``, ``set-info``,
``declare-const``, ``declare-fun`` (0-ary), ``assert``, ``assert-soft``
(with ``:weight`` / ``:id``, collected into ``SmtScript.soft_assertions``
for the MaxSMT mode in :mod:`repro.opt`), ``check-sat``, ``get-model``,
``get-value``, ``echo``, ``exit``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.smt import ast
from repro.smt.sexpr import Symbol, parse_sexprs

__all__ = ["ParseError", "SmtScript", "parse_script", "parse_term"]


class ParseError(ValueError):
    """Malformed SMT-LIB input."""


@dataclass
class SmtScript:
    """A parsed script: declarations, assertions, and command order."""

    logic: Optional[str] = None
    declarations: Dict[str, Any] = field(default_factory=dict)
    assertions: List[ast.Term] = field(default_factory=list)
    commands: List[Tuple[str, Any]] = field(default_factory=list)
    soft_assertions: List[ast.SoftAssertion] = field(default_factory=list)

    def string_variables(self) -> List[str]:
        """Declared String-sorted constants, in declaration order."""
        return [
            name
            for name, sort in self.declarations.items()
            if sort is ast.StringSort
        ]


_SORTS = {
    "String": ast.StringSort,
    "Int": ast.IntSort,
    "Bool": ast.BoolSort,
    "RegLan": ast.RegLanSort,
}


def parse_script(
    text: str, initial_declarations: Optional[Dict[str, Any]] = None
) -> SmtScript:
    """Parse a whole SMT-LIB script.

    ``initial_declarations`` seeds the symbol table with already-declared
    constants (an incremental session parsing an ``assert`` fragment
    against its live declarations). Inherited declarations participate in
    term parsing and duplicate-declaration checks but are **not** replayed
    into ``script.commands``.
    """
    script = SmtScript()
    if initial_declarations:
        script.declarations.update(initial_declarations)
    for expr in parse_sexprs(text):
        if not isinstance(expr, list) or not expr:
            raise ParseError(f"expected a command list, got {expr!r}")
        head = expr[0]
        if not isinstance(head, Symbol):
            raise ParseError(f"command must start with a symbol: {expr!r}")
        _dispatch_command(script, str(head), expr)
    return script


def _dispatch_command(script: SmtScript, head: str, expr: list) -> None:
    if head == "set-logic":
        _arity(expr, 2)
        script.logic = str(expr[1])
        script.commands.append(("set-logic", script.logic))
    elif head in ("set-option", "set-info", "echo"):
        script.commands.append((head, expr[1:]))
    elif head == "declare-const":
        _arity(expr, 3)
        _declare(script, expr[1], expr[2])
    elif head == "declare-fun":
        _arity(expr, 4)
        if expr[2] != []:
            raise ParseError(
                f"only 0-ary declare-fun is supported, got {expr!r}"
            )
        _declare(script, expr[1], expr[3])
    elif head == "assert":
        _arity(expr, 2)
        formula = parse_term(expr[1], script.declarations)
        for conjunct in _flatten_and(formula):
            script.assertions.append(conjunct)
            script.commands.append(("assert", conjunct))
    elif head == "assert-soft":
        soft = _parse_assert_soft(expr, script.declarations)
        script.soft_assertions.append(soft)
        script.commands.append(("assert-soft", soft))
    elif head == "check-sat":
        _arity(expr, 1)
        script.commands.append(("check-sat", None))
    elif head == "get-model":
        _arity(expr, 1)
        script.commands.append(("get-model", None))
    elif head == "get-value":
        _arity(expr, 2)
        if not isinstance(expr[1], list):
            raise ParseError(f"get-value expects a term list: {expr!r}")
        terms = [parse_term(t, script.declarations) for t in expr[1]]
        script.commands.append(("get-value", terms))
    elif head in ("push", "pop"):
        if len(expr) == 1:
            levels = 1
        elif len(expr) == 2 and isinstance(expr[1], int) and expr[1] >= 0:
            levels = expr[1]
        else:
            raise ParseError(f"{head} expects an optional non-negative numeral: {expr!r}")
        script.commands.append((head, levels))
    elif head == "exit":
        script.commands.append(("exit", None))
    else:
        raise ParseError(f"unsupported command: {head!r}")


def _arity(expr: list, expected: int) -> None:
    if len(expr) != expected:
        raise ParseError(
            f"{expr[0]} expects {expected - 1} argument(s), got {len(expr) - 1}: {expr!r}"
        )


def _declare(script: SmtScript, name: Any, sort: Any) -> None:
    if not isinstance(name, Symbol):
        raise ParseError(f"declaration name must be a symbol, got {name!r}")
    sort_name = str(sort)
    if sort_name not in _SORTS:
        raise ParseError(f"unsupported sort {sort_name!r} for {name!r}")
    if str(name) in script.declarations:
        raise ParseError(f"duplicate declaration of {name!r}")
    script.declarations[str(name)] = _SORTS[sort_name]
    script.commands.append(("declare-const", (str(name), sort_name)))


def _parse_assert_soft(expr: list, declarations: Dict[str, Any]) -> ast.SoftAssertion:
    """``(assert-soft <term> [:weight <w>] [:id <group>])``.

    Keywords may appear in either order; ``:weight`` defaults to 1 and
    ``:id`` to the empty (ungrouped) label. ``and`` is rejected inside a
    soft term — each soft assertion is a single weighted unit.
    """
    if len(expr) < 2:
        raise ParseError(f"assert-soft expects a term: {expr!r}")
    formula = parse_term(expr[1], declarations)
    if isinstance(formula, _AndMarker):
        raise ParseError(
            f"'and' is not supported inside assert-soft (split it into "
            f"separate weighted assertions): {expr!r}"
        )
    weight: float = 1
    group = ""
    rest = expr[2:]
    i = 0
    while i < len(rest):
        key = rest[i]
        if not isinstance(key, Symbol) or not str(key).startswith(":"):
            raise ParseError(f"expected a :keyword in assert-soft, got {key!r}")
        if i + 1 >= len(rest):
            raise ParseError(f"assert-soft keyword {key!r} is missing its value")
        value = rest[i + 1]
        if str(key) == ":weight":
            weight = _parse_weight(value, expr)
        elif str(key) == ":id":
            if not isinstance(value, Symbol):
                raise ParseError(f":id expects a symbol, got {value!r}")
            group = str(value)
        else:
            raise ParseError(f"unsupported assert-soft keyword {key!r}")
        i += 2
    try:
        return ast.SoftAssertion(term=formula, weight=weight, group=group)
    except ValueError as exc:
        raise ParseError(f"{exc}: {expr!r}")


def _parse_weight(value: Any, expr: list) -> float:
    """A positive numeral or decimal weight (decimals tokenize as symbols)."""
    if isinstance(value, int):
        return value
    if isinstance(value, Symbol):
        try:
            return float(str(value))
        except ValueError:
            pass
    raise ParseError(f":weight expects a positive number, got {value!r} in {expr!r}")


def _flatten_and(term: ast.Term) -> List[ast.Term]:
    if isinstance(term, _AndMarker):
        out: List[ast.Term] = []
        for part in term.parts:
            out.extend(_flatten_and(part))
        return out
    return [term]


@dataclass(frozen=True)
class _AndMarker:
    """Internal: an ``and`` node, flattened away before it leaves the parser."""

    parts: Tuple[ast.Term, ...]


# --------------------------------------------------------------------- #
# term parsing
# --------------------------------------------------------------------- #


def parse_term(expr: Any, declarations: Dict[str, Any]) -> ast.Term:
    """Parse one term s-expression against the declared symbols."""
    if isinstance(expr, Symbol):
        name = str(expr)
        if name not in declarations:
            raise ParseError(f"undeclared symbol {name!r}")
        sort = declarations[name]
        if sort is not ast.StringSort:
            raise ParseError(
                f"only String-sorted constants may appear in terms, "
                f"{name!r} has sort {sort!r}"
            )
        return ast.StrVar(name)
    if isinstance(expr, str):
        return ast.StrLit(expr)
    if isinstance(expr, int):
        return ast.IntLit(expr)
    if not isinstance(expr, list) or not expr:
        raise ParseError(f"cannot parse term {expr!r}")
    head = expr[0]
    if not isinstance(head, Symbol):
        raise ParseError(f"application head must be a symbol: {expr!r}")
    op = str(head)
    args = [parse_term(a, declarations) for a in expr[1:]]
    return _apply(op, args, expr)


def _apply(op: str, args: List[ast.Term], expr: list) -> ast.Term:
    if op != "and" and any(isinstance(a, _AndMarker) for a in args):
        raise ParseError(
            f"'and' is only supported at the top level of an assertion: {expr!r}"
        )
    if op == "str.++":
        _need(expr, len(args) >= 2, "str.++ needs >= 2 operands")
        return ast.Concat(tuple(args))
    if op == "str.len":
        _need(expr, len(args) == 1, "str.len needs 1 operand")
        return ast.Length(args[0])
    if op == "str.contains":
        _need(expr, len(args) == 2, "str.contains needs 2 operands")
        return ast.Contains(args[0], args[1])
    if op == "str.indexof":
        _need(expr, len(args) in (2, 3), "str.indexof needs 2 or 3 operands")
        start = args[2] if len(args) == 3 else ast.IntLit(0)
        return ast.IndexOf(args[0], args[1], start)
    if op == "str.replace":
        _need(expr, len(args) == 3, "str.replace needs 3 operands")
        return ast.Replace(args[0], args[1], args[2], replace_all=False)
    if op in ("str.replace_all", "str.replace-all", "str.replaceall"):
        _need(expr, len(args) == 3, "str.replace_all needs 3 operands")
        return ast.Replace(args[0], args[1], args[2], replace_all=True)
    if op in ("str.rev", "str.reverse"):
        _need(expr, len(args) == 1, "str.rev needs 1 operand")
        return ast.Reverse(args[0])
    if op == "str.at":
        _need(expr, len(args) == 2, "str.at needs 2 operands")
        return ast.At(args[0], args[1])
    if op == "str.substr":
        _need(expr, len(args) == 3, "str.substr needs 3 operands")
        return ast.Substr(args[0], args[1], args[2])
    if op == "str.prefixof":
        _need(expr, len(args) == 2, "str.prefixof needs 2 operands")
        return ast.PrefixOf(args[0], args[1])
    if op == "str.suffixof":
        _need(expr, len(args) == 2, "str.suffixof needs 2 operands")
        return ast.SuffixOf(args[0], args[1])
    if op == "str.in_re":
        _need(expr, len(args) == 2, "str.in_re needs 2 operands")
        return ast.InRe(args[0], args[1])
    if op == "str.to_re":
        _need(
            expr,
            len(args) == 1 and isinstance(args[0], ast.StrLit),
            "str.to_re needs 1 literal operand",
        )
        return ast.ReLit(args[0].value)
    if op == "re.union":
        _need(expr, len(args) >= 2, "re.union needs >= 2 operands")
        return ast.ReUnion(tuple(args))
    if op == "re.+":
        _need(expr, len(args) == 1, "re.+ needs 1 operand")
        return ast.RePlus(args[0])
    if op == "re.++":
        _need(expr, len(args) >= 2, "re.++ needs >= 2 operands")
        return ast.ReConcat(tuple(args))
    if op == "re.range":
        _need(
            expr,
            len(args) == 2
            and isinstance(args[0], ast.StrLit)
            and isinstance(args[1], ast.StrLit),
            "re.range needs 2 literal operands",
        )
        return ast.ReRange(args[0].value, args[1].value)
    if op == "=":
        _need(expr, len(args) == 2, "= needs 2 operands")
        return ast.Eq(args[0], args[1])
    if op == "not":
        _need(expr, len(args) == 1, "not needs 1 operand")
        return ast.Not(args[0])
    if op == "and":
        _need(expr, len(args) >= 2, "and needs >= 2 operands")
        return _AndMarker(tuple(args))
    raise ParseError(f"unsupported operator {op!r} in {expr!r}")


def _need(expr: list, condition: bool, message: str) -> None:
    if not condition:
        raise ParseError(f"{message}: {expr!r}")
