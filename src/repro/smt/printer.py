"""SMT-LIB 2.6 printer for the strings fragment.

The inverse of :mod:`repro.smt.parser`: renders :mod:`repro.smt.ast` terms
and whole assertion conjunctions back to script text. The printer is the
single source of SMT-LIB output for the instance generator, the
delta-debugging shrinker and the regression corpus, and it is round-trip
exact: ``parse_script(render_script(decls, assertions)).assertions ==
assertions`` for every term the AST can represent (string literals use
SMT-LIB ``""`` quote doubling; no other escape sequences exist in the
fragment).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.smt import ast

__all__ = [
    "PrintError",
    "quote_string",
    "render_term",
    "render_assertion",
    "render_soft_assertion",
    "render_weight",
    "render_command",
    "render_script",
    "render_full_script",
]


class PrintError(TypeError):
    """A term outside the printable AST."""


def quote_string(value: str) -> str:
    """An SMT-LIB string literal: ``"`` doubled, everything else verbatim."""
    return '"' + value.replace('"', '""') + '"'


_SORT_NAMES = {
    id(ast.StringSort): "String",
    id(ast.IntSort): "Int",
    id(ast.BoolSort): "Bool",
    id(ast.RegLanSort): "RegLan",
}


def render_term(term: ast.Term) -> str:
    """Render one term as SMT-LIB concrete syntax."""
    if isinstance(term, ast.StrVar):
        return term.name
    if isinstance(term, ast.StrLit):
        return quote_string(term.value)
    if isinstance(term, ast.IntLit):
        return str(term.value)
    if isinstance(term, ast.Concat):
        return _app("str.++", term.parts)
    if isinstance(term, ast.Replace):
        op = "str.replace_all" if term.replace_all else "str.replace"
        return _app(op, (term.source, term.old, term.new))
    if isinstance(term, ast.Reverse):
        return _app("str.rev", (term.source,))
    if isinstance(term, ast.At):
        return _app("str.at", (term.source, term.index))
    if isinstance(term, ast.Substr):
        return _app("str.substr", (term.source, term.offset, term.count))
    if isinstance(term, ast.Length):
        return _app("str.len", (term.source,))
    if isinstance(term, ast.Contains):
        return _app("str.contains", (term.haystack, term.needle))
    if isinstance(term, ast.PrefixOf):
        return _app("str.prefixof", (term.prefix, term.string))
    if isinstance(term, ast.SuffixOf):
        return _app("str.suffixof", (term.suffix, term.string))
    if isinstance(term, ast.IndexOf):
        return _app("str.indexof", (term.haystack, term.needle, term.start))
    if isinstance(term, ast.InRe):
        return _app("str.in_re", (term.string, term.regex))
    if isinstance(term, ast.Eq):
        return _app("=", (term.lhs, term.rhs))
    if isinstance(term, ast.Not):
        return _app("not", (term.operand,))
    if isinstance(term, ast.ReLit):
        return f"(str.to_re {quote_string(term.value)})"
    if isinstance(term, ast.ReUnion):
        return _app("re.union", term.parts)
    if isinstance(term, ast.RePlus):
        return _app("re.+", (term.child,))
    if isinstance(term, ast.ReConcat):
        return _app("re.++", term.parts)
    if isinstance(term, ast.ReRange):
        return f"(re.range {quote_string(term.lo)} {quote_string(term.hi)})"
    raise PrintError(f"no printer for {term!r}")


def _app(op: str, args: Iterable[ast.Term]) -> str:
    return "(" + op + "".join(" " + render_term(a) for a in args) + ")"


def render_assertion(term: ast.Term) -> str:
    """One ``(assert ...)`` command."""
    return f"(assert {render_term(term)})"


def render_weight(weight: float) -> str:
    """A weight numeral: integral weights print without a decimal point."""
    if isinstance(weight, int) or float(weight).is_integer():
        return str(int(weight))
    return repr(float(weight))


def render_soft_assertion(soft: ast.SoftAssertion) -> str:
    """One ``(assert-soft ...)`` command, ``:id`` omitted when ungrouped."""
    text = f"(assert-soft {render_term(soft.term)} :weight {render_weight(soft.weight)}"
    if soft.group:
        text += f" :id {soft.group}"
    return text + ")"


def render_command(command: "tuple") -> str:
    """Render one parsed ``(head, payload)`` command back to SMT-LIB.

    Covers every command shape the parser can leave in
    ``SmtScript.commands`` except the free-form pass-throughs
    (``set-option``/``set-info``/``echo``, whose payloads keep raw
    s-expression atoms). ``push``/``pop`` always render their level count
    explicitly — the parser normalizes ``(push)`` to ``("push", 1)``, so
    the rendered form reparses to the identical command tuple.
    """
    head, payload = command
    if head == "set-logic":
        return f"(set-logic {payload})"
    if head == "declare-const":
        name, sort_name = payload
        return f"(declare-const {name} {sort_name})"
    if head == "assert":
        return render_assertion(payload)
    if head == "assert-soft":
        return render_soft_assertion(payload)
    if head == "check-sat":
        return "(check-sat)"
    if head == "get-model":
        return "(get-model)"
    if head == "get-value":
        inner = " ".join(render_term(term) for term in payload)
        return f"(get-value ({inner}))"
    if head in ("push", "pop"):
        return f"({head} {payload})"
    if head == "exit":
        return "(exit)"
    raise PrintError(f"no printer for command {head!r}")


def render_full_script(script: "object") -> str:
    """Render a parsed :class:`~repro.smt.parser.SmtScript` command-exactly.

    Unlike :func:`render_script` (assertions + a single trailing
    ``check-sat``), this reproduces the *command sequence* — push/pop
    frames, interleaved check-sats, get-model — such that
    ``parse_script(render_full_script(s)) == s`` for every script in the
    parser's image (pinned by the printer round-trip property suite).
    """
    return (
        "\n".join(render_command(c) for c in script.commands) + "\n"
        if script.commands
        else ""
    )


def render_script(
    assertions: Sequence[ast.Term],
    declarations: Optional[Dict[str, object]] = None,
    *,
    soft_assertions: Sequence[ast.SoftAssertion] = (),
    check_sat: bool = True,
    get_model: bool = False,
    logic: Optional[str] = None,
    header: Sequence[str] = (),
) -> str:
    """Render a whole problem as an SMT-LIB script.

    ``declarations`` maps names to sorts (``repro.smt.ast`` sort
    singletons); when omitted, every free string variable of the
    assertions (hard and soft) is declared with sort ``String``, in
    sorted name order. ``header`` lines are emitted verbatim as leading
    ``;`` comments.
    """
    lines: List[str] = [f"; {text}" if text else ";" for text in header]
    if logic:
        lines.append(f"(set-logic {logic})")
    if declarations is None:
        names: set = set()
        for assertion in assertions:
            names |= ast.free_string_variables(assertion)
        for soft in soft_assertions:
            names |= ast.free_string_variables(soft.term)
        declarations = {name: ast.StringSort for name in sorted(names)}
    for name, sort in declarations.items():
        sort_name = _SORT_NAMES.get(id(sort))
        if sort_name is None:
            raise PrintError(f"unknown sort {sort!r} for {name!r}")
        lines.append(f"(declare-const {name} {sort_name})")
    for assertion in assertions:
        lines.append(render_assertion(assertion))
    for soft in soft_assertions:
        lines.append(render_soft_assertion(soft))
    if check_sat:
        lines.append("(check-sat)")
    if get_model:
        lines.append("(get-model)")
    return "\n".join(lines) + "\n"
