"""CEGAR: the classical↔quantum refinement loop.

The architecture both quantum SMT papers converge on — abstract, sample,
refine from counterexamples — realized over this repo's string fragment:

1. **Prune.** The classical propagation machinery
   (:func:`repro.smt.classical._propagate`) derives per-position character
   domains implied by the asserted conjunction. Bits on which *every*
   character of a position's domain agrees are **implied bits**: they hold
   in every model of the compiled length, so they can be clamped before
   the annealer ever runs.
2. **Reduce.** :func:`repro.qubo.algebra.fix_variables` folds the clamped
   bits into the surviving linear terms and the constant offset. The fold
   is exact — ``E_full(x) = E_reduced(x|free)`` for every completion of
   the clamped assignment — so the annealer samples a strictly smaller
   QUBO whose energies are the original energies (DESIGN.md Appendix I).
3. **Sample + verify.** The reduced sample states are expanded back onto
   the full variable index space and decoded/verified through the
   ordinary :func:`repro.core.solver.result_from_sampleset` path.
4. **Refine.** A decoded value that concretely violates its own base
   constraints becomes a **blocking lemma** ``(not (= x "bad"))`` pushed
   as a new :class:`~repro.smt.session.SolverSession` frame; the lemma
   frame recompiles through the session's shared
   :class:`~repro.service.cache.CompileCache` (the PR 8 delta machinery),
   adding a not-equals penalty that steers the next round's anneal away
   from the counterexample.
5. **Fall back.** After ``max_rounds`` unproductive rounds — or on any
   lemma-push / recompile failure — the engine runs the **unrefined**
   solve of the original problem on the solver's untouched annealing
   driver. The engine samples reduced problems on its *own* RNG stream,
   so the fallback is bit-identical to what a ``strategy="direct"``
   solver would have answered at the same seed (the ``refine-max-rounds=0``
   identity the property suite pins).

Soundness contract
------------------

The loop never manufactures an answer: ``sat`` is only reported for a
model re-verified under the concrete theory semantics (exactly like the
direct path), propagation conflicts *skip pruning* rather than concluding
``unsat``, and lemmas are only learned from decoded values that provably
violate a base assertion. As a guard against an unsound propagator, every
verified model is cross-checked against the clamps that were derived from
it; a contradiction — a correct model violating a supposedly *implied*
bit — raises the typed :class:`UnsoundPropagationError` instead of
letting a wrong abstraction pass silently.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.anneal.sampleset import SampleSet
from repro.core.encoding import char_to_bits, encode_string, variable_index
from repro.core.solver import SolveResult, result_from_sampleset
from repro.qubo.algebra import expand_states, fix_variables
from repro.service.cache import CompileCache
from repro.service.policy import RetryExhaustedError
from repro.smt import ast
from repro.smt.classical import _propagate
from repro.smt.compiler import (
    CompilationError,
    CompiledProblem,
    compile_assertions,
)
from repro.smt.session import SessionError, SolverSession
from repro.smt.status import SolveStatus
from repro.smt.theory import TheoryError, eval_formula
from repro.utils.asciitab import CHAR_BITS
from repro.utils.timing import Timer

__all__ = [
    "RefineStats",
    "RefinementEngine",
    "UnsoundPropagationError",
    "implied_domains",
    "implied_bit_clamps",
]


class UnsoundPropagationError(RuntimeError):
    """A verified model contradicted a derived "implied" bit.

    An implied bit must hold in *every* model of the compiled length; a
    concretely-verified model violating one proves the propagator derived
    a wrong domain fact. Raised instead of silently mis-answering — the
    fault-injection suite pins this surface.
    """


@dataclass
class RefineStats:
    """Per-solve accounting of one refinement run."""

    #: Refinement rounds executed (0 when ``max_rounds=0``).
    rounds: int = 0
    #: Implied bits clamped, summed over every anneal.
    pruned_bits: int = 0
    #: Blocking lemmas pushed onto the session frame stack.
    lemmas: int = 0
    #: Unrefined-solve fallbacks taken (0 or 1 per solve).
    fallbacks: int = 0
    #: Anneals fully determined by propagation (0-variable QUBO).
    determined: int = 0
    #: Total reduced anneals run.
    anneals: int = 0
    #: Reduced QUBO width per anneal, in order.
    qubo_variables: List[int] = field(default_factory=list)
    #: Unreduced QUBO width per anneal, in order.
    full_variables: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rounds": self.rounds,
            "pruned_bits": self.pruned_bits,
            "lemmas": self.lemmas,
            "fallbacks": self.fallbacks,
            "determined": self.determined,
            "anneals": self.anneals,
            "qubo_variables": list(self.qubo_variables),
            "full_variables": list(self.full_variables),
        }


# --------------------------------------------------------------------- #
# implied domains and bit clamps (module-level: monkeypatchable by the
# fault-injection tests, shared with the property suite)
# --------------------------------------------------------------------- #


def implied_domains(
    variable: str, group: Sequence[ast.Term], length: int
) -> Optional[List[Optional[FrozenSet[str]]]]:
    """Per-position character domains *implied* by a conjunction.

    Sound by construction: each assertion contributes the **union** of its
    alternative placements/expansions (a character possible under *any*
    branch stays possible), and assertions are then **intersected** — so a
    character survives iff no assertion rules it out in every branch.
    ``None`` entries mean "unconstrained". Returns ``None`` (no pruning)
    when any assertion is infeasible at this length or an intersection
    empties out — a propagation conflict is *not* a refutation here,
    because the compiled length may rest on lower bounds; the caller skips
    pruning and lets the ordinary solve decide.
    """
    merged: List[Optional[FrozenSet[str]]] = [None] * length
    for assertion in group:
        options = _propagate(variable, assertion, length)
        if options is None:
            continue  # no positional structure; leaf-checked by verify
        if not options:
            return None  # infeasible at this length: no sound pruning
        union = _union_domains(options, length)
        for position, domain in enumerate(union):
            if domain is None:
                continue
            if merged[position] is None:
                merged[position] = domain
            else:
                merged[position] = merged[position] & domain
                if not merged[position]:
                    return None  # conflict: skip pruning, stay sound
    return merged


def _union_domains(
    options: Sequence[List[Optional[FrozenSet[str]]]], length: int
) -> List[Optional[FrozenSet[str]]]:
    """Positionwise union over one assertion's alternative branches."""
    union: List[Optional[FrozenSet[str]]] = [frozenset()] * length
    for domains in options:
        for position in range(length):
            if union[position] is None:
                continue
            domain = domains[position] if position < len(domains) else None
            if domain is None:
                union[position] = None  # free in some branch: free overall
            else:
                union[position] = union[position] | domain
    return union


def implied_bit_clamps(
    domains: Sequence[Optional[FrozenSet[str]]]
) -> Dict[int, int]:
    """Bits every character of a position's domain agrees on.

    Maps global string-bit indices (``position * 7 + bit``, MSB-first) to
    their forced value. Positions with an unconstrained (``None``) or
    empty domain contribute nothing.
    """
    clamps: Dict[int, int] = {}
    for position, domain in enumerate(domains):
        if not domain:
            continue
        rows = [char_to_bits(c) for c in sorted(domain)]
        for bit in range(CHAR_BITS):
            values = {int(row[bit]) for row in rows}
            if len(values) == 1:
                clamps[variable_index(position, bit)] = values.pop()
    return clamps


def _string_bits(formulation: Any) -> Optional[int]:
    """Width of a formulation's string-bit prefix, or None if unknown.

    Composites advertise ``string_bits``, ancilla-carrying children
    ``num_string_bits``; for plain §4 formulations the model width *is*
    the prefix. A width that is not a whole number of characters is
    treated as unknown (no pruning rather than wrong pruning).
    """
    width = getattr(formulation, "string_bits", None)
    if width is None:
        width = getattr(formulation, "num_string_bits", None)
    if width is None:
        width = formulation.build_model().num_variables
    width = int(width)
    if width <= 0 or width % CHAR_BITS:
        return None
    return width


# --------------------------------------------------------------------- #
# the engine
# --------------------------------------------------------------------- #


class RefinementEngine:
    """One CEGAR run over a compiled problem.

    Built per solve by :meth:`QuantumSMTSolver.solve_compiled` when the
    solver is configured with ``strategy="refine"``. The engine owns an
    independent RNG stream for the reduced anneals so the solver's own
    driver is never advanced — the guaranteed fallback therefore answers
    exactly what a ``strategy="direct"`` solver would at the same seed.
    """

    def __init__(
        self,
        solver: Any,
        *,
        max_rounds: int = 4,
        cache: Optional[CompileCache] = None,
    ) -> None:
        if max_rounds < 0:
            raise ValueError(f"max_rounds must be >= 0, got {max_rounds}")
        self.solver = solver
        self.max_rounds = max_rounds
        self.cache = cache
        self.metrics = solver.metrics
        self.stats = RefineStats()
        seed = getattr(solver, "_seed", None)
        if seed is None:
            self._rng = np.random.default_rng()
        elif isinstance(seed, (int, np.integer)):
            # Deterministic but decoupled from the driver's stream.
            self._rng = np.random.default_rng(
                np.random.SeedSequence([0x5EF19E, int(seed) & (2**63 - 1)])
            )
        else:
            from repro.utils.rng import spawn_rngs

            (self._rng,) = spawn_rngs(seed, 1)

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #

    def solve(self, problem: CompiledProblem, **solve_params: Any):
        """Run the refinement loop; always returns a sound SmtResult."""
        solver = self.solver
        self._count("refine.solves")
        if problem.trivially_unsat or not problem.formulations:
            # Nothing to refine: ground-decided or variable-free problems
            # take the direct path unchanged.
            return solver._solve_direct(problem, **solve_params)

        warm_states = solve_params.pop("warm_states", None)
        base_assertions = list(solver.assertions)
        session = self._lemma_session(base_assertions)
        blocked: Dict[str, Set[str]] = {v: set() for v in problem.formulations}
        clamp_log: Dict[str, Dict[int, int]] = {}
        current = problem
        # Clamp-aware warm starts: caller-supplied states seed round 0,
        # and every later round reuses the previous round's best
        # *full-width* state per variable — `_sample_reduced` projects it
        # onto whatever index space survives that round's clamps.
        round_warm: Dict[str, np.ndarray] = dict(warm_states or {})

        for _round in range(self.max_rounds):
            self.stats.rounds += 1
            self._count("refine.rounds")
            result = self._solve_round(
                current, problem, round_warm or None, clamp_log, dict(solve_params)
            )
            self._harvest_warm(result, round_warm)
            if result.status is SolveStatus.SAT:
                self._cross_check(result.model, clamp_log)
                solver._count(SolveStatus.SAT)
                return result
            lemmas = self._lemmas_from(result, problem, blocked)
            if not lemmas:
                break  # no provable counterexample left to block
            try:
                session.push()
                for lemma in lemmas:
                    session.assert_term(lemma)
                current = self._compile(session.flattened())
            except (SessionError, CompilationError):
                self._count("refine.lemma_push_failures")
                break
            self.stats.lemmas += len(lemmas)
            self._count("refine.lemmas", len(lemmas))

        # Guaranteed fallback: the unrefined solve of the original
        # problem, on the solver's untouched driver RNG.
        self.stats.fallbacks += 1
        self._count("refine.fallbacks")
        if warm_states is not None:
            solve_params["warm_states"] = warm_states
        fallback = solver._solve_direct(problem, **solve_params)
        if fallback.status is SolveStatus.SAT:
            self._cross_check(fallback.model, clamp_log)
        return fallback

    # ------------------------------------------------------------------ #
    # one round
    # ------------------------------------------------------------------ #

    def _solve_round(
        self,
        current: CompiledProblem,
        base: CompiledProblem,
        warm_states: Optional[Dict[str, np.ndarray]],
        clamp_log: Dict[str, Dict[int, int]],
        solve_params: Dict[str, Any],
    ):
        """Prune, reduce, sample and verify one abstraction round."""
        from repro.smt.solver import SmtResult

        solver = self.solver
        model: Dict[str, str] = {}
        solve_results: Dict[str, SolveResult] = {}
        for variable, formulation in current.formulations.items():
            clamps = self._clamps_for(variable, current, formulation)
            if clamps:
                clamp_log.setdefault(variable, {}).update(clamps)
            warm = warm_states.get(variable) if warm_states else None
            result = self._solve_reduced_with_retries(
                formulation, clamps, warm, **solve_params
            )
            solve_results[variable] = result
            if not result.ok:
                return SmtResult(
                    status=SolveStatus.UNKNOWN,
                    solve_results=solve_results,
                    reason=(
                        f"refine round: no verified witness for {variable!r}"
                    ),
                )
            model[variable] = result.output
        for assertion in solver.assertions:
            if ast.free_string_variables(assertion) and not eval_formula(
                assertion, model
            ):
                return SmtResult(
                    status=SolveStatus.UNKNOWN,
                    model=model,
                    solve_results=solve_results,
                    reason=f"refine round: model fails assertion {assertion!r}",
                )
        return SmtResult(
            status=SolveStatus.SAT, model=model, solve_results=solve_results
        )

    def _harvest_warm(self, result: Any, round_warm: Dict[str, np.ndarray]) -> None:
        """Keep each variable's best full-width state for the next round."""
        for variable, solve_result in result.solve_results.items():
            sampleset = getattr(solve_result, "sampleset", None)
            if sampleset is None or len(sampleset) == 0:
                continue
            round_warm[variable] = np.array(sampleset.states[0], dtype=np.int8)

    def _clamps_for(
        self, variable: str, problem: CompiledProblem, formulation: Any
    ) -> Dict[int, int]:
        """Implied-bit clamps for one variable (empty when unprunable)."""
        width = _string_bits(formulation)
        if width is None:
            return {}
        group = problem.per_variable.get(variable, [])
        domains = implied_domains(variable, group, width // CHAR_BITS)
        if domains is None:
            return {}
        clamps = implied_bit_clamps(domains)
        # Never clamp beyond the string prefix: auxiliary/ancilla bits
        # carry no character semantics.
        return {i: b for i, b in clamps.items() if i < width}

    # ------------------------------------------------------------------ #
    # reduced sampling
    # ------------------------------------------------------------------ #

    def _solve_reduced_with_retries(
        self,
        formulation: Any,
        clamps: Dict[int, int],
        warm_state: Optional[np.ndarray],
        **solve_params: Any,
    ) -> SolveResult:
        """The direct path's retry discipline, over the reduced model."""
        solver = self.solver

        def attempt(_index: int) -> SolveResult:
            return self._sample_reduced(
                formulation, clamps, warm_state, **solve_params
            )

        try:
            outcome = solver.retry_policy.run(
                attempt,
                succeeded=lambda r: r.ok,
                description=f"refine-solve {formulation.describe()}",
            )
        except RetryExhaustedError as exc:
            self._count("refine.retries_exhausted")
            if exc.last_result is not None:
                return exc.last_result
            raise
        return outcome.result

    def _sample_reduced(
        self,
        formulation: Any,
        clamps: Dict[int, int],
        warm_state: Optional[np.ndarray],
        **solve_params: Any,
    ) -> SolveResult:
        """Clamp, sample the reduced QUBO, expand, decode and verify."""
        driver = self.solver._driver
        params = {**driver.sampler_params, **solve_params}
        params.setdefault("num_reads", driver.num_reads)
        params.setdefault("seed", int(self._rng.integers(0, 2**63 - 1)))

        with Timer() as timer:
            with self._stage("embed"):
                model = formulation.build_model()
                full_width = model.num_variables
                clamps = {i: b for i, b in clamps.items() if i < full_width}
                if clamps:
                    reduced, _new_index = fix_variables(model, clamps)
                else:
                    reduced = model
            if warm_state is not None:
                warm = np.asarray(warm_state, dtype=np.int8).ravel()
                if len(warm) < full_width:
                    # Lemma frames can widen the model with fresh aux bits;
                    # seed those at 0 and let the annealer re-derive them.
                    warm = np.concatenate(
                        [warm, np.zeros(full_width - len(warm), dtype=np.int8)]
                    )
                survivors = [v for v in range(full_width) if v not in clamps]
                params["initial_states"] = warm[:full_width][survivors]
            with self._stage("anneal"):
                sampleset = driver.sampler.sample_model(reduced, **params)
        wall = timer.elapsed

        self.stats.anneals += 1
        self.stats.pruned_bits += len(clamps)
        self.stats.qubo_variables.append(reduced.num_variables)
        self.stats.full_variables.append(full_width)
        if reduced.num_variables == 0:
            self.stats.determined += 1
            self._count("refine.determined")
        self._count("refine.pruned_bits", len(clamps))
        if self.metrics is not None:
            self.metrics.observe("refine.qubo_variables", reduced.num_variables)

        if clamps:
            expanded = SampleSet(
                expand_states(sampleset.states, clamps, full_width),
                sampleset.energies,
                num_occurrences=sampleset.num_occurrences,
                info=sampleset.info,
            )
        else:
            expanded = sampleset
        with self._stage("decode"):
            result = result_from_sampleset(formulation, expanded, wall_time=wall)
        result.info["refine"] = {
            "clamped_bits": len(clamps),
            "reduced_variables": reduced.num_variables,
            "full_variables": full_width,
        }
        return result

    # ------------------------------------------------------------------ #
    # lemma learning
    # ------------------------------------------------------------------ #

    def _lemma_session(self, base_assertions: Sequence[ast.Term]) -> SolverSession:
        """The frame stack carrying learned lemmas (PR 8 machinery)."""
        seed = getattr(self.solver, "_seed", None)
        session = SolverSession(
            seed=seed if isinstance(seed, int) else None,
            penalty_strength=self.solver.penalty_strength,
            cache=self.cache if self.cache is not None else CompileCache(maxsize=64),
        )
        for assertion in base_assertions:
            session.assert_term(assertion)
        return session

    def _lemmas_from(
        self,
        result: Any,
        base: CompiledProblem,
        blocked: Dict[str, Set[str]],
    ) -> List[ast.Term]:
        """Blocking lemmas from a failed round's decoded counterexamples.

        A decoded value is only blocked when it *provably* violates one of
        its own base assertions under the concrete semantics — the lemma
        is then implied by the original conjunction, so pushing it can
        never cut off a real model.
        """
        lemmas: List[ast.Term] = []
        for variable, solve_result in result.solve_results.items():
            value = solve_result.output
            if not isinstance(value, str):
                continue
            if value in blocked.get(variable, ()):
                continue
            group = base.per_variable.get(variable, [])
            try:
                fails = not all(
                    eval_formula(a, {variable: value}) for a in group
                )
            except TheoryError:
                continue  # cannot prove the value bad: do not block it
            if fails:
                blocked.setdefault(variable, set()).add(value)
                lemmas.append(
                    ast.Not(ast.Eq(ast.StrVar(variable), ast.StrLit(value)))
                )
        return lemmas

    def _compile(self, flattened: List[ast.Term]) -> CompiledProblem:
        """Compile a lemma-frame state, delta-cached when possible."""
        solver = self.solver
        seed = getattr(solver, "_seed", None)
        if self.cache is not None and (
            seed is None or isinstance(seed, (int, np.integer))
        ):
            problem, hit = self.cache.get_or_compile(
                flattened,
                penalty_strength=solver.penalty_strength,
                seed=None if seed is None else int(seed),
                compile_fn=lambda: compile_assertions(
                    flattened,
                    penalty_strength=solver.penalty_strength,
                    seed=None if seed is None else int(seed),
                ),
            )
            self._count("refine.compile_hits" if hit else "refine.compile_misses")
            return problem
        return compile_assertions(
            flattened, penalty_strength=solver.penalty_strength, seed=seed
        )

    # ------------------------------------------------------------------ #
    # soundness guard
    # ------------------------------------------------------------------ #

    def _cross_check(
        self, model: Dict[str, str], clamp_log: Dict[str, Dict[int, int]]
    ) -> None:
        """A verified model must satisfy every derived implied bit."""
        for variable, clamps in clamp_log.items():
            value = model.get(variable)
            if value is None or not clamps:
                continue
            try:
                bits = encode_string(value)
            except (ValueError, UnicodeEncodeError):
                continue
            for index, expected in clamps.items():
                if index < len(bits) and int(bits[index]) != expected:
                    self._count("refine.unsound")
                    raise UnsoundPropagationError(
                        f"propagation claimed bit {index} of {variable!r} is "
                        f"{expected}, but the verified model "
                        f"{value!r} has {int(bits[index])} — the derived "
                        f"domain fact was unsound"
                    )

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)

    def _stage(self, name: str):
        if self.metrics is None:
            return contextlib.nullcontext()
        return self.metrics.time(name)
