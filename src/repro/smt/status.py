"""The shared solver-status vocabulary.

Historically the three solver stacks reported their outcome as bare
strings (``"sat"`` / ``"unsat"`` / ``"unknown"``) in subtly different
ways, which forced every cross-solver comparison (benchmarks, the
differential oracle in :mod:`repro.verify`) to do ad-hoc mapping.
:class:`SolveStatus` normalizes this: it is a :class:`str`-mixin enum, so

* every historical comparison (``result.status == "sat"``) keeps working,
* JSON serialization produces the plain string value,
* new code can match on the enum members and get exhaustiveness.

``SmtResult``, ``ClassicalResult`` and ``DpllTResult`` all coerce their
``status`` field through :meth:`SolveStatus.from_value`, which accepts the
enum itself, the canonical strings in any case, and the historical aliases.
"""

from __future__ import annotations

import enum
from typing import Union

__all__ = ["SolveStatus"]


class SolveStatus(str, enum.Enum):
    """Tri-state solver outcome, interchangeable with its string value."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    # Keep ``str(status)``, ``f"{status}"`` and ``"%s" % status`` equal to
    # the plain value on every supported Python (3.11 changed the default
    # mixed-in enum formatting).
    __str__ = str.__str__
    __format__ = str.__format__

    # ------------------------------------------------------------------ #

    @classmethod
    def from_value(cls, value: Union["SolveStatus", str]) -> "SolveStatus":
        """Coerce *value* (enum, canonical string, or alias) to a member."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(_ALIASES.get(value.strip().lower(), value.strip().lower()))
            except ValueError:
                pass
        raise ValueError(
            f"not a solver status: {value!r} (expected one of "
            f"{[m.value for m in cls]} or an alias {sorted(_ALIASES)})"
        )

    # ------------------------------------------------------------------ #
    # convenience predicates
    # ------------------------------------------------------------------ #

    @property
    def is_decided(self) -> bool:
        """True for ``sat`` / ``unsat`` (a definite answer)."""
        return self is not SolveStatus.UNKNOWN

    def agrees_with(self, other: Union["SolveStatus", str]) -> bool:
        """True when both statuses are decided and equal."""
        other = SolveStatus.from_value(other)
        return self.is_decided and self is other


#: Historical spellings accepted for backwards compatibility.
_ALIASES = {
    "satisfiable": "sat",
    "unsatisfiable": "unsat",
    "indeterminate": "unknown",
    "timeout": "unknown",
}
