"""S-expression reader for SMT-LIB scripts.

SMT-LIB is a LISP-like surface syntax (§2.1.1 of the paper): commands are
parenthesized lists in prefix notation. This module tokenizes and reads a
script into nested Python lists of atoms:

* ``Symbol`` — identifiers and operators (``assert``, ``str.++``, ...),
* ``int`` — numerals,
* ``str`` — string literals (SMT-LIB ``"..."`` with ``""`` escaping).

Comments run from ``;`` to end of line.
"""

from __future__ import annotations

from typing import Any, List, Tuple

__all__ = ["Symbol", "SExprError", "tokenize", "parse_sexprs"]


class SExprError(ValueError):
    """Malformed s-expression input."""


class Symbol(str):
    """An SMT-LIB symbol; a ``str`` subclass distinguishable from literals."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Symbol({str.__repr__(self)})"


class _Paren:
    """Sentinel token; never confusable with a string literal like '('."""

    __slots__ = ("char",)

    def __init__(self, char: str) -> None:
        self.char = char

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.char


_OPEN = _Paren("(")
_CLOSE = _Paren(")")
_WHITESPACE = set(" \t\r\n")


def tokenize(text: str) -> List[Any]:
    """Split *text* into parens, symbols, numerals and string literals."""
    tokens: List[Any] = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c in _WHITESPACE:
            i += 1
        elif c == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "(":
            tokens.append(_OPEN)
            i += 1
        elif c == ")":
            tokens.append(_CLOSE)
            i += 1
        elif c == '"':
            literal, i = _read_string(text, i)
            tokens.append(literal)
        else:
            start = i
            while i < n and text[i] not in _WHITESPACE and text[i] not in '();"':
                i += 1
            tokens.append(_atom(text[start:i]))
    return tokens


def _read_string(text: str, start: int) -> Tuple[str, int]:
    """Read an SMT-LIB string literal; ``""`` inside is an escaped quote."""
    assert text[start] == '"'
    parts: List[str] = []
    i = start + 1
    n = len(text)
    while i < n:
        c = text[i]
        if c == '"':
            if i + 1 < n and text[i + 1] == '"':
                parts.append('"')
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(c)
        i += 1
    raise SExprError(f"unterminated string literal starting at offset {start}")


def _atom(token: str) -> Any:
    # A numeral is an optional single leading minus followed by digits.
    # (The old `lstrip("-")` check crashed int() on tokens like "--3";
    # those are symbols, not malformed numerals.)
    body = token[1:] if token.startswith("-") else token
    if body.isdigit():
        return int(token)
    return Symbol(token)


def parse_sexprs(text: str) -> List[Any]:
    """Read every top-level s-expression of *text*.

    Returns a list whose elements are atoms or (nested) lists.
    """
    tokens = tokenize(text)
    expressions: List[Any] = []
    stack: List[List[Any]] = []
    for token in tokens:
        if token is _OPEN:
            stack.append([])
        elif token is _CLOSE:
            if not stack:
                raise SExprError("unbalanced ')'")
            done = stack.pop()
            if stack:
                stack[-1].append(done)
            else:
                expressions.append(done)
        else:
            if stack:
                stack[-1].append(token)
            else:
                expressions.append(token)
    if stack:
        raise SExprError(f"unbalanced '(': {len(stack)} unclosed")
    return expressions
