"""Typed terms for the quantifier-free theory of strings.

A small, immutable AST covering the fragment the paper's formulations can
express: string variables and literals, concatenation, replace /
replace-all, reversal, length, containment, index-of, and regular-
expression membership with the ``re.*`` constructors needed for the
supported regex subset (literals, unions of literals = classes, ranges,
plus, concatenation).

Sorts are plain singletons; terms carry their sort via :func:`sort_of`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

__all__ = [
    "StringSort",
    "IntSort",
    "BoolSort",
    "RegLanSort",
    "Term",
    "StrVar",
    "StrLit",
    "IntLit",
    "Concat",
    "Replace",
    "Reverse",
    "At",
    "Substr",
    "PrefixOf",
    "SuffixOf",
    "Length",
    "Contains",
    "IndexOf",
    "InRe",
    "Eq",
    "Not",
    "ReLit",
    "ReUnion",
    "RePlus",
    "ReConcat",
    "ReRange",
    "SoftAssertion",
    "sort_of",
    "free_string_variables",
]


class _Sort:
    """Singleton sort marker."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name


StringSort = _Sort("String")
IntSort = _Sort("Int")
BoolSort = _Sort("Bool")
RegLanSort = _Sort("RegLan")


# --------------------------------------------------------------------- #
# string-sorted terms
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class StrVar:
    """A declared string constant (SMT-LIB ``declare-const x String``)."""

    name: str


@dataclass(frozen=True)
class StrLit:
    """A string literal."""

    value: str


@dataclass(frozen=True)
class IntLit:
    """An integer literal."""

    value: int


@dataclass(frozen=True)
class Concat:
    """``str.++`` — concatenation of two or more string terms."""

    parts: Tuple["Term", ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("str.++ needs at least two operands")


@dataclass(frozen=True)
class Replace:
    """``str.replace`` / ``str.replace_all``."""

    source: "Term"
    old: "Term"
    new: "Term"
    replace_all: bool = False


@dataclass(frozen=True)
class Reverse:
    """``str.rev`` (widely-supported extension; z3 implements it)."""

    source: "Term"


@dataclass(frozen=True)
class At:
    """``str.at s i`` — the one-character string at index i (or empty)."""

    source: "Term"
    index: "Term"


@dataclass(frozen=True)
class Substr:
    """``str.substr s i n`` — SMT-LIB substring extraction."""

    source: "Term"
    offset: "Term"
    count: "Term"


# --------------------------------------------------------------------- #
# int / bool-sorted terms
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Length:
    """``str.len``."""

    source: "Term"


@dataclass(frozen=True)
class Contains:
    """``str.contains haystack needle``."""

    haystack: "Term"
    needle: "Term"


@dataclass(frozen=True)
class PrefixOf:
    """``str.prefixof prefix string``."""

    prefix: "Term"
    string: "Term"


@dataclass(frozen=True)
class SuffixOf:
    """``str.suffixof suffix string``."""

    suffix: "Term"
    string: "Term"


@dataclass(frozen=True)
class IndexOf:
    """``str.indexof haystack needle start`` (−1 when absent)."""

    haystack: "Term"
    needle: "Term"
    start: "Term" = field(default_factory=lambda: IntLit(0))


@dataclass(frozen=True)
class InRe:
    """``str.in_re string regex``."""

    string: "Term"
    regex: "Term"


@dataclass(frozen=True)
class Eq:
    """Polymorphic equality."""

    lhs: "Term"
    rhs: "Term"


@dataclass(frozen=True)
class Not:
    """Boolean negation."""

    operand: "Term"


# --------------------------------------------------------------------- #
# regular-language terms
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ReLit:
    """``str.to_re`` of a literal: the language { value }."""

    value: str


@dataclass(frozen=True)
class ReUnion:
    """``re.union``."""

    parts: Tuple["Term", ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("re.union needs at least two operands")


@dataclass(frozen=True)
class RePlus:
    """``re.+``."""

    child: "Term"


@dataclass(frozen=True)
class ReConcat:
    """``re.++``."""

    parts: Tuple["Term", ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("re.++ needs at least two operands")


@dataclass(frozen=True)
class ReRange:
    """``re.range "a" "z"`` — a contiguous single-character class."""

    lo: str
    hi: str

    def __post_init__(self) -> None:
        if len(self.lo) != 1 or len(self.hi) != 1:
            raise ValueError("re.range endpoints must be single characters")
        if ord(self.hi) < ord(self.lo):
            raise ValueError(f"inverted re.range {self.lo!r}..{self.hi!r}")


# --------------------------------------------------------------------- #
# weighted (MaxSMT) assertions
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SoftAssertion:
    """An ``(assert-soft term :weight w [:id group])`` record.

    Not a :data:`Term` — soft assertions live beside the hard assertion
    conjunction in a script, and violating one costs ``weight`` in the
    MaxSMT objective instead of making the instance unsatisfiable.
    ``group`` labels related soft assertions (SMT-LIB ``:id``); the empty
    string means ungrouped.
    """

    term: "Term"
    weight: float = 1.0
    group: str = ""

    def __post_init__(self) -> None:
        if not (self.weight > 0):
            raise ValueError(
                f"soft-assertion weight must be > 0, got {self.weight!r}"
            )


Term = Union[
    StrVar,
    StrLit,
    IntLit,
    Concat,
    Replace,
    Reverse,
    At,
    Substr,
    PrefixOf,
    SuffixOf,
    Length,
    Contains,
    IndexOf,
    InRe,
    Eq,
    Not,
    ReLit,
    ReUnion,
    RePlus,
    ReConcat,
    ReRange,
]

_STRING_TERMS = (StrVar, StrLit, Concat, Replace, Reverse, At, Substr)
_INT_TERMS = (IntLit, Length, IndexOf)
_BOOL_TERMS = (Contains, PrefixOf, SuffixOf, InRe, Eq, Not)
_RE_TERMS = (ReLit, ReUnion, RePlus, ReConcat, ReRange)


def sort_of(term: Term) -> _Sort:
    """The sort of *term*."""
    if isinstance(term, _STRING_TERMS):
        return StringSort
    if isinstance(term, _INT_TERMS):
        return IntSort
    if isinstance(term, _BOOL_TERMS):
        return BoolSort
    if isinstance(term, _RE_TERMS):
        return RegLanSort
    raise TypeError(f"not a term: {term!r}")


def free_string_variables(term: Term) -> set:
    """Names of all string variables occurring in *term*."""
    if isinstance(term, StrVar):
        return {term.name}
    if isinstance(term, (StrLit, IntLit, ReLit, ReRange)):
        return set()
    if isinstance(term, (Concat, ReUnion, ReConcat)):
        out: set = set()
        for part in term.parts:
            out |= free_string_variables(part)
        return out
    if isinstance(term, Replace):
        return (
            free_string_variables(term.source)
            | free_string_variables(term.old)
            | free_string_variables(term.new)
        )
    if isinstance(term, (Reverse, Length)):
        return free_string_variables(term.source)
    if isinstance(term, At):
        return free_string_variables(term.source) | free_string_variables(term.index)
    if isinstance(term, Substr):
        return (
            free_string_variables(term.source)
            | free_string_variables(term.offset)
            | free_string_variables(term.count)
        )
    if isinstance(term, PrefixOf):
        return free_string_variables(term.prefix) | free_string_variables(term.string)
    if isinstance(term, SuffixOf):
        return free_string_variables(term.suffix) | free_string_variables(term.string)
    if isinstance(term, Contains):
        return free_string_variables(term.haystack) | free_string_variables(
            term.needle
        )
    if isinstance(term, IndexOf):
        return (
            free_string_variables(term.haystack)
            | free_string_variables(term.needle)
            | free_string_variables(term.start)
        )
    if isinstance(term, InRe):
        return free_string_variables(term.string) | free_string_variables(term.regex)
    if isinstance(term, Eq):
        return free_string_variables(term.lhs) | free_string_variables(term.rhs)
    if isinstance(term, (Not, RePlus)):
        inner = term.operand if isinstance(term, Not) else term.child
        return free_string_variables(inner)
    raise TypeError(f"not a term: {term!r}")
