"""The user-facing quantum SMT solver.

:class:`QuantumSMTSolver` glues the stack together: parse SMT-LIB (or take
programmatic assertions), compile to QUBO formulations, sample with the
configured annealer, decode and verify, and answer ``check-sat`` /
``get-model`` / ``get-value``.

Soundness contract: ``sat`` is only reported for a **verified** model —
every assertion is re-evaluated under the concrete string semantics. The
annealer failing to produce a verifying model yields ``unknown`` (the
method is incomplete, like any stochastic optimizer); a concretely-false
ground assertion yields ``unsat``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.anneal.base import Sampler
from repro.core.solver import SolveResult, StringQuboSolver
from repro.service.metrics import MetricsRegistry
from repro.service.policy import RetryExhaustedError, RetryPolicy
from repro.smt import ast
from repro.smt.compiler import CompilationError, CompiledProblem, compile_assertions
from repro.smt.parser import ParseError, SmtScript, parse_script
from repro.smt.status import SolveStatus
from repro.smt.theory import eval_formula
from repro.utils.rng import SeedLike

__all__ = ["QuantumSMTSolver", "SmtResult"]

# Canonical statuses; module-level names kept for backwards compatibility
# (old code compared against the bare strings, which still works because
# SolveStatus is a str-mixin enum).
SAT = SolveStatus.SAT
UNSAT = SolveStatus.UNSAT
UNKNOWN = SolveStatus.UNKNOWN


@dataclass
class SmtResult:
    """Outcome of one ``check_sat`` call."""

    status: SolveStatus
    model: Dict[str, str] = field(default_factory=dict)
    solve_results: Dict[str, SolveResult] = field(default_factory=dict)
    reason: str = ""

    def __post_init__(self) -> None:
        # Accept historical bare strings ("sat"/"unsat"/"unknown") and
        # normalize them onto the shared enum.
        self.status = SolveStatus.from_value(self.status)

    def __repr__(self) -> str:
        return f"SmtResult(status={self.status.value!r}, model={self.model!r})"


class QuantumSMTSolver:
    """Check satisfiability of string constraints by quantum annealing.

    Parameters
    ----------
    sampler:
        Any :class:`~repro.anneal.base.Sampler`; default simulated
        annealing (the paper's configuration).
    num_reads, sampler_params, seed:
        Forwarded to the underlying
        :class:`~repro.core.solver.StringQuboSolver`.
    max_attempts:
        Restarts per variable when verification fails (annealing is
        stochastic; retrying with fresh seeds recovers most misses).
        Shorthand for ``retry_policy=RetryPolicy(max_attempts=...)``.
    retry_policy:
        Full :class:`~repro.service.policy.RetryPolicy` (per-attempt
        timeout, backoff). Takes precedence over ``max_attempts``.
    metrics:
        Optional :class:`~repro.service.metrics.MetricsRegistry`; when
        given, compile/anneal stage timings and check-sat outcome counters
        are recorded into it.
    strategy:
        ``"direct"`` (the default pipeline) or ``"refine"`` — the CEGAR
        loop of :mod:`repro.smt.refine`: classical propagation clamps
        implied bits, the annealer samples the reduced QUBO, failed
        verifications become blocking lemmas, and the loop falls back to
        the unrefined solve under a round budget.
    refine_max_rounds:
        Round budget for ``strategy="refine"``; ``0`` makes every check
        take the guaranteed fallback, bit-identical to ``"direct"`` at
        the same seed.
    compile_cache:
        Optional shared :class:`~repro.service.cache.CompileCache` the
        refinement engine compiles lemma-frame states through (sessions
        and the server pass theirs in, so lemma states delta-compile once
        per content hash). Unused by the direct strategy.
    """

    def __init__(
        self,
        sampler: Optional[Sampler] = None,
        num_reads: int = 64,
        seed: SeedLike = None,
        sampler_params: Optional[Dict[str, Any]] = None,
        max_attempts: int = 3,
        penalty_strength: float = 1.0,
        retry_policy: Optional[RetryPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        strategy: str = "direct",
        refine_max_rounds: int = 4,
        compile_cache: Optional[Any] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if strategy not in ("direct", "refine"):
            raise ValueError(
                f"strategy must be 'direct' or 'refine', got {strategy!r}"
            )
        if refine_max_rounds < 0:
            raise ValueError(
                f"refine_max_rounds must be >= 0, got {refine_max_rounds}"
            )
        self.metrics = metrics
        self.strategy = strategy
        self.refine_max_rounds = refine_max_rounds
        self.compile_cache = compile_cache
        self.last_refine_stats = None
        self._driver = StringQuboSolver(
            sampler=sampler,
            num_reads=num_reads,
            seed=seed,
            sampler_params=sampler_params,
            metrics=metrics,
        )
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_attempts=max_attempts)
        )
        self.max_attempts = self.retry_policy.max_attempts
        self.penalty_strength = penalty_strength
        self._seed = seed
        self.assertions: List[ast.Term] = []
        self.declarations: Dict[str, Any] = {}
        self._last: Optional[SmtResult] = None

    # ------------------------------------------------------------------ #
    # problem construction
    # ------------------------------------------------------------------ #

    def declare_const(self, name: str, sort=ast.StringSort) -> ast.StrVar:
        """Declare a constant (programmatic equivalent of declare-const)."""
        if name in self.declarations:
            raise ValueError(f"duplicate declaration of {name!r}")
        self.declarations[name] = sort
        return ast.StrVar(name)

    def add_assertion(self, formula: ast.Term) -> None:
        """Assert a Bool-sorted term."""
        self.assertions.append(formula)
        self._last = None

    def load_script(self, script: SmtScript) -> None:
        """Adopt declarations and assertions from a parsed script."""
        for name, sort in script.declarations.items():
            if name not in self.declarations:
                self.declarations[name] = sort
        self.assertions.extend(script.assertions)
        self._last = None

    @classmethod
    def from_script_text(cls, text: str, **kwargs: Any) -> "QuantumSMTSolver":
        """Build a solver directly from SMT-LIB source."""
        solver = cls(**kwargs)
        solver.load_script(parse_script(text))
        return solver

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #

    def compile(self) -> CompiledProblem:
        """Lower the asserted conjunction to QUBO formulations."""
        if self.metrics is not None:
            with self.metrics.time("compile"):
                return compile_assertions(
                    self.assertions,
                    penalty_strength=self.penalty_strength,
                    seed=self._seed,
                )
        return compile_assertions(
            self.assertions,
            penalty_strength=self.penalty_strength,
            seed=self._seed,
        )

    def check_sat(self, **solve_params: Any) -> SmtResult:
        """Decide the asserted conjunction; see the soundness contract above."""
        try:
            problem = self.compile()
        except CompilationError as exc:
            self._last = SmtResult(status=UNKNOWN, reason=f"compilation: {exc}")
            self._count(UNKNOWN)
            return self._last
        return self.solve_compiled(problem, **solve_params)

    def solve_compiled(
        self, problem: CompiledProblem, **solve_params: Any
    ) -> SmtResult:
        """Decide a pre-compiled problem (the cache-hit fast path).

        ``check_sat`` is ``solve_compiled(self.compile())``; the batch
        service calls this directly with problems from the
        :class:`~repro.service.cache.CompileCache` so repeated
        formulations skip compilation entirely. With ``strategy="refine"``
        the CEGAR engine drives the solve (reduced QUBOs, blocking
        lemmas, guaranteed fallback); the direct pipeline runs otherwise.
        """
        if self.strategy == "refine":
            from repro.smt.refine import RefinementEngine

            engine = RefinementEngine(
                self,
                max_rounds=self.refine_max_rounds,
                cache=self.compile_cache,
            )
            result = engine.solve(problem, **solve_params)
            self.last_refine_stats = engine.stats
            self._last = result
            return result
        return self._solve_direct(problem, **solve_params)

    def _solve_direct(
        self, problem: CompiledProblem, **solve_params: Any
    ) -> SmtResult:
        """The unrefined pipeline (also the refinement engine's fallback)."""
        # Optional per-variable annealer starting states (incremental
        # sessions seed these from the previous frame's model). Popped
        # here so the per-variable vectors never leak to sampler kwargs.
        warm_states = solve_params.pop("warm_states", None)

        if problem.trivially_unsat:
            failed = [a for a, truth in problem.ground_results if not truth]
            self._last = SmtResult(
                status=UNSAT, reason=f"ground assertion false: {failed[0]!r}"
            )
            self._count(UNSAT)
            return self._last

        model: Dict[str, str] = {}
        solve_results: Dict[str, SolveResult] = {}
        for variable, formulation in problem.formulations.items():
            params = dict(solve_params)
            if warm_states and variable in warm_states:
                params["initial_states"] = warm_states[variable]
            result = self._solve_with_retries(formulation, **params)
            solve_results[variable] = result
            if not result.ok:
                self._last = SmtResult(
                    status=UNKNOWN,
                    solve_results=solve_results,
                    reason=(
                        f"annealer did not produce a verified witness for "
                        f"{variable!r} in {self.max_attempts} attempts"
                    ),
                )
                self._count(UNKNOWN)
                return self._last
            model[variable] = result.output

        # Final end-to-end model check under the concrete semantics.
        for assertion in self.assertions:
            if ast.free_string_variables(assertion) and not eval_formula(
                assertion, model
            ):
                self._last = SmtResult(
                    status=UNKNOWN,
                    model=model,
                    solve_results=solve_results,
                    reason=f"model fails assertion {assertion!r}",
                )
                self._count(UNKNOWN)
                return self._last
        self._last = SmtResult(status=SAT, model=model, solve_results=solve_results)
        self._count(SAT)
        return self._last

    def _count(self, status: str) -> None:
        if self.metrics is not None:
            self.metrics.counter("smt.check_sat").inc()
            self.metrics.counter(f"smt.{status}").inc()

    def _solve_with_retries(self, formulation, **solve_params: Any) -> SolveResult:
        """One robustness layer for the stochastic backend (shared policy).

        Exhausted retries with a decoded-but-unverified last result are
        mapped onto that result (the soundness contract turns it into
        ``unknown``); exhausted retries where every attempt *raised* —
        including per-attempt timeouts — re-raise the typed
        :class:`~repro.service.policy.RetryExhaustedError`.
        """

        def attempt(_index: int) -> SolveResult:
            return self._driver.solve(formulation, **solve_params)

        try:
            outcome = self.retry_policy.run(
                attempt,
                succeeded=lambda r: r.ok,
                description=f"solve {formulation.describe()}",
            )
        except RetryExhaustedError as exc:
            if self.metrics is not None:
                self.metrics.counter("smt.retries_exhausted").inc()
            if exc.last_result is not None:
                return exc.last_result
            raise
        if self.metrics is not None and outcome.attempts > 1:
            self.metrics.counter("smt.retried_solves").inc()
        return outcome.result

    # ------------------------------------------------------------------ #
    # model access
    # ------------------------------------------------------------------ #

    def get_model(self) -> Dict[str, str]:
        """The model of the last ``sat`` answer."""
        if self._last is None:
            raise RuntimeError("call check_sat() first")
        if self._last.status != SAT:
            raise RuntimeError(f"no model: last status was {self._last.status!r}")
        return dict(self._last.model)

    def get_value(self, name: str) -> str:
        """Value of one variable in the last model."""
        model = self.get_model()
        if name not in model:
            raise KeyError(f"no value for {name!r} in the model")
        return model[name]

    # ------------------------------------------------------------------ #
    # script execution (REPL-style)
    # ------------------------------------------------------------------ #

    def run_script_text(self, text: str, **solve_params: Any) -> List[str]:
        """Execute a script; returns the solver's printed outputs in order.

        Commands are processed sequentially with SMT-LIB assertion-stack
        semantics: ``(push n)`` snapshots the assertion set, ``(pop n)``
        restores it (declarations, per common solver practice, persist).
        """
        script = parse_script(text)
        for name, sort in script.declarations.items():
            if name not in self.declarations:
                self.declarations[name] = sort
        stack: List[int] = []
        outputs: List[str] = []
        for command, payload in script.commands:
            if command == "assert":
                self.assertions.append(payload)
                self._last = None
            elif command == "push":
                for _ in range(payload):
                    stack.append(len(self.assertions))
            elif command == "pop":
                if payload > len(stack):
                    raise ParseError(
                        f"pop {payload} exceeds the assertion-stack depth {len(stack)}"
                    )
                mark = len(self.assertions)
                for _ in range(payload):
                    mark = stack.pop()
                del self.assertions[mark:]
                self._last = None
            elif command == "check-sat":
                outputs.append(self.check_sat(**solve_params).status)
            elif command == "get-model":
                model = self.get_model()
                lines = ["("]
                for name, value in sorted(model.items()):
                    escaped = value.replace('"', '""')
                    lines.append(
                        f'  (define-fun {name} () String "{escaped}")'
                    )
                lines.append(")")
                outputs.append("\n".join(lines))
            elif command == "get-value":
                parts = []
                for term in payload:
                    if isinstance(term, ast.StrVar):
                        value = self.get_value(term.name)
                        escaped = value.replace('"', '""')
                        parts.append(f'({term.name} "{escaped}")')
                    else:
                        value = eval_formula_or_term(term, self.get_model())
                        parts.append(f"({term!r} {value!r})")
                outputs.append("(" + " ".join(parts) + ")")
            elif command == "echo":
                outputs.append(" ".join(str(p) for p in payload))
            elif command == "exit":
                break
        return outputs


def eval_formula_or_term(term: ast.Term, model: Dict[str, str]):
    """Evaluate any term under a model (helper for get-value)."""
    from repro.smt.theory import eval_term

    return eval_term(term, model)
