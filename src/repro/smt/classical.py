"""Classical baseline string solver.

The comparison point the paper argues against: a classical search over the
string space with constraint propagation. The algorithm:

1. infer each variable's length (exactly, or scan a length range),
2. build per-position character **domains** by propagating the structural
   constraints (equalities fix characters; regex membership restricts
   positions to class sets; containment/index-of/substr pin windows — branching
   over the feasible placements and regex expansions),
3. run a depth-first search over the remaining free positions (restricted
   to a *fill alphabet*: the characters occurring in the constraints plus a
   default letter), verifying complete candidates against the concrete
   theory semantics.

Complete relative to its fill alphabet and length bound, and exact on the
fragment the QUBO compiler supports — which is what makes it a fair
baseline for ``benchmarks/bench_classical_vs_quantum.py``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.regex import expand_to_length
from repro.smt import ast
from repro.smt.status import SolveStatus
from repro.smt.theory import TheoryError, eval_formula, regex_term_to_tokens

__all__ = ["ClassicalStringSolver", "ClassicalResult"]

# Shared enum; bare-string comparisons keep working (str-mixin).
SAT = SolveStatus.SAT
UNSAT = SolveStatus.UNSAT
UNKNOWN = SolveStatus.UNKNOWN


@dataclass
class ClassicalResult:
    """Outcome of a classical solve."""

    status: SolveStatus
    model: Dict[str, str] = field(default_factory=dict)
    nodes_explored: int = 0
    reason: str = ""

    def __post_init__(self) -> None:
        self.status = SolveStatus.from_value(self.status)


class ClassicalStringSolver:
    """Propagation + backtracking baseline over the same fragment.

    Parameters
    ----------
    max_length:
        Length-scan bound for variables with no exact length constraint.
    default_fill:
        Character(s) guaranteed to be in every fill alphabet.
    node_budget:
        Hard cap on search nodes before giving up with ``unknown``.
    """

    def __init__(
        self,
        max_length: int = 12,
        default_fill: str = "a",
        node_budget: int = 2_000_000,
    ) -> None:
        if max_length < 0:
            raise ValueError(f"max_length must be >= 0, got {max_length}")
        if node_budget < 1:
            raise ValueError(f"node_budget must be >= 1, got {node_budget}")
        self.max_length = max_length
        self.default_fill = default_fill
        self.node_budget = node_budget

    # ------------------------------------------------------------------ #

    def solve(self, assertions: Sequence[ast.Term]) -> ClassicalResult:
        """Decide a conjunction of assertions over string variables."""
        assertions = list(assertions)
        # Ground assertions decide immediately.
        for assertion in assertions:
            if not ast.free_string_variables(assertion):
                if not eval_formula(assertion, {}):
                    return ClassicalResult(
                        status=UNSAT, reason=f"ground assertion false: {assertion!r}"
                    )
        grouped: Dict[str, List[ast.Term]] = {}
        for assertion in assertions:
            variables = ast.free_string_variables(assertion)
            if len(variables) > 1:
                return ClassicalResult(
                    status=UNKNOWN,
                    reason=f"multi-variable assertion unsupported: {assertion!r}",
                )
            if variables:
                (v,) = variables
                grouped.setdefault(v, []).append(assertion)

        model: Dict[str, str] = {}
        nodes_total = 0
        for variable, group in grouped.items():
            value, nodes, reason = self._solve_variable(variable, group)
            nodes_total += nodes
            if value is None:
                # Exhausting the (complete-up-to-fill-alphabet) search or
                # proving no feasible length are both refutations; only a
                # blown node budget is inconclusive.
                status = UNKNOWN if "budget" in reason else UNSAT
                return ClassicalResult(
                    status=status,
                    nodes_explored=nodes_total,
                    reason=f"{variable!r}: {reason}",
                )
            model[variable] = value
        return ClassicalResult(status=SAT, model=model, nodes_explored=nodes_total)

    # ------------------------------------------------------------------ #

    def _solve_variable(
        self, variable: str, group: List[ast.Term]
    ) -> Tuple[Optional[str], int, str]:
        lengths = self._candidate_lengths(variable, group)
        if not lengths:
            return None, 0, "no feasible length"
        fill = self._fill_alphabet(group)
        nodes = 0
        for length in lengths:
            for domains in self._domain_branches(variable, group, length):
                found, used = self._search(variable, group, domains, fill, nodes)
                nodes = used
                if nodes >= self.node_budget:
                    return None, nodes, "node budget exhausted"
                if found is not None:
                    return found, nodes, ""
        return None, nodes, "exhausted"

    def _candidate_lengths(
        self, variable: str, group: List[ast.Term]
    ) -> List[int]:
        exact: Set[int] = set()
        lower = 0
        for assertion in group:
            e, lo = _length_facts(variable, assertion)
            if e is not None:
                exact.add(e)
            if lo is not None:
                lower = max(lower, lo)
        if exact:
            if len(exact) > 1:
                return []
            (length,) = exact
            return [length] if length >= lower else []
        return list(range(lower, self.max_length + 1))

    def _fill_alphabet(self, group: List[ast.Term]) -> str:
        chars: Set[str] = set(self.default_fill)
        for assertion in group:
            chars |= _constraint_characters(assertion)
        # Negative constraints ("x is not ...") need at least one character
        # the constraints never mention, or every candidate collides.
        for escape in "abcdefghijklmnopqrstuvwxyz0123456789":
            if escape not in chars:
                chars.add(escape)
                break
        return "".join(sorted(chars))

    # ------------------------------------------------------------------ #
    # propagation
    # ------------------------------------------------------------------ #

    def _domain_branches(
        self, variable: str, group: List[ast.Term], length: int
    ) -> Iterator[List[Optional[FrozenSet[str]]]]:
        """Yield per-position domain vectors, branching over placements.

        ``None`` means "unconstrained position" (filled from the fill
        alphabet during search).
        """
        branch_lists: List[List[List[Optional[FrozenSet[str]]]]] = []
        for assertion in group:
            options = _propagate(variable, assertion, length)
            if options is None:
                continue  # not structurally propagatable; checked at leaves
            if not options:
                return  # this assertion is infeasible at this length
            branch_lists.append(options)
        if not branch_lists:
            yield [None] * length
            return
        for combo in itertools.product(*branch_lists):
            merged = _merge_domains(combo, length)
            if merged is not None:
                yield merged

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #

    def _search(
        self,
        variable: str,
        group: List[ast.Term],
        domains: List[Optional[FrozenSet[str]]],
        fill: str,
        nodes: int,
    ) -> Tuple[Optional[str], int]:
        position_choices: List[Sequence[str]] = []
        for domain in domains:
            if domain is None:
                position_choices.append(fill)
            else:
                position_choices.append(sorted(domain))
        for candidate in itertools.product(*position_choices):
            nodes += 1
            if nodes >= self.node_budget:
                return None, nodes
            text = "".join(candidate)
            if all(eval_formula(a, {variable: text}) for a in group):
                return text, nodes
        return None, nodes


# --------------------------------------------------------------------- #
# constraint analysis (module-level, shared with tests)
# --------------------------------------------------------------------- #


def _length_facts(
    variable: str, assertion: ast.Term
) -> Tuple[Optional[int], Optional[int]]:
    if isinstance(assertion, ast.Eq):
        for a, b in ((assertion.lhs, assertion.rhs), (assertion.rhs, assertion.lhs)):
            if (
                isinstance(a, ast.Length)
                and isinstance(a.source, ast.StrVar)
                and a.source.name == variable
                and isinstance(b, ast.IntLit)
            ):
                return (b.value, None) if b.value >= 0 else (None, None)
            if isinstance(a, ast.StrVar) and a.name == variable:
                value = _try_ground(b)
                if value is not None:
                    return len(value), None
            if (
                isinstance(a, ast.IndexOf)
                and isinstance(a.haystack, ast.StrVar)
                and a.haystack.name == variable
                and isinstance(b, ast.IntLit)
                and b.value >= 0
            ):
                needle = _try_ground(a.needle)
                if needle is not None:
                    return None, b.value + len(needle)
    if isinstance(assertion, ast.Contains) and isinstance(
        assertion.haystack, ast.StrVar
    ):
        needle = _try_ground(assertion.needle)
        if needle is not None:
            return None, len(needle)
    if isinstance(assertion, ast.PrefixOf) and isinstance(assertion.string, ast.StrVar):
        prefix = _try_ground(assertion.prefix)
        if prefix is not None:
            return None, len(prefix)
    if isinstance(assertion, ast.SuffixOf) and isinstance(assertion.string, ast.StrVar):
        suffix = _try_ground(assertion.suffix)
        if suffix is not None:
            return None, len(suffix)
    if isinstance(assertion, ast.InRe):
        try:
            tokens = regex_term_to_tokens(assertion.regex)
        except TheoryError:
            return None, None
        return None, len(tokens)
    return None, None


def _try_ground(term: ast.Term) -> Optional[str]:
    if ast.free_string_variables(term):
        return None
    from repro.smt.theory import eval_term

    try:
        value = eval_term(term, {})
    except TheoryError:
        return None
    return value if isinstance(value, str) else None


def _constraint_characters(assertion: ast.Term) -> Set[str]:
    """Every character literally mentioned by an assertion."""
    chars: Set[str] = set()

    def walk(term: ast.Term) -> None:
        if isinstance(term, ast.StrLit):
            chars.update(term.value)
        elif isinstance(term, ast.ReLit):
            chars.update(term.value)
        elif isinstance(term, ast.ReRange):
            chars.update(chr(c) for c in range(ord(term.lo), ord(term.hi) + 1))
        elif isinstance(term, (ast.Concat, ast.ReUnion, ast.ReConcat)):
            for part in term.parts:
                walk(part)
        elif isinstance(term, ast.Replace):
            walk(term.source)
            walk(term.old)
            walk(term.new)
        elif isinstance(term, (ast.Reverse, ast.Length)):
            walk(term.source)
        elif isinstance(term, (ast.At, ast.Substr)):
            walk(term.source)
        elif isinstance(term, ast.PrefixOf):
            walk(term.prefix)
            walk(term.string)
        elif isinstance(term, ast.SuffixOf):
            walk(term.suffix)
            walk(term.string)
        elif isinstance(term, ast.Contains):
            walk(term.haystack)
            walk(term.needle)
        elif isinstance(term, ast.IndexOf):
            walk(term.haystack)
            walk(term.needle)
        elif isinstance(term, ast.InRe):
            walk(term.string)
            walk(term.regex)
        elif isinstance(term, ast.Eq):
            walk(term.lhs)
            walk(term.rhs)
        elif isinstance(term, (ast.Not, ast.RePlus)):
            walk(term.operand if isinstance(term, ast.Not) else term.child)

    walk(assertion)
    return chars


def _propagate(
    variable: str, assertion: ast.Term, length: int
) -> Optional[List[List[Optional[FrozenSet[str]]]]]:
    """Structural propagation of one assertion at a fixed length.

    Returns a list of alternative domain vectors (an OR over placements /
    expansions), an empty list when infeasible, or ``None`` when the
    assertion carries no positional structure (leaf-checked instead).
    """
    if isinstance(assertion, ast.Eq):
        for a, b in ((assertion.lhs, assertion.rhs), (assertion.rhs, assertion.lhs)):
            if isinstance(a, ast.StrVar) and a.name == variable:
                value = _try_ground(b)
                if value is not None:
                    if len(value) != length:
                        return []
                    return [[frozenset(c) for c in value]]
            if (
                isinstance(a, ast.IndexOf)
                and isinstance(a.haystack, ast.StrVar)
                and a.haystack.name == variable
                and isinstance(b, ast.IntLit)
            ):
                needle = _try_ground(a.needle)
                if needle is None:
                    return None
                p = b.value
                if p < 0 or p + len(needle) > length:
                    return []
                domains: List[Optional[FrozenSet[str]]] = [None] * length
                for k, c in enumerate(needle):
                    domains[p + k] = frozenset(c)
                return [domains]
            if (
                isinstance(a, ast.Substr)
                and isinstance(a.source, ast.StrVar)
                and a.source.name == variable
                and isinstance(a.offset, ast.IntLit)
                and isinstance(a.count, ast.IntLit)
            ):
                value = _try_ground(b)
                if value is None:
                    return None
                offset, count = a.offset.value, a.count.value
                if offset < 0 or count < 0 or offset > length:
                    # SMT-LIB clamp: an out-of-range substr is "" for every
                    # candidate, so the equation constrains no position.
                    return [[None] * length] if value == "" else []
                # In-range windows clamp to the end of the string; the
                # equation is only satisfiable when the ground side has
                # exactly the clamped width.
                window = min(count, length - offset)
                if len(value) != window:
                    return []
                domains = [None] * length
                for k, c in enumerate(value):
                    domains[offset + k] = frozenset(c)
                return [domains]
    if (
        isinstance(assertion, ast.PrefixOf)
        and isinstance(assertion.string, ast.StrVar)
        and assertion.string.name == variable
    ):
        prefix = _try_ground(assertion.prefix)
        if prefix is None:
            return None
        if len(prefix) > length:
            return []
        pinned: List[Optional[FrozenSet[str]]] = [None] * length
        for k, c in enumerate(prefix):
            pinned[k] = frozenset(c)
        return [pinned]
    if (
        isinstance(assertion, ast.SuffixOf)
        and isinstance(assertion.string, ast.StrVar)
        and assertion.string.name == variable
    ):
        suffix = _try_ground(assertion.suffix)
        if suffix is None:
            return None
        if len(suffix) > length:
            return []
        pinned = [None] * length
        for k, c in enumerate(suffix):
            pinned[length - len(suffix) + k] = frozenset(c)
        return [pinned]
    if isinstance(assertion, ast.Contains) and isinstance(
        assertion.haystack, ast.StrVar
    ):
        needle = _try_ground(assertion.needle)
        if needle is None:
            return None
        options = []
        for start in range(length - len(needle) + 1):
            domains = [None] * length
            for k, c in enumerate(needle):
                domains[start + k] = frozenset(c)
            options.append(domains)
        return options
    if isinstance(assertion, ast.InRe) and isinstance(assertion.string, ast.StrVar):
        try:
            tokens = regex_term_to_tokens(assertion.regex)
        except TheoryError:
            return None
        return _regex_expansions(tokens, length)
    return None


def _regex_expansions(
    tokens, length: int, max_options: int = 256
) -> List[List[Optional[FrozenSet[str]]]]:
    """All per-position domain vectors a subset-regex admits at *length*.

    Enumerates every distribution of the slack over the plus-tokens (each
    token consumes >= 1 position), capped at *max_options* compositions —
    beyond the cap the earliest-token-greedy prefix of the enumeration is
    kept, an explicit under-approximation for pathological patterns.
    """
    slack = length - len(tokens)
    if slack < 0:
        return []
    plus_indices = [i for i, t in enumerate(tokens) if t.plus]
    if slack > 0 and not plus_indices:
        return []
    options: List[List[Optional[FrozenSet[str]]]] = []
    for composition in _compositions(slack, len(plus_indices) or 1, max_options):
        repeats = [1] * len(tokens)
        if plus_indices:
            for idx, extra in zip(plus_indices, composition):
                repeats[idx] += extra
        positions: List[Optional[FrozenSet[str]]] = []
        for token, count in zip(tokens, repeats):
            positions.extend([frozenset(token.chars)] * count)
        if positions not in options:
            options.append(positions)
        if len(options) >= max_options:
            break
    return options


def _compositions(total: int, parts: int, cap: int) -> Iterator[Tuple[int, ...]]:
    """Weak compositions of *total* into *parts* non-negative summands."""
    if parts == 1:
        yield (total,)
        return
    count = 0
    for first in range(total + 1):
        for rest in _compositions(total - first, parts - 1, cap):
            yield (first,) + rest
            count += 1
            if count >= cap:
                return


def _merge_domains(
    combo: Sequence[List[Optional[FrozenSet[str]]]], length: int
) -> Optional[List[Optional[FrozenSet[str]]]]:
    merged: List[Optional[FrozenSet[str]]] = [None] * length
    for domains in combo:
        for i, domain in enumerate(domains):
            if domain is None:
                continue
            if merged[i] is None:
                merged[i] = domain
            else:
                intersect = merged[i] & domain
                if not intersect:
                    return None
                merged[i] = intersect
    return merged
