"""The serving layer: an asyncio SMT-solving server over TCP/HTTP.

This subpackage is the deployment shape the ROADMAP's north star asks for
— the §4 string-QUBO pipeline as a long-lived service fed a stream of
SMT-LIB instances:

* :mod:`~repro.server.protocol` — JSON response envelopes, the typed
  error taxonomy (``parse`` / ``too_large`` / ``overloaded`` /
  ``timeout`` / ``draining`` / ``cancelled``), and located parse errors;
* :mod:`~repro.server.httpio` — minimal asyncio HTTP/1.1 framing with
  socket-layer request-size enforcement;
* :mod:`~repro.server.admission` — the bounded admission queue: explicit
  backpressure (reject, never buffer unboundedly), deadline-aware slot
  waits, drain support;
* :mod:`~repro.server.workers` — executor-thread solver pool sharing one
  :class:`~repro.service.cache.CompileCache` and one
  :class:`~repro.service.metrics.MetricsRegistry`, with per-request
  deadlines composed into :class:`~repro.service.policy.RetryPolicy`;
* :mod:`~repro.server.app` — :class:`SolverServer` (routing,
  ``/solve`` ``/healthz`` ``/metrics``, graceful drain) and
  :class:`BackgroundServer` (embedding helper for tests/benchmarks);
* :mod:`~repro.server.procpool` — :class:`ProcessSolverBackend`: the
  ``backend="process"`` worker pool (long-lived solver processes, crash
  detection with typed ``internal`` envelopes, kill-and-respawn deadline
  cancellation);
* :mod:`~repro.server.router` — :class:`ShardRouter`: content-hash
  scale-out over N shard servers with fail-over, health probing and
  aggregated metrics (``python -m repro.server.router --shards 4``);
* :mod:`~repro.server.client` — blocking and asyncio clients.

Run it: ``python -m repro.server --port 8037 --workers 4``.

``app``, ``workers`` and ``client`` are imported lazily (PEP 562): they
pull in :mod:`repro.smt.solver` and the full annealing stack, and laziness
keeps ``import repro.server.protocol`` light for clients that only need
the envelope schema.
"""

from repro.server.admission import (
    AdmissionQueue,
    DeadlineExceededError,
    DrainingError,
    OverloadedError,
)
from repro.server.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_CANCELLED,
    ERROR_DRAINING,
    ERROR_INTERNAL,
    ERROR_OVERLOADED,
    ERROR_PARSE,
    ERROR_TIMEOUT,
    ERROR_TOO_LARGE,
    ERROR_UPSTREAM,
    ErrorInfo,
    ResponseEnvelope,
    SolveRequest,
    locate_parse_error,
)

__all__ = [
    "AdmissionQueue",
    "AsyncSolverClient",
    "BackgroundRouter",
    "BackgroundServer",
    "DeadlineExceededError",
    "DrainingError",
    "ERROR_BAD_REQUEST",
    "ERROR_CANCELLED",
    "ERROR_DRAINING",
    "ERROR_INTERNAL",
    "ERROR_OVERLOADED",
    "ERROR_PARSE",
    "ERROR_TIMEOUT",
    "ERROR_TOO_LARGE",
    "ERROR_UPSTREAM",
    "ErrorInfo",
    "OverloadedError",
    "ProcessSolverBackend",
    "ResponseEnvelope",
    "RouterConfig",
    "ServerConfig",
    "ServerState",
    "ShardRouter",
    "ShardSpec",
    "SolveReply",
    "SolveRequest",
    "SolverClient",
    "SolverServer",
    "SolverWorkerPool",
    "WorkerCrashError",
    "aggregate_metrics",
    "locate_parse_error",
    "shard_key",
]

_LAZY = {
    "AsyncSolverClient": "repro.server.client",
    "BackgroundRouter": "repro.server.router",
    "BackgroundServer": "repro.server.app",
    "ProcessSolverBackend": "repro.server.procpool",
    "RouterConfig": "repro.server.router",
    "ServerConfig": "repro.server.app",
    "ServerState": "repro.server.app",
    "ShardRouter": "repro.server.router",
    "ShardSpec": "repro.server.router",
    "SolveReply": "repro.server.client",
    "SolverClient": "repro.server.client",
    "SolverServer": "repro.server.app",
    "SolverWorkerPool": "repro.server.workers",
    "WorkerCrashError": "repro.server.procpool",
    "aggregate_metrics": "repro.server.router",
    "shard_key": "repro.server.router",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
