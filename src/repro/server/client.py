"""Client library for the solving server (blocking and asyncio flavours).

:class:`SolverClient` is the synchronous client — one persistent
``http.client`` connection, automatic reconnect, context-manager support —
what scripts, the CI smoke job and most tests use.
:class:`AsyncSolverClient` issues requests over asyncio streams and is the
building block of the load generator's concurrent bursts.

Both return the same :class:`SolveReply`: the parsed response envelope
plus the HTTP status. Transport-level failures raise
:class:`ServerConnectionError`; *protocol-level* failures (parse errors,
overload, timeouts) come back as ``ok=False`` envelopes — they are data,
not exceptions, because a load test must count them.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.server import httpio
from repro.server.protocol import ErrorInfo, ResponseEnvelope

__all__ = [
    "AsyncSolverClient",
    "ServerConnectionError",
    "SolveReply",
    "SolverClient",
]


class ServerConnectionError(ConnectionError):
    """The server could not be reached or the transport failed mid-request."""


#: Failures that mean a *kept-alive* connection was closed by the server
#: between requests (its ``--idle-timeout`` fired while the client sat
#: idle). They surface on the next use of the stale socket — as a clean
#: remote hang-up before any response bytes (``RemoteDisconnected``), a
#: reset, or a broken pipe on send. Retrying on a fresh connection is safe
#: *only* in this situation, because the request provably never reached a
#: server that answered: the reply, had one been produced, would have
#: arrived on the now-dead socket. Deliberately excluded: ``socket.timeout``
#: and ``IncompleteRead`` — with those the server may be mid-solve, and a
#: resubmission would double-execute the request.
_IDLE_CLOSE_ERRORS = (
    http.client.RemoteDisconnected,
    ConnectionResetError,
    BrokenPipeError,
)


@dataclass
class SolveReply:
    """One ``/solve`` answer: envelope fields + transport status."""

    http_status: int
    envelope: ResponseEnvelope

    # convenience projections --------------------------------------- #

    @property
    def ok(self) -> bool:
        return self.envelope.ok

    @property
    def status(self) -> str:
        return self.envelope.status

    @property
    def model(self) -> Dict[str, str]:
        return dict(self.envelope.model)

    @property
    def error(self) -> Optional[ErrorInfo]:
        return self.envelope.error

    @property
    def error_type(self) -> Optional[str]:
        return self.envelope.error.type if self.envelope.error else None

    @property
    def cache_hit(self) -> bool:
        return self.envelope.cache_hit

    def __repr__(self) -> str:
        if self.ok:
            return f"SolveReply(status={self.status!r}, model={self.model!r})"
        return f"SolveReply(error={self.error_type!r}, http={self.http_status})"


def _solve_body(
    script: str,
    deadline_ms: Optional[float],
    request_id: Optional[str],
) -> Tuple[bytes, str]:
    """The request body and content type for one solve call."""
    if deadline_ms is None and request_id is None:
        return script.encode("utf-8"), "text/plain; charset=utf-8"
    payload: Dict[str, Any] = {"script": script}
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    if request_id is not None:
        payload["id"] = request_id
    return json.dumps(payload).encode("utf-8"), "application/json"


def _parse_reply(status: int, body: bytes) -> SolveReply:
    try:
        envelope = ResponseEnvelope.from_json(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServerConnectionError(
            f"malformed envelope (HTTP {status}): {body[:120]!r} ({exc})"
        ) from None
    return SolveReply(http_status=status, envelope=envelope)


# --------------------------------------------------------------------- #
# blocking client
# --------------------------------------------------------------------- #


class SolverClient:
    """Blocking client over one keep-alive HTTP connection.

    Examples
    --------
    >>> with SolverClient("127.0.0.1", 8037) as client:   # doctest: +SKIP
    ...     reply = client.solve('(declare-const x String)'
    ...                          '(assert (= x "hi"))(check-sat)')
    ...     reply.status, reply.model
    ('sat', {'x': 'hi'})
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -------------------------------------------------------------- #
    # transport
    # -------------------------------------------------------------- #

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _roundtrip(
        self,
        conn: http.client.HTTPConnection,
        method: str,
        path: str,
        body: bytes,
        headers: Dict[str, str],
    ) -> Tuple[int, bytes]:
        conn.request(method, path, body=body or None, headers=headers)
        response = conn.getresponse()
        payload = response.read()
        if response.will_close:
            self.close()
        return response.status, payload

    def _request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        content_type: str = "text/plain",
    ) -> Tuple[int, bytes]:
        headers = {"Content-Type": content_type, "Content-Length": str(len(body))}
        # A surviving self._conn means a previous round trip completed on
        # it — the precondition for the idle-close reconnect below.
        reused = self._conn is not None
        conn = self._connection()
        try:
            return self._roundtrip(conn, method, path, body, headers)
        except _IDLE_CLOSE_ERRORS as exc:
            self.close()
            if not reused:
                # A fresh connection hanging up is a real transport error,
                # not an idle-timeout race — never retry it.
                raise ServerConnectionError(
                    f"{method} {path} to {self.host}:{self.port} failed: {exc}"
                ) from exc
            # The server idle-closed the keep-alive socket between requests
            # (or the reply could only have gone to the dead socket): one
            # reconnect on a fresh connection, no further retries.
            conn = self._connection()
            try:
                return self._roundtrip(conn, method, path, body, headers)
            except (http.client.HTTPException, OSError) as retry_exc:
                self.close()
                raise ServerConnectionError(
                    f"{method} {path} to {self.host}:{self.port} failed after "
                    f"idle-close reconnect: {retry_exc}"
                ) from retry_exc
        except (http.client.HTTPException, OSError) as exc:
            # Mid-request failures (timeout, truncated response, ...): the
            # server may be mid-solve — resubmitting could double-execute.
            self.close()
            raise ServerConnectionError(
                f"{method} {path} to {self.host}:{self.port} failed: {exc}"
            ) from exc

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._conn = None

    def __enter__(self) -> "SolverClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -------------------------------------------------------------- #
    # endpoints
    # -------------------------------------------------------------- #

    def solve(
        self,
        script: str,
        *,
        deadline_ms: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> SolveReply:
        """Submit one SMT-LIB script; returns the parsed envelope."""
        body, content_type = _solve_body(script, deadline_ms, request_id)
        status, payload = self._request("POST", "/solve", body, content_type)
        return _parse_reply(status, payload)

    def healthz(self) -> Dict[str, Any]:
        """The health payload; raises when it is not valid JSON."""
        status, payload = self._request("GET", "/healthz")
        health = json.loads(payload.decode("utf-8"))
        health["http_status"] = status
        return health

    def metrics(self) -> Dict[str, Any]:
        """The deterministic-keyed metrics export as a dict."""
        _status, payload = self._request("GET", "/metrics")
        return json.loads(payload.decode("utf-8"))

    def metrics_text(self) -> str:
        """The raw ``/metrics`` body (for key-ordering regression tests)."""
        _status, payload = self._request("GET", "/metrics")
        return payload.decode("utf-8")

    # -------------------------------------------------------------- #
    # sticky sessions (/session/*)
    # -------------------------------------------------------------- #

    def _session_request(
        self, op: str, payload: Dict[str, Any]
    ) -> SolveReply:
        body = json.dumps(
            {k: v for k, v in payload.items() if v is not None}
        ).encode("utf-8")
        status, reply = self._request(
            "POST", f"/session/{op}", body, "application/json"
        )
        return _parse_reply(status, reply)

    def session_open(self, *, session_id: Optional[str] = None) -> SolveReply:
        """Open a sticky session; the reply's ``id`` is the session id."""
        return self._session_request("open", {"session": session_id})

    def session_assert(self, session_id: str, script: str) -> SolveReply:
        """Add declare-const/assert commands to the session's top frame."""
        return self._session_request(
            "assert", {"session": session_id, "script": script}
        )

    def session_push(self, session_id: str, levels: int = 1) -> SolveReply:
        return self._session_request(
            "push", {"session": session_id, "levels": levels}
        )

    def session_pop(self, session_id: str, levels: int = 1) -> SolveReply:
        return self._session_request(
            "pop", {"session": session_id, "levels": levels}
        )

    def session_check(
        self, session_id: str, *, deadline_ms: Optional[float] = None
    ) -> SolveReply:
        """Check-sat the session's flattened frame stack."""
        return self._session_request(
            "check", {"session": session_id, "deadline_ms": deadline_ms}
        )

    def session_close(self, session_id: str) -> SolveReply:
        return self._session_request("close", {"session": session_id})


# --------------------------------------------------------------------- #
# asyncio client
# --------------------------------------------------------------------- #


@dataclass
class AsyncSolverClient:
    """Asyncio client: one connection per request, safe to fan out.

    Examples
    --------
    >>> async def burst(client, scripts):            # doctest: +SKIP
    ...     return await asyncio.gather(*(client.solve(s) for s in scripts))
    """

    host: str
    port: int
    timeout: float = 60.0

    async def _request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        content_type: str = "text/plain",
    ) -> Tuple[int, bytes]:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), timeout=self.timeout
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServerConnectionError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        try:
            writer.write(
                httpio.render_request(
                    method,
                    path,
                    body,
                    host=f"{self.host}:{self.port}",
                    content_type=content_type,
                    close=True,
                )
            )
            await writer.drain()
            status, _headers, payload = await asyncio.wait_for(
                httpio.read_response(reader), timeout=self.timeout
            )
            return status, payload
        except (OSError, asyncio.TimeoutError, httpio.ProtocolError) as exc:
            raise ServerConnectionError(
                f"{method} {path} to {self.host}:{self.port} failed: {exc}"
            ) from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):  # pragma: no cover
                pass

    async def solve(
        self,
        script: str,
        *,
        deadline_ms: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> SolveReply:
        body, content_type = _solve_body(script, deadline_ms, request_id)
        status, payload = await self._request("POST", "/solve", body, content_type)
        return _parse_reply(status, payload)

    async def healthz(self) -> Dict[str, Any]:
        status, payload = await self._request("GET", "/healthz")
        health = json.loads(payload.decode("utf-8"))
        health["http_status"] = status
        return health

    async def metrics(self) -> Dict[str, Any]:
        _status, payload = await self._request("GET", "/metrics")
        return json.loads(payload.decode("utf-8"))
