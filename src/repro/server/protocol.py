"""The wire protocol of the solving server: envelopes and error taxonomy.

Every ``/solve`` answer — success or failure — is one JSON **response
envelope** with a fixed, deterministically-ordered key set, so clients,
the load generator and the CI smoke job can all consume one schema:

.. code-block:: json

    {
      "cache_hit": false,
      "error": null,
      "id": "req-1",
      "lower_bound": null,
      "model": {"x": "hi"},
      "objective": null,
      "ok": true,
      "opt_status": "",
      "queue_ms": 0.21,
      "reason": "",
      "solve_ms": 31.7,
      "status": "sat",
      "upper_bound": null
    }

Scripts carrying ``assert-soft`` commands are optimized rather than
decided: ``status`` stays on the sat/unsat/unknown axis (feasible results
are ``sat``), while ``opt_status`` carries the refinement
(``optimal``/``feasible``/``infeasible``/``unknown``) and ``objective`` /
``lower_bound`` / ``upper_bound`` report the violated-soft-weight
objective and its anytime bracket. Plain solves leave all four at their
null defaults.

Failures set ``ok: false`` and carry a typed ``error`` object instead of a
model. The error taxonomy (one stable string per failure class) is the
server's contract with its operators:

=============== ===== ==========================================================
type            HTTP  meaning
=============== ===== ==========================================================
``parse``       400   malformed SMT-LIB input (with line/column context)
``bad_request`` 400   malformed request framing (bad JSON body, missing script)
``too_large``   413   request exceeded ``--max-request-bytes`` at the socket
``overloaded``  429   admission queue full — back off and retry
``timeout``     504   per-request deadline exceeded (queued or mid-solve)
``draining``    503   server is shutting down, not accepting new work
``cancelled``   503   solve cancelled by shutdown after the drain timeout
``internal``    500   unexpected server-side failure
``upstream``    502   router tier: no shard reachable / shard died mid-request
=============== ===== ==========================================================

Parse failures are *located*: :func:`locate_parse_error` maps the
tokenizer / parser exception back to a best-effort 1-based line/column in
the submitted script plus the offending source line, so a client sees
``parse error at 2:14: unterminated string literal`` instead of a bare
exception repr.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "ERROR_BAD_REQUEST",
    "ERROR_CANCELLED",
    "ERROR_DRAINING",
    "ERROR_INTERNAL",
    "ERROR_OVERLOADED",
    "ERROR_PARSE",
    "ERROR_TIMEOUT",
    "ERROR_TOO_LARGE",
    "ERROR_UPSTREAM",
    "ErrorInfo",
    "ResponseEnvelope",
    "SessionRequest",
    "SolveRequest",
    "http_status_for",
    "locate_parse_error",
    "offset_to_line_col",
]


ERROR_PARSE = "parse"
ERROR_BAD_REQUEST = "bad_request"
ERROR_TOO_LARGE = "too_large"
ERROR_OVERLOADED = "overloaded"
ERROR_TIMEOUT = "timeout"
ERROR_DRAINING = "draining"
ERROR_CANCELLED = "cancelled"
ERROR_INTERNAL = "internal"
#: Router-tier failure: the shard a request hashed to (and every fail-over
#: candidate) could not be reached, or died mid-request. Emitted only by
#: repro.server.router — a single SolverServer never produces it.
ERROR_UPSTREAM = "upstream"

#: error type → HTTP status code (the envelope is the source of truth; the
#: HTTP code is a transport-level convenience for curl / load balancers).
_HTTP_STATUS: Dict[str, int] = {
    ERROR_PARSE: 400,
    ERROR_BAD_REQUEST: 400,
    ERROR_TOO_LARGE: 413,
    ERROR_OVERLOADED: 429,
    ERROR_TIMEOUT: 504,
    ERROR_DRAINING: 503,
    ERROR_CANCELLED: 503,
    ERROR_INTERNAL: 500,
    ERROR_UPSTREAM: 502,
}


def http_status_for(error_type: Optional[str]) -> int:
    """The HTTP status code carrying an envelope with this error type."""
    if error_type is None:
        return 200
    return _HTTP_STATUS.get(error_type, 500)


# --------------------------------------------------------------------- #
# requests
# --------------------------------------------------------------------- #


@dataclass
class SolveRequest:
    """One parsed ``/solve`` request body.

    The body is either raw SMT-LIB text (``Content-Type: text/plain`` or
    anything non-JSON) or a JSON object ``{"script": "...",
    "deadline_ms": 500, "id": "req-1"}``. Only ``script`` is required.
    """

    script: str
    deadline_ms: Optional[float] = None
    request_id: Optional[str] = None

    @classmethod
    def from_body(cls, body: bytes, content_type: str = "") -> "SolveRequest":
        """Decode a request body; raises ``ValueError`` on malformed input."""
        text = body.decode("utf-8", errors="replace")
        if "json" not in (content_type or "").lower():
            if not text.strip():
                raise ValueError("empty request body (expected an SMT-LIB script)")
            return cls(script=text)
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ValueError(
                f"JSON request body must be an object, got {type(payload).__name__}"
            )
        script = payload.get("script")
        if not isinstance(script, str) or not script.strip():
            raise ValueError("JSON request body needs a non-empty 'script' string")
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
                raise ValueError(
                    f"deadline_ms must be a positive number, got {deadline_ms!r}"
                )
            deadline_ms = float(deadline_ms)
        request_id = payload.get("id")
        if request_id is not None and not isinstance(request_id, str):
            raise ValueError(f"request id must be a string, got {request_id!r}")
        return cls(script=script, deadline_ms=deadline_ms, request_id=request_id)


@dataclass
class SessionRequest:
    """One parsed ``/session/*`` request body (always JSON).

    All fields are optional at the wire level — which ones an operation
    requires is the endpoint's decision (``open`` needs nothing, every
    other op needs ``session``; ``assert`` needs ``script``; ``push`` /
    ``pop`` read ``levels``). An empty body is a valid ``open``.
    """

    session_id: Optional[str] = None
    script: str = ""
    levels: int = 1
    deadline_ms: Optional[float] = None
    request_id: Optional[str] = None

    #: Sanity cap on push/pop levels per request (a frame costs memory).
    MAX_LEVELS = 1024

    @classmethod
    def from_body(cls, body: bytes, content_type: str = "") -> "SessionRequest":
        """Decode a session request body; ``ValueError`` on malformed input."""
        text = body.decode("utf-8", errors="replace")
        if not text.strip():
            return cls()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ValueError(
                f"JSON request body must be an object, got {type(payload).__name__}"
            )
        session_id = payload.get("session")
        if session_id is not None and not isinstance(session_id, str):
            raise ValueError(f"session must be a string, got {session_id!r}")
        script = payload.get("script", "")
        if not isinstance(script, str):
            raise ValueError(f"script must be a string, got {script!r}")
        levels = payload.get("levels", 1)
        if (
            isinstance(levels, bool)
            or not isinstance(levels, int)
            or not (0 <= levels <= cls.MAX_LEVELS)
        ):
            raise ValueError(
                f"levels must be an integer in [0, {cls.MAX_LEVELS}], got {levels!r}"
            )
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
                raise ValueError(
                    f"deadline_ms must be a positive number, got {deadline_ms!r}"
                )
            deadline_ms = float(deadline_ms)
        request_id = payload.get("id")
        if request_id is not None and not isinstance(request_id, str):
            raise ValueError(f"request id must be a string, got {request_id!r}")
        return cls(
            session_id=session_id,
            script=script,
            levels=levels,
            deadline_ms=deadline_ms,
            request_id=request_id,
        )


# --------------------------------------------------------------------- #
# responses
# --------------------------------------------------------------------- #


@dataclass
class ErrorInfo:
    """A typed error with optional source location (for ``parse``)."""

    type: str
    message: str
    line: Optional[int] = None
    column: Optional[int] = None
    context: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ErrorInfo":
        return cls(
            type=str(payload.get("type", ERROR_INTERNAL)),
            message=str(payload.get("message", "")),
            line=payload.get("line"),
            column=payload.get("column"),
            context=payload.get("context"),
        )


@dataclass
class ResponseEnvelope:
    """One ``/solve`` answer; serialized with recursively sorted keys."""

    ok: bool
    status: str = ""
    model: Dict[str, str] = field(default_factory=dict)
    reason: str = ""
    cache_hit: bool = False
    queue_ms: float = 0.0
    solve_ms: float = 0.0
    request_id: Optional[str] = None
    error: Optional[ErrorInfo] = None
    #: Optimization-mode fields (scripts with ``assert-soft``); plain
    #: solves keep the null defaults.
    opt_status: str = ""
    objective: Optional[float] = None
    lower_bound: Optional[float] = None
    upper_bound: Optional[float] = None

    # -------------------------------------------------------------- #
    # constructors
    # -------------------------------------------------------------- #

    @classmethod
    def success(
        cls,
        status: str,
        model: Optional[Mapping[str, str]] = None,
        *,
        reason: str = "",
        cache_hit: bool = False,
        queue_ms: float = 0.0,
        solve_ms: float = 0.0,
        request_id: Optional[str] = None,
        opt_status: str = "",
        objective: Optional[float] = None,
        lower_bound: Optional[float] = None,
        upper_bound: Optional[float] = None,
    ) -> "ResponseEnvelope":
        return cls(
            ok=True,
            status=str(status),
            model=dict(model or {}),
            reason=reason,
            cache_hit=cache_hit,
            queue_ms=queue_ms,
            solve_ms=solve_ms,
            request_id=request_id,
            opt_status=str(opt_status),
            objective=objective,
            lower_bound=lower_bound,
            upper_bound=upper_bound,
        )

    @classmethod
    def failure(
        cls,
        error: ErrorInfo,
        *,
        status: str = "",
        queue_ms: float = 0.0,
        solve_ms: float = 0.0,
        request_id: Optional[str] = None,
    ) -> "ResponseEnvelope":
        return cls(
            ok=False,
            status=status,
            queue_ms=queue_ms,
            solve_ms=solve_ms,
            request_id=request_id,
            error=error,
        )

    # -------------------------------------------------------------- #
    # (de)serialization
    # -------------------------------------------------------------- #

    @property
    def http_status(self) -> int:
        return http_status_for(self.error.type if self.error else None)

    def to_dict(self) -> Dict[str, Any]:
        def bound(value: Optional[float]) -> Optional[float]:
            # JSON has no Infinity; an unbounded bracket side is null.
            if value is None or not math.isfinite(value):
                return None
            return float(value)

        return {
            "cache_hit": self.cache_hit,
            "error": self.error.to_dict() if self.error else None,
            "id": self.request_id,
            "lower_bound": bound(self.lower_bound),
            "model": dict(self.model),
            "objective": bound(self.objective),
            "ok": self.ok,
            "opt_status": self.opt_status,
            "queue_ms": round(float(self.queue_ms), 3),
            "reason": self.reason,
            "solve_ms": round(float(self.solve_ms), 3),
            "status": self.status,
            "upper_bound": bound(self.upper_bound),
        }

    def to_json(self) -> str:
        """Deterministic serialization: recursively sorted keys, no spaces."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ResponseEnvelope":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError(f"envelope must be a JSON object, got {text[:80]!r}")
        error = payload.get("error")

        def bound(value: Any) -> Optional[float]:
            return None if value is None else float(value)

        return cls(
            ok=bool(payload.get("ok", False)),
            status=str(payload.get("status", "")),
            model=dict(payload.get("model") or {}),
            reason=str(payload.get("reason", "")),
            cache_hit=bool(payload.get("cache_hit", False)),
            queue_ms=float(payload.get("queue_ms", 0.0)),
            solve_ms=float(payload.get("solve_ms", 0.0)),
            request_id=payload.get("id"),
            error=ErrorInfo.from_dict(error) if error else None,
            opt_status=str(payload.get("opt_status", "") or ""),
            objective=bound(payload.get("objective")),
            lower_bound=bound(payload.get("lower_bound")),
            upper_bound=bound(payload.get("upper_bound")),
        )


# --------------------------------------------------------------------- #
# parse-error location
# --------------------------------------------------------------------- #


def offset_to_line_col(text: str, offset: int) -> Tuple[int, int]:
    """Map a character *offset* into 1-based ``(line, column)``."""
    offset = max(0, min(offset, len(text)))
    prefix = text[:offset]
    line = prefix.count("\n") + 1
    column = offset - (prefix.rfind("\n") + 1) + 1
    return line, column


def _source_line(text: str, line: int) -> str:
    lines = text.splitlines()
    if 1 <= line <= len(lines):
        return lines[line - 1]
    return ""


def _scan_parens(text: str) -> Tuple[list, Optional[int]]:
    """Paren balance scan mirroring the tokenizer's string/comment rules.

    Returns ``(unclosed_open_offsets, first_extra_close_offset)``.
    """
    opens: list = []
    extra_close: Optional[int] = None
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif c == '"':
            i += 1
            while i < n:
                if text[i] == '"':
                    if i + 1 < n and text[i + 1] == '"':
                        i += 2
                        continue
                    break
                i += 1
            i += 1
        elif c == "(":
            opens.append(i)
            i += 1
        elif c == ")":
            if opens:
                opens.pop()
            elif extra_close is None:
                extra_close = i
            i += 1
        else:
            i += 1
    return opens, extra_close


_OFFSET_RE = re.compile(r"offset (\d+)")
_QUOTED_RE = re.compile(r"'([^']+)'")


def locate_parse_error(text: str, exc: BaseException) -> ErrorInfo:
    """Best-effort source location of a tokenizer/parser exception.

    Strategies, in order: an explicit ``offset N`` in the exception message
    (unterminated string literals), a paren-balance scan for unbalanced
    ``(`` / ``)`` reports, and the first occurrence of a single-quoted
    fragment from the message (undeclared symbols, unsupported operators).
    Falls back to line 1, column 1 — the location is advisory, the message
    is authoritative.
    """
    message = str(exc)
    offset: Optional[int] = getattr(exc, "offset", None)

    if offset is None:
        match = _OFFSET_RE.search(message)
        if match:
            offset = int(match.group(1))

    if offset is None and "unbalanced" in message:
        opens, extra_close = _scan_parens(text)
        if "')'" in message and extra_close is not None:
            offset = extra_close
        elif opens:
            offset = opens[0]

    if offset is None:
        match = _QUOTED_RE.search(message)
        if match:
            fragment = match.group(1)
            found = text.find(fragment)
            if found >= 0:
                offset = found

    line, column = offset_to_line_col(text, offset if offset is not None else 0)
    return ErrorInfo(
        type=ERROR_PARSE,
        message=message,
        line=line,
        column=column,
        context=_source_line(text, line),
    )
