"""The solver worker pool: executor-thread solves behind the asyncio server.

Each admitted request is solved on a worker thread by a **fresh**
:class:`~repro.smt.solver.QuantumSMTSolver` seeded with the server's base
seed — the same construction as :class:`~repro.service.batch.BatchSolver`
— so a served answer is bit-identical to a direct
``QuantumSMTSolver(seed=...).check_sat()`` at the same seed, independent
of worker count, queue order and cache state. Compilation is deduplicated
through one shared :class:`~repro.service.cache.CompileCache`; stage
timings and outcome counters land in one shared
:class:`~repro.service.metrics.MetricsRegistry`.

Deadline composition
--------------------
The per-request deadline composes with the configured
:class:`~repro.service.policy.RetryPolicy` rather than replacing it: the
effective policy for a request clamps the per-attempt timeout to the
remaining deadline budget (``min(policy.attempt_timeout, remaining)``),
and the event-loop side enforces the deadline authoritatively with
``asyncio.wait_for``. A worker thread cannot be preempted mid-attempt
(the same abandonment contract as :class:`RetryPolicy`), so a timed-out
solve also flips a cancellation event that the retry loop checks between
attempts — bounding the orphaned work to at most one attempt.

Because the admission slot is released as soon as a deadline fires while
the abandoned thread may still be mid-attempt, the executor is sized at
``2 × workers``: the headroom keeps a thread available for each freshly
admitted request even under a timeout storm where every slot's previous
occupant is still finishing its last abandoned attempt, so admitted work
never queues invisibly inside the executor outside the queue_ms /
deadline accounting.

Micro-batching (opt-in)
-----------------------
With ``batch_window_ms > 0`` the pool fuses concurrent requests instead of
solving each on its own thread: an event-loop collector gathers admitted
requests for up to one window (or until ``batch_max`` are waiting), then
dispatches the group to a single executor call that block-diagonally tiles
their QUBOs through :func:`repro.service.fused.solve_batch_fused` — one
fused sweep loop for the whole group. The tiler's content-keyed RNG makes
each request's fused result independent of its batch-mates, so answers do
not depend on traffic timing; requests whose fused pass misses fall back
to the ordinary per-item solve inside the same executor call. Requests
carrying explicit per-request solve parameters bypass batching. Deadlines
on batched requests are enforced on the event-loop side only (the
abandoned request's share of the fused result is discarded; its clamped
retry policy still bounds fallback work). Batching pays off when
``workers`` is at least the intended batch size — each admission slot
maps to a request waiting in some batch.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.server.admission import DeadlineExceededError
from repro.service.cache import CacheStats, CompileCache
from repro.service.metrics import MetricsRegistry
from repro.service.policy import RetryExhaustedError, RetryPolicy
from repro.smt import ast
from repro.smt.solver import QuantumSMTSolver, SmtResult
from repro.utils.timing import Timer

__all__ = ["SolveCancelled", "SolveOutcome", "SolverWorkerPool", "clamp_policy"]


def clamp_policy(policy: RetryPolicy, remaining: Optional[float]) -> RetryPolicy:
    """*policy* with its attempt timeout clamped to the remaining deadline.

    Shared by both solve backends (thread pool here, process pool in
    :mod:`repro.server.procpool`) so deadline composition semantics cannot
    drift between them.
    """
    if remaining is None:
        return policy
    remaining = max(remaining, 1e-3)
    timeout = policy.attempt_timeout
    clamped = remaining if timeout is None else min(timeout, remaining)
    return dataclasses.replace(policy, attempt_timeout=clamped)


class SolveCancelled(RuntimeError):
    """Raised inside a worker thread when its request was abandoned."""


def outcome_from_optimize(result: Any, wall_time: float = 0.0) -> SolveOutcome:
    """Fold an :class:`~repro.opt.result.OptimizeResult` into a
    :class:`SolveOutcome` (shared by the thread and process backends).

    The MaxSMT status is projected onto the sat/unsat/unknown axis for the
    ``SmtResult`` (feasible → sat) while the full optimization refinement
    rides in the outcome's dedicated fields.
    """
    import math

    from repro.opt.result import solve_status_for

    upper = float(result.upper_bound)
    return SolveOutcome(
        result=SmtResult(
            status=solve_status_for(result.status),
            model=dict(result.model),
            reason=result.reason,
        ),
        cache_hit=False,
        wall_time=wall_time,
        opt_status=str(result.status),
        objective=result.objective,
        lower_bound=float(result.lower_bound),
        upper_bound=None if math.isinf(upper) else upper,
    )


@dataclass
class SolveOutcome:
    """One completed in-pool solve (or weighted optimization)."""

    result: SmtResult
    cache_hit: bool = False
    wall_time: float = 0.0
    error: str = ""
    error_type: str = ""
    #: Optimization-mode refinement (requests with ``assert-soft``):
    #: the MaxSMT status plus the objective/bound bracket. Plain solves
    #: keep the null defaults.
    opt_status: str = ""
    objective: Optional[float] = None
    lower_bound: Optional[float] = None
    upper_bound: Optional[float] = None

    @property
    def status(self) -> str:
        return str(self.result.status)

    @property
    def model(self) -> Dict[str, str]:
        return dict(self.result.model)


@dataclass
class _RequestContext:
    """Thread-shared cancellation flag for one request."""

    cancelled: threading.Event = field(default_factory=threading.Event)


@dataclass
class _BatchItem:
    """One request parked in the micro-batch collector."""

    assertions: List[ast.Term]
    policy: RetryPolicy
    future: "asyncio.Future[SolveOutcome]"


class SolverWorkerPool:
    """Run ``QuantumSMTSolver`` solves on executor threads.

    Mirrors :class:`~repro.service.batch.BatchSolver`'s determinism
    contract (fresh solver per item, shared cache/metrics/policy) with an
    async front door and per-request deadlines.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        num_reads: int = 64,
        seed: Optional[int] = None,
        sampler_params: Optional[Dict[str, Any]] = None,
        sampler_factory: Optional[Any] = None,
        penalty_strength: float = 1.0,
        policy: Optional[RetryPolicy] = None,
        cache: Optional[CompileCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        batch_window_ms: float = 0.0,
        batch_max: int = 8,
        strategy: str = "direct",
        refine_max_rounds: int = 4,
        opt_max_restarts: int = 4,
        opt_exhaustive_bits: int = 16,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if strategy not in ("direct", "refine"):
            raise ValueError(
                f"strategy must be 'direct' or 'refine', got {strategy!r}"
            )
        if batch_window_ms > 0 and strategy != "direct":
            raise ValueError(
                "micro-batching requires strategy='direct'; fused tiles "
                "bypass the per-request refinement loop"
            )
        if batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be >= 0, got {batch_window_ms}"
            )
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if seed is not None and not isinstance(seed, int):
            raise TypeError(
                "the server needs a reproducible seed (int or None); live "
                f"RNG objects cannot be shared across workers: {type(seed)!r}"
            )
        self.workers = workers
        self.num_reads = num_reads
        self.seed = seed
        self.sampler_params = dict(sampler_params or {})
        self.sampler_factory = sampler_factory
        self.penalty_strength = penalty_strength
        self.policy = policy if policy is not None else RetryPolicy(max_attempts=3)
        self.cache = cache if cache is not None else CompileCache(maxsize=256)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.strategy = strategy
        self.refine_max_rounds = refine_max_rounds
        self.opt_max_restarts = opt_max_restarts
        self.opt_exhaustive_bits = opt_exhaustive_bits
        # Sized at 2× the slot count, not 1×: when a deadline expires the
        # admission slot is released immediately but the abandoned thread
        # may still run one final attempt. With exactly `workers` threads a
        # freshly admitted request would then queue *invisibly* inside the
        # executor (its queue_ms/deadline accounting missing that hidden
        # wait). The headroom gives every admission slot a thread even if
        # its previous occupant is finishing an abandoned attempt; solver
        # concurrency stays bounded by the admission queue's `workers`
        # slots, so the extra threads are mostly parked.
        self._executor = ThreadPoolExecutor(
            max_workers=workers * 2, thread_name_prefix="server-solver"
        )
        self.batch_window_ms = batch_window_ms
        self.batch_max = batch_max
        self._batch_queue: Optional[asyncio.Queue] = None
        self._collector: Optional[asyncio.Task] = None
        self._dispatches: set = set()

    # ------------------------------------------------------------------ #
    # deadline composition
    # ------------------------------------------------------------------ #

    def effective_policy(self, remaining: Optional[float]) -> RetryPolicy:
        """The configured policy with its attempt timeout clamped to the
        remaining deadline budget."""
        return clamp_policy(self.policy, remaining)

    def cache_stats(self) -> CacheStats:
        """The shared compile cache's statistics (backend-uniform API)."""
        return self.cache.stats

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #

    async def solve(
        self,
        assertions: Sequence[ast.Term],
        *,
        remaining: Optional[float] = None,
        solve_params: Optional[Dict[str, Any]] = None,
    ) -> SolveOutcome:
        """Solve one assertion conjunction on a worker thread.

        Raises :class:`~repro.server.admission.DeadlineExceededError` when
        *remaining* elapses before the solve completes (the thread is told
        to stop retrying and abandoned).
        """
        if self.batch_window_ms > 0 and not solve_params:
            # Requests with explicit per-request solve parameters cannot
            # share a fused kernel call (the tile solves with one parameter
            # set); they take the ordinary per-thread path below.
            return await self._solve_batched(list(assertions), remaining)
        context = _RequestContext()
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._executor,
            self._solve_blocking,
            list(assertions),
            self.effective_policy(remaining),
            dict(solve_params or {}),
            context,
        )
        try:
            if remaining is None:
                return await future
            return await asyncio.wait_for(future, timeout=max(remaining, 1e-3))
        except asyncio.TimeoutError:
            context.cancelled.set()
            self.metrics.counter("server.timeout").inc()
            self.metrics.counter("server.timeout.solving").inc()
            raise DeadlineExceededError("solving", remaining or 0.0) from None
        except asyncio.CancelledError:
            context.cancelled.set()
            raise

    async def optimize(
        self,
        assertions: Sequence[ast.Term],
        soft_assertions: Sequence[ast.SoftAssertion],
        *,
        remaining: Optional[float] = None,
        solve_params: Optional[Dict[str, Any]] = None,
    ) -> SolveOutcome:
        """Run one weighted-MaxSMT optimization on a worker thread.

        Weighted requests never micro-batch — the fused tiler solves
        sat-only QUBOs, and the anytime driver manages its own restart
        schedule. The remaining deadline budget is handed to the driver as
        its anytime ``deadline_ms`` (it stops opening restarts past it);
        the event-loop ``wait_for`` stays authoritative.
        """
        context = _RequestContext()
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._executor,
            self._optimize_blocking,
            list(assertions),
            list(soft_assertions),
            remaining,
            dict(solve_params or {}),
            context,
        )
        try:
            if remaining is None:
                return await future
            return await asyncio.wait_for(future, timeout=max(remaining, 1e-3))
        except asyncio.TimeoutError:
            context.cancelled.set()
            self.metrics.counter("server.timeout").inc()
            self.metrics.counter("server.timeout.solving").inc()
            raise DeadlineExceededError("solving", remaining or 0.0) from None
        except asyncio.CancelledError:
            context.cancelled.set()
            raise

    def _optimize_blocking(
        self,
        assertions: List[ast.Term],
        soft_assertions: List[ast.SoftAssertion],
        remaining: Optional[float],
        solve_params: Dict[str, Any],
        context: _RequestContext,
    ) -> SolveOutcome:
        from repro.opt import AnytimeOptimizer

        timer = Timer().start()
        self.metrics.counter("server.solves").inc()
        self.metrics.counter("server.optimizes").inc()
        try:
            optimizer = AnytimeOptimizer(
                sampler=self.sampler_factory() if self.sampler_factory else None,
                num_reads=self.num_reads,
                seed=self.seed,
                sampler_params=self.sampler_params,
                penalty_strength=self.penalty_strength,
                max_restarts=self.opt_max_restarts,
                deadline_ms=None if remaining is None else max(remaining, 1e-3) * 1000.0,
                exhaustive_bits=self.opt_exhaustive_bits,
                metrics=self.metrics,
            )
            result = optimizer.optimize(assertions, soft_assertions, **solve_params)
            return outcome_from_optimize(result, wall_time=timer.stop())
        except Exception as exc:  # noqa: BLE001 — boundary: degrade, don't crash
            return SolveOutcome(
                result=SmtResult(
                    status="unknown", reason=f"{type(exc).__name__}: {exc}"
                ),
                cache_hit=False,
                wall_time=timer.stop(),
                error=str(exc),
                error_type=type(exc).__name__,
                opt_status="unknown",
            )

    # ------------------------------------------------------------------ #
    # micro-batching
    # ------------------------------------------------------------------ #

    async def _solve_batched(
        self, assertions: List[ast.Term], remaining: Optional[float]
    ) -> SolveOutcome:
        """Park the request in the collector and await its fused outcome."""
        self._ensure_collector()
        loop = asyncio.get_running_loop()
        item = _BatchItem(
            assertions=assertions,
            policy=self.effective_policy(remaining),
            future=loop.create_future(),
        )
        self._batch_queue.put_nowait(item)
        try:
            # shield(): a deadline must not cancel the shared future — the
            # dispatcher still resolves it for the batch's other members.
            if remaining is None:
                return await asyncio.shield(item.future)
            return await asyncio.wait_for(
                asyncio.shield(item.future), timeout=max(remaining, 1e-3)
            )
        except asyncio.TimeoutError:
            self.metrics.counter("server.timeout").inc()
            self.metrics.counter("server.timeout.solving").inc()
            raise DeadlineExceededError("solving", remaining or 0.0) from None

    def _ensure_collector(self) -> None:
        if self._collector is None or self._collector.done():
            if self._batch_queue is None:
                self._batch_queue = asyncio.Queue()
            self._collector = asyncio.get_running_loop().create_task(
                self._collect(), name="server-batch-collector"
            )

    async def _collect(self) -> None:
        """Gather requests for one window (or ``batch_max``), then dispatch.

        Dispatch happens on a separate task so collection of the next
        batch starts immediately — the window bounds *latency added by
        batching*, not solve turnaround.
        """
        window = self.batch_window_ms / 1000.0
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._batch_queue.get()]
            deadline = loop.time() + window
            while len(batch) < self.batch_max:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(
                            self._batch_queue.get(), timeout=timeout
                        )
                    )
                except asyncio.TimeoutError:
                    break
            task = loop.create_task(self._dispatch(batch))
            self._dispatches.add(task)
            task.add_done_callback(self._dispatches.discard)

    async def _dispatch(self, batch: List[_BatchItem]) -> None:
        loop = asyncio.get_running_loop()
        try:
            outcomes = await loop.run_in_executor(
                self._executor, self._solve_batch_blocking, batch
            )
        except Exception as exc:  # noqa: BLE001 — boundary: degrade, don't crash
            outcomes = [
                SolveOutcome(
                    result=SmtResult(
                        status="unknown", reason=f"{type(exc).__name__}: {exc}"
                    ),
                    error=str(exc),
                    error_type=type(exc).__name__,
                )
                for _ in batch
            ]
        for item, outcome in zip(batch, outcomes):
            # done() guards against requests that timed out while fused.
            if not item.future.done():
                item.future.set_result(outcome)

    def _solve_batch_blocking(self, batch: List[_BatchItem]) -> List[SolveOutcome]:
        from repro.service.fused import solve_batch_fused

        self.metrics.counter("server.batches").inc()
        self.metrics.counter("server.batched_solves").inc(len(batch))
        self.metrics.counter("server.solves").inc(len(batch))
        self.metrics.observe("server.batch_size", float(len(batch)))
        outcomes = solve_batch_fused(
            [item.assertions for item in batch],
            sampler_factory=self.sampler_factory,
            num_reads=self.num_reads,
            seed=self.seed,
            sampler_params=self.sampler_params,
            penalty_strength=self.penalty_strength,
            policy=self.policy,
            policies=[item.policy for item in batch],
            cache=self.cache,
            metrics=self.metrics,
            tile_max=self.batch_max,
        )
        return [
            SolveOutcome(
                result=outcome.result,
                cache_hit=outcome.cache_hit,
                wall_time=outcome.wall_time,
                error=outcome.error,
                error_type=outcome.error_type,
            )
            for outcome in outcomes
        ]

    def _solve_blocking(
        self,
        assertions: List[ast.Term],
        policy: RetryPolicy,
        solve_params: Dict[str, Any],
        context: _RequestContext,
    ) -> SolveOutcome:
        timer = Timer().start()
        self.metrics.counter("server.solves").inc()
        solver = QuantumSMTSolver(
            sampler=self.sampler_factory() if self.sampler_factory else None,
            num_reads=self.num_reads,
            seed=self.seed,
            sampler_params=self.sampler_params,
            penalty_strength=self.penalty_strength,
            retry_policy=_CancellablePolicy.wrap(policy, context.cancelled),
            metrics=self.metrics,
            strategy=self.strategy,
            refine_max_rounds=self.refine_max_rounds,
            compile_cache=self.cache if self.strategy == "refine" else None,
        )
        solver.assertions = list(assertions)
        try:
            problem, hit = self.cache.get_or_compile(
                assertions,
                penalty_strength=self.penalty_strength,
                seed=self.seed,
                compile_fn=solver.compile,
            )
            self.metrics.counter("cache.hits" if hit else "cache.misses").inc()
            result = solver.solve_compiled(problem, **solve_params)
            return SolveOutcome(result=result, cache_hit=hit, wall_time=timer.stop())
        except SolveCancelled:
            raise
        except RetryExhaustedError as exc:
            # Typed robustness-layer failure: surfaced as unknown, like the
            # batch service — never a crash, never a silent drop.
            return SolveOutcome(
                result=SmtResult(status="unknown", reason=str(exc)),
                cache_hit=False,
                wall_time=timer.stop(),
                error=str(exc),
                error_type=type(exc).__name__,
            )
        except Exception as exc:  # noqa: BLE001 — boundary: degrade, don't crash
            return SolveOutcome(
                result=SmtResult(status="unknown", reason=f"{type(exc).__name__}: {exc}"),
                cache_hit=False,
                wall_time=timer.stop(),
                error=str(exc),
                error_type=type(exc).__name__,
            )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def shutdown(self, wait: bool = False) -> None:
        """Stop the executor; abandoned attempts are never joined.

        The batch collector and in-flight dispatch tasks are cancelled;
        requests still parked in a batch are being cancelled by the server
        drain at this point, so their unresolved futures are moot.
        """
        if self._collector is not None:
            self._collector.cancel()
        for task in list(self._dispatches):
            task.cancel()
        self._executor.shutdown(wait=wait, cancel_futures=True)


class _CancellablePolicy:
    """A ``RetryPolicy`` facade that stops retrying once a request is
    abandoned (deadline hit or server shutdown).

    ``QuantumSMTSolver`` only calls ``run`` and reads ``max_attempts``; the
    facade forwards both, injecting a pre-attempt cancellation check so an
    abandoned thread does at most one more attempt.
    """

    def __init__(self, policy: RetryPolicy, cancelled: threading.Event) -> None:
        self._policy = policy
        self._cancelled = cancelled
        self.max_attempts = policy.max_attempts

    @classmethod
    def wrap(cls, policy: RetryPolicy, cancelled: threading.Event) -> "_CancellablePolicy":
        return cls(policy, cancelled)

    def run(self, attempt, **kwargs):
        def guarded(index: int):
            if self._cancelled.is_set():
                raise SolveCancelled("request abandoned; stopping retries")
            return attempt(index)

        try:
            return self._policy.run(guarded, **kwargs)
        except RetryExhaustedError as exc:
            if isinstance(exc.last_exception, SolveCancelled):
                raise exc.last_exception
            raise
