"""Process-pool solve backend: the server's escape from the GIL.

:class:`ProcessSolverBackend` is a drop-in sibling of
:class:`~repro.server.workers.SolverWorkerPool` (selected via
``ServerConfig.backend="process"`` / ``--backend process``): the same
``async solve(assertions, remaining=...) -> SolveOutcome`` front door, but
each solve runs in one of ``workers`` **long-lived worker processes**
instead of an executor thread. Annealing is CPU-bound pure-Python/numpy
work, so on a multi-core host this turns the serving layer's ceiling from
"one core of Python" into "``workers`` cores".

Transport
---------
Jobs cross the process boundary over :func:`multiprocessing.Pipe` as
plain pickles: the assertion AST (frozen dataclasses), the
deadline-clamped :class:`~repro.service.policy.RetryPolicy` and the solve
params. Replies carry the full :class:`~repro.smt.solver.SmtResult`
(CSR-backed sample sets pickle O(nnz), the PR 2 payload discipline), so a
process-backend answer is **byte-identical** to the thread backend and to
a direct ``check_sat`` at the same seed — the cross-backend bit-identity
property suite pins this.

Each worker owns a *local* :class:`~repro.service.cache.CompileCache`
(caches cannot be shared across processes without serializing every hit);
workers report per-solve hit/miss flags and cache snapshots back to the
parent, which aggregates them into the shared
:class:`~repro.service.metrics.MetricsRegistry` so ``/metrics`` keeps one
schema across backends. Content-hash shard routing (see
:mod:`repro.server.router`) exists precisely to keep repeated formulas
landing on the same server — and therefore the same worker caches.

Failure containment
-------------------
* **Deadline-aware cancellation.** A worker process cannot be preempted
  mid-anneal any more than a thread can — but it *can* be killed. When a
  request's deadline fires, the parent abandons the job, SIGKILLs the
  worker and respawns it; unlike the thread backend there is zero orphaned
  work.
* **Crash detection.** A worker dying mid-job (segfault, OOM-kill) is
  detected as EOF on its pipe; the request fails with a typed
  :class:`WorkerCrashError`, which the app layer maps onto an ``internal``
  envelope — never a hung client.
* **Respawn with backoff.** Consecutive crashes back the respawn off
  exponentially (``backoff_initial × 2^k``, capped), so a worker that dies
  at startup degrades pool capacity instead of pinning a respawn storm;
  one successful solve resets the clock.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.server.admission import DeadlineExceededError
from repro.server.workers import SolveOutcome, clamp_policy
from repro.service.cache import CacheStats, CompileCache
from repro.service.metrics import MetricsRegistry
from repro.service.policy import RetryExhaustedError, RetryPolicy
from repro.smt import ast
from repro.utils.timing import Timer

__all__ = ["ProcessSolverBackend", "WorkerCrashError"]


class WorkerCrashError(RuntimeError):
    """A worker process died while holding a job (typed ``internal``)."""

    def __init__(self, worker_id: int, detail: str) -> None:
        super().__init__(
            f"solver worker process #{worker_id} died mid-solve ({detail}); "
            "the worker has been respawned"
        )
        self.worker_id = worker_id


# --------------------------------------------------------------------- #
# the worker process
# --------------------------------------------------------------------- #


def _worker_main(conn, settings: Dict[str, Any]) -> None:
    """Entry point of one long-lived solver process.

    Loops ``recv → solve → send`` until it receives ``None``. Owns a fresh
    solver per job (the determinism recipe shared with the thread backend
    and BatchSolver) plus one local CompileCache. All failure modes are
    folded into the reply; an exception escaping this loop kills the
    process, which the parent detects as a crash.
    """
    import signal

    from repro.smt.solver import QuantumSMTSolver, SmtResult  # heavy import in child

    # Workers share the foreground process group, so a terminal Ctrl-C
    # delivers SIGINT here too. Lifecycle is managed by the parent (None
    # sentinel on the pipe, or kill on deadline/shutdown) — the default
    # KeyboardInterrupt would only splat tracebacks over a clean drain.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    cache = CompileCache(maxsize=settings["cache_size"])
    sampler_factory = settings.get("sampler_factory")
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            return  # parent went away
        if job is None:
            return
        assertions, policy, solve_params, soft_assertions, remaining = job
        timer = Timer().start()
        if soft_assertions:
            outcome = _optimize_in_worker(
                assertions, soft_assertions, remaining, solve_params,
                settings, timer,
            )
            stats = cache.stats
            try:
                conn.send(
                    (outcome, (stats.hits, stats.misses, stats.evictions, stats.size))
                )
            except (BrokenPipeError, OSError):
                return
            continue
        try:
            solver = QuantumSMTSolver(
                sampler=sampler_factory() if sampler_factory else None,
                num_reads=settings["num_reads"],
                seed=settings["seed"],
                sampler_params=settings["sampler_params"],
                penalty_strength=settings["penalty_strength"],
                retry_policy=policy,
                strategy=settings.get("strategy", "direct"),
                refine_max_rounds=settings.get("refine_max_rounds", 4),
                compile_cache=(
                    cache if settings.get("strategy") == "refine" else None
                ),
            )
            solver.assertions = list(assertions)
            problem, hit = cache.get_or_compile(
                assertions,
                penalty_strength=settings["penalty_strength"],
                seed=settings["seed"],
                compile_fn=solver.compile,
            )
            result = solver.solve_compiled(problem, **solve_params)
            outcome = SolveOutcome(result=result, cache_hit=hit, wall_time=timer.stop())
        except RetryExhaustedError as exc:
            outcome = SolveOutcome(
                result=SmtResult(status="unknown", reason=str(exc)),
                cache_hit=False,
                wall_time=timer.stop(),
                error=str(exc),
                error_type=type(exc).__name__,
            )
        except Exception as exc:  # noqa: BLE001 — boundary: degrade, don't crash
            outcome = SolveOutcome(
                result=SmtResult(
                    status="unknown", reason=f"{type(exc).__name__}: {exc}"
                ),
                cache_hit=False,
                wall_time=timer.stop(),
                error=str(exc),
                error_type=type(exc).__name__,
            )
        stats = cache.stats
        try:
            conn.send((outcome, (stats.hits, stats.misses, stats.evictions, stats.size)))
        except (BrokenPipeError, OSError):
            return


def _optimize_in_worker(
    assertions: List[ast.Term],
    soft_assertions: List[Any],
    remaining: Optional[float],
    solve_params: Dict[str, Any],
    settings: Dict[str, Any],
    timer: Timer,
) -> SolveOutcome:
    """One weighted-MaxSMT job inside a worker process.

    Mirrors the thread backend's ``_optimize_blocking``: the remaining
    deadline budget becomes the driver's anytime ``deadline_ms``; the
    parent's ``wait_for`` (and worker kill) stays authoritative.
    """
    from repro.opt import AnytimeOptimizer
    from repro.server.workers import outcome_from_optimize
    from repro.smt.solver import SmtResult

    sampler_factory = settings.get("sampler_factory")
    try:
        optimizer = AnytimeOptimizer(
            sampler=sampler_factory() if sampler_factory else None,
            num_reads=settings["num_reads"],
            seed=settings["seed"],
            sampler_params=settings["sampler_params"],
            penalty_strength=settings["penalty_strength"],
            max_restarts=settings.get("opt_max_restarts", 4),
            deadline_ms=(
                None if remaining is None else max(remaining, 1e-3) * 1000.0
            ),
            exhaustive_bits=settings.get("opt_exhaustive_bits", 16),
        )
        result = optimizer.optimize(assertions, soft_assertions, **solve_params)
        return outcome_from_optimize(result, wall_time=timer.stop())
    except Exception as exc:  # noqa: BLE001 — boundary: degrade, don't crash
        return SolveOutcome(
            result=SmtResult(
                status="unknown", reason=f"{type(exc).__name__}: {exc}"
            ),
            cache_hit=False,
            wall_time=timer.stop(),
            error=str(exc),
            error_type=type(exc).__name__,
            opt_status="unknown",
        )


class _WorkerHandle:
    """Parent-side state of one worker process."""

    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.abandoned = False
        #: Latest (hits, misses, evictions, size) snapshot of the worker's
        #: local compile cache, reported with every reply.
        self.cache_snapshot: Tuple[int, int, int, int] = (0, 0, 0, 0)

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, AttributeError):  # pragma: no cover - already dead
            pass
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class ProcessSolverBackend:
    """Run solves on long-lived worker processes (one solver slot each).

    Mirrors :class:`~repro.server.workers.SolverWorkerPool`'s construction
    signature and determinism contract; differences are confined to the
    transport (pipes instead of shared memory) and the failure modes
    documented in the module docstring.

    ``sampler_factory`` must be picklable (a module-level callable or an
    instance of a module-level class) — it is shipped to the worker at
    spawn time; lambdas raise at construction, not at first request.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        num_reads: int = 64,
        seed: Optional[int] = None,
        sampler_params: Optional[Dict[str, Any]] = None,
        sampler_factory: Optional[Any] = None,
        penalty_strength: float = 1.0,
        policy: Optional[RetryPolicy] = None,
        cache_size: int = 256,
        metrics: Optional[MetricsRegistry] = None,
        mp_context: str = "spawn",
        backoff_initial: float = 0.1,
        backoff_max: float = 5.0,
        strategy: str = "direct",
        refine_max_rounds: int = 4,
        opt_max_restarts: int = 4,
        opt_exhaustive_bits: int = 16,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if strategy not in ("direct", "refine"):
            raise ValueError(
                f"strategy must be 'direct' or 'refine', got {strategy!r}"
            )
        if seed is not None and not isinstance(seed, int):
            raise TypeError(
                "the process backend needs a reproducible seed (int or None); "
                f"live RNG objects cannot cross the process boundary: {type(seed)!r}"
            )
        self.workers = workers
        self.policy = policy if policy is not None else RetryPolicy(max_attempts=3)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache_size = cache_size
        self.backoff_initial = backoff_initial
        self.backoff_max = backoff_max
        self._settings = {
            "num_reads": num_reads,
            "seed": seed,
            "sampler_params": dict(sampler_params or {}),
            "sampler_factory": sampler_factory,
            "penalty_strength": penalty_strength,
            "cache_size": cache_size,
            "strategy": strategy,
            "refine_max_rounds": refine_max_rounds,
            "opt_max_restarts": opt_max_restarts,
            "opt_exhaustive_bits": opt_exhaustive_bits,
        }
        self._ctx = multiprocessing.get_context(mp_context)
        self._ids = itertools.count()
        self._lock = threading.Lock()
        self._closed = False
        self._consecutive_crashes = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: Free workers; checked out for the duration of one solve.
        self._free: "asyncio.Queue[_WorkerHandle]" = asyncio.Queue()
        #: Every live handle (free or busy), for shutdown.
        self._handles: List[_WorkerHandle] = []
        # One blocking pipe-recv per in-flight solve (≤ workers) plus send
        # slack — mirrors the thread pool's 2× headroom note.
        self._io = ThreadPoolExecutor(
            max_workers=workers * 2, thread_name_prefix="procpool-io"
        )
        for _ in range(workers):
            handle = self._spawn()
            self._handles.append(handle)
            self._free.put_nowait(handle)

    # ------------------------------------------------------------------ #
    # spawning / respawning
    # ------------------------------------------------------------------ #

    def _spawn(self) -> _WorkerHandle:
        """Start one worker process (raises early on unpicklable config)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        worker_id = next(self._ids)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._settings),
            name=f"repro-solver-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(worker_id, process, parent_conn)

    def _respawn_later(self, old: _WorkerHandle, *, crashed: bool) -> None:
        """Replace a dead worker; crashes back off, deadline kills do not."""
        with self._lock:
            if old in self._handles:
                self._handles.remove(old)
            if crashed:
                self._consecutive_crashes += 1
                delay = min(
                    self.backoff_max,
                    self.backoff_initial * (2 ** (self._consecutive_crashes - 1)),
                )
            else:
                delay = 0.0
            closed = self._closed
        if closed:
            return
        self.metrics.counter("server.worker.respawns").inc()

        def respawn() -> None:
            if delay > 0:
                time.sleep(delay)
            with self._lock:
                if self._closed:
                    return
                handle = self._spawn()
                self._handles.append(handle)
                loop = self._loop
            if loop is not None and not loop.is_closed():
                loop.call_soon_threadsafe(self._free.put_nowait, handle)
            else:  # pragma: no cover - pool used without a live loop
                self._free.put_nowait(handle)

        threading.Thread(target=respawn, name="procpool-respawn", daemon=True).start()

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #

    def effective_policy(self, remaining: Optional[float]) -> RetryPolicy:
        """The configured policy clamped to the remaining deadline budget."""
        return clamp_policy(self.policy, remaining)

    def cache_stats(self) -> CacheStats:
        """Aggregated worker-local compile-cache statistics."""
        with self._lock:
            snapshots = [h.cache_snapshot for h in self._handles]
        hits = sum(s[0] for s in snapshots)
        misses = sum(s[1] for s in snapshots)
        evictions = sum(s[2] for s in snapshots)
        size = sum(s[3] for s in snapshots)
        return CacheStats(
            hits=hits,
            misses=misses,
            evictions=evictions,
            size=size,
            maxsize=self.cache_size * self.workers,
        )

    async def solve(
        self,
        assertions: Sequence[ast.Term],
        *,
        remaining: Optional[float] = None,
        solve_params: Optional[Dict[str, Any]] = None,
    ) -> SolveOutcome:
        """Solve one assertion conjunction on a worker process.

        Raises :class:`~repro.server.admission.DeadlineExceededError` when
        *remaining* elapses first (the worker is killed and respawned) and
        :class:`WorkerCrashError` when the worker dies mid-job.
        """
        return await self._submit(
            assertions, None, remaining=remaining, solve_params=solve_params
        )

    async def optimize(
        self,
        assertions: Sequence[ast.Term],
        soft_assertions: Sequence[Any],
        *,
        remaining: Optional[float] = None,
        solve_params: Optional[Dict[str, Any]] = None,
    ) -> SolveOutcome:
        """Run one weighted-MaxSMT optimization on a worker process."""
        self.metrics.counter("server.optimizes").inc()
        return await self._submit(
            assertions,
            list(soft_assertions),
            remaining=remaining,
            solve_params=solve_params,
        )

    async def _submit(
        self,
        assertions: Sequence[ast.Term],
        soft_assertions: Optional[List[Any]],
        *,
        remaining: Optional[float],
        solve_params: Optional[Dict[str, Any]],
    ) -> SolveOutcome:
        loop = asyncio.get_running_loop()
        self._loop = loop
        handle = await self._checkout(remaining)
        job = (
            list(assertions),
            self.effective_policy(remaining),
            dict(solve_params or {}),
            soft_assertions,
            remaining,
        )
        self.metrics.counter("server.solves").inc()
        try:
            await loop.run_in_executor(self._io, handle.conn.send, job)
            reply_future = loop.run_in_executor(self._io, handle.conn.recv)
            try:
                if remaining is None:
                    reply = await asyncio.shield(reply_future)
                else:
                    reply = await asyncio.wait_for(
                        asyncio.shield(reply_future), timeout=max(remaining, 1e-3)
                    )
            except asyncio.TimeoutError:
                self._abandon(handle, reply_future)
                self.metrics.counter("server.timeout").inc()
                self.metrics.counter("server.timeout.solving").inc()
                raise DeadlineExceededError("solving", remaining or 0.0) from None
            except asyncio.CancelledError:
                self._abandon(handle, reply_future)
                raise
        except (EOFError, OSError, BrokenPipeError) as exc:
            self._crash(handle)
            raise WorkerCrashError(handle.worker_id, type(exc).__name__) from exc
        outcome, cache_snapshot = reply
        handle.cache_snapshot = cache_snapshot
        with self._lock:
            self._consecutive_crashes = 0
        self.metrics.counter("cache.hits" if outcome.cache_hit else "cache.misses").inc()
        self._free.put_nowait(handle)
        return outcome

    async def _checkout(self, remaining: Optional[float]) -> _WorkerHandle:
        """Take a free worker, waiting deadline-aware if all are respawning."""
        try:
            return self._free.get_nowait()
        except asyncio.QueueEmpty:
            pass
        try:
            if remaining is None:
                return await self._free.get()
            return await asyncio.wait_for(
                self._free.get(), timeout=max(remaining, 1e-3)
            )
        except asyncio.TimeoutError:
            self.metrics.counter("server.timeout").inc()
            self.metrics.counter("server.timeout.queued").inc()
            raise DeadlineExceededError("queued", remaining or 0.0) from None

    def _abandon(self, handle: _WorkerHandle, reply_future) -> None:
        """Deadline/cancel path: kill the worker, swallow the orphaned recv."""
        handle.abandoned = True
        reply_future.add_done_callback(lambda f: f.exception())
        handle.kill()
        self._respawn_later(handle, crashed=False)

    def _crash(self, handle: _WorkerHandle) -> None:
        self.metrics.counter("server.worker.crashes").inc()
        handle.kill()
        self._respawn_later(handle, crashed=True)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def shutdown(self, wait: bool = False) -> None:
        """Stop every worker process; in-flight jobs are killed, not joined."""
        with self._lock:
            self._closed = True
            handles = list(self._handles)
            self._handles.clear()
        for handle in handles:
            try:
                handle.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for handle in handles:
            handle.process.join(timeout=0.5 if wait else 0.05)
            if handle.process.is_alive():
                handle.kill()
        for handle in handles:
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._io.shutdown(wait=wait, cancel_futures=True)
