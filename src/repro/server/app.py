"""The asyncio solving server: routing, lifecycle, observability.

Request path (``POST /solve``)::

    read (size-gated) → parse envelope → parse SMT-LIB → admit (bounded
    queue) → wait for worker slot (deadline-aware) → solve on executor
    thread (deadline-aware, cancellable) → respond

Lifecycle state machine (see DESIGN.md Appendix E)::

    CREATED ──start()──▶ SERVING ──shutdown()──▶ DRAINING ──▶ STOPPED
                                   stop accepting; in-flight finishes
                                   up to drain_timeout, the rest is
                                   cancelled with typed envelopes

Observability:

* ``GET /healthz`` — 200 with queue/worker gauges while serving, 503 once
  draining (load balancers stop routing before the listener closes).
* ``GET /metrics`` — deterministic-keyed (recursively sorted) JSON: the
  shared :class:`~repro.service.metrics.MetricsRegistry` export, cache
  statistics, queue gauges and the request-accounting counters. The
  accounting identity ``requests == completed + timeouts + cancellations
  + rejections`` holds at every quiescent point.
"""

from __future__ import annotations

import asyncio
import enum
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

from repro.server import httpio
from repro.server.admission import (
    AdmissionQueue,
    DeadlineExceededError,
    DrainingError,
    OverloadedError,
)
from repro.server.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_CANCELLED,
    ERROR_DRAINING,
    ERROR_INTERNAL,
    ERROR_OVERLOADED,
    ERROR_TIMEOUT,
    ERROR_TOO_LARGE,
    ErrorInfo,
    ResponseEnvelope,
    SessionRequest,
    SolveRequest,
    locate_parse_error,
)
from repro.server.sessions import (
    SessionGoneError,
    SessionLimitError,
    SessionManager,
)
from repro.server.workers import SolverWorkerPool
from repro.service.cache import CompileCache
from repro.service.metrics import MetricsRegistry
from repro.service.policy import RetryPolicy
from repro.smt.parser import ParseError, parse_script
from repro.smt.session import SessionError, SolverSession
from repro.smt.sexpr import SExprError

__all__ = ["BackgroundServer", "ServerConfig", "ServerState", "SolverServer"]


class ServerState(str, enum.Enum):
    """Where the server is in its lifecycle."""

    CREATED = "created"
    SERVING = "serving"
    DRAINING = "draining"
    STOPPED = "stopped"

    __str__ = str.__str__


@dataclass
class ServerConfig:
    """Everything ``python -m repro.server`` exposes as flags.

    ``sampler_factory`` is the fault-injection hook used by the lifecycle
    tests (inject a slow or failing sampler per request); it is not a CLI
    flag.
    """

    host: str = "127.0.0.1"
    port: int = 8037
    workers: int = 2
    #: Solve backend: "thread" (executor threads, one GIL) or "process"
    #: (long-lived worker processes — see repro.server.procpool).
    backend: str = "thread"
    #: multiprocessing start method for backend="process" ("spawn" is the
    #: safe default alongside asyncio + executor threads).
    mp_context: str = "spawn"
    #: Micro-batching window: >0 makes the thread backend collect
    #: concurrent requests for up to this many milliseconds and solve each
    #: group as one block-diagonally fused kernel call (see
    #: repro.server.workers / repro.service.fused). 0 disables batching.
    #: Thread backend only — process workers hold per-process caches and
    #: cannot tile across processes.
    batch_window_ms: float = 0.0
    #: Maximum requests fused per batch when batch_window_ms > 0.
    batch_max: int = 8
    queue_limit: int = 16
    deadline_ms: float = 30000.0
    drain_timeout: float = 10.0
    max_request_bytes: int = 1 << 20
    idle_timeout: float = 60.0
    num_reads: int = 64
    seed: Optional[int] = None
    sampler_params: Dict[str, Any] = field(default_factory=dict)
    sampler_factory: Optional[Any] = None
    penalty_strength: float = 1.0
    max_attempts: int = 3
    policy: Optional[RetryPolicy] = None
    cache_size: int = 256
    #: Sticky ``/session/*`` sessions: idle sessions expire after this many
    #: seconds (lazily, never mid-solve).
    session_idle_timeout: float = 300.0
    #: Live sessions allowed at once; /session/open past the limit is
    #: rejected with a typed ``overloaded`` envelope.
    max_sessions: int = 64
    #: Opt sessions into warm starts (previous-model re-verification +
    #: initial_states seeding). Off by default: warm mode trades the
    #: bit-identity-with-fresh-solver contract for repeat-solve speed.
    session_warm_start: bool = False
    #: Solve strategy: "direct" (unrefined pipeline) or "refine" (the
    #: CEGAR loop — classical propagation clamps implied bits, the
    #: annealer samples the reduced QUBO, failed verifications become
    #: blocking lemmas, guaranteed fallback to the unrefined solve).
    strategy: str = "direct"
    #: Refinement round budget per check (strategy="refine" only).
    refine_max_rounds: int = 4
    #: Anytime restart budget for weighted (``assert-soft``) requests.
    opt_max_restarts: int = 4
    #: Exhaustive-finish threshold in string bits for weighted requests:
    #: variables at or under it are enumerated exactly (proven optimal).
    opt_exhaustive_bits: int = 16

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process', got {self.backend!r}"
            )
        if self.strategy not in ("direct", "refine"):
            raise ValueError(
                f"strategy must be 'direct' or 'refine', got {self.strategy!r}"
            )
        if self.refine_max_rounds < 0:
            raise ValueError(
                f"refine_max_rounds must be >= 0, got {self.refine_max_rounds}"
            )
        if self.batch_window_ms > 0 and self.strategy != "direct":
            raise ValueError(
                "micro-batching (batch_window_ms > 0) requires "
                "strategy='direct'; fused tiles bypass the per-request "
                "refinement loop"
            )
        if self.batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {self.batch_max}")
        if self.batch_window_ms > 0 and self.backend != "thread":
            raise ValueError(
                "micro-batching (batch_window_ms > 0) requires backend="
                f"'thread'; the {self.backend!r} backend cannot tile QUBOs "
                "across worker processes"
            )
        if self.queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {self.queue_limit}")
        if self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {self.deadline_ms}")
        if self.drain_timeout < 0:
            raise ValueError(
                f"drain_timeout must be non-negative, got {self.drain_timeout}"
            )
        if self.max_request_bytes < 1:
            raise ValueError(
                f"max_request_bytes must be >= 1, got {self.max_request_bytes}"
            )
        if self.idle_timeout <= 0:
            raise ValueError(
                f"idle_timeout must be positive, got {self.idle_timeout}"
            )
        if self.session_idle_timeout <= 0:
            raise ValueError(
                f"session_idle_timeout must be positive, got "
                f"{self.session_idle_timeout}"
            )
        if self.max_sessions < 1:
            raise ValueError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        if self.opt_max_restarts < 1:
            raise ValueError(
                f"opt_max_restarts must be >= 1, got {self.opt_max_restarts}"
            )
        if self.opt_exhaustive_bits < 0:
            raise ValueError(
                f"opt_exhaustive_bits must be >= 0, got {self.opt_exhaustive_bits}"
            )


class SolverServer:
    """The asyncio TCP/HTTP SMT-solving server (single event loop)."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        cache: Optional[CompileCache] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = (
            cache if cache is not None else CompileCache(maxsize=self.config.cache_size)
        )
        self.state = ServerState.CREATED
        self.queue = AdmissionQueue(
            queue_limit=self.config.queue_limit,
            workers=self.config.workers,
            metrics=self.metrics,
        )
        policy = (
            self.config.policy
            if self.config.policy is not None
            else RetryPolicy(max_attempts=self.config.max_attempts)
        )
        if self.config.backend == "process":
            from repro.server.procpool import ProcessSolverBackend

            self.pool = ProcessSolverBackend(
                workers=self.config.workers,
                num_reads=self.config.num_reads,
                seed=self.config.seed,
                sampler_params=self.config.sampler_params,
                sampler_factory=self.config.sampler_factory,
                penalty_strength=self.config.penalty_strength,
                policy=policy,
                cache_size=self.config.cache_size,
                metrics=self.metrics,
                mp_context=self.config.mp_context,
                strategy=self.config.strategy,
                refine_max_rounds=self.config.refine_max_rounds,
                opt_max_restarts=self.config.opt_max_restarts,
                opt_exhaustive_bits=self.config.opt_exhaustive_bits,
            )
        else:
            self.pool = SolverWorkerPool(
                workers=self.config.workers,
                num_reads=self.config.num_reads,
                seed=self.config.seed,
                sampler_params=self.config.sampler_params,
                sampler_factory=self.config.sampler_factory,
                penalty_strength=self.config.penalty_strength,
                policy=policy,
                cache=self.cache,
                metrics=self.metrics,
                batch_window_ms=self.config.batch_window_ms,
                batch_max=self.config.batch_max,
                strategy=self.config.strategy,
                refine_max_rounds=self.config.refine_max_rounds,
                opt_max_restarts=self.config.opt_max_restarts,
                opt_exhaustive_bits=self.config.opt_exhaustive_bits,
            )
        # Sticky sessions always solve on the event-loop process (thread
        # executor) against the shared compile cache, whatever the /solve
        # backend — process workers cannot hold live Python sessions.
        self.sessions = SessionManager(
            factory=self._new_session,
            idle_timeout=self.config.session_idle_timeout,
            max_sessions=self.config.max_sessions,
            metrics=self.metrics,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.Task] = set()
        #: Connection tasks currently *inside* a request (parse → dispatch →
        #: response write). Everything in ``_connections`` but not here is
        #: idle in a keep-alive read and safe to cancel at any time.
        self._active_requests: Set[asyncio.Task] = set()
        self._stopped = asyncio.Event()
        self._started_at = 0.0

    def _new_session(self) -> SolverSession:
        return SolverSession(
            num_reads=self.config.num_reads,
            seed=self.config.seed,
            sampler_params=self.config.sampler_params,
            sampler_factory=self.config.sampler_factory,
            max_attempts=self.config.max_attempts,
            penalty_strength=self.config.penalty_strength,
            retry_policy=self.config.policy,
            cache=self.cache,
            warm_start=self.config.session_warm_start,
            metrics=self.metrics,
            strategy=self.config.strategy,
            refine_max_rounds=self.config.refine_max_rounds,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's choice)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self.config.port

    async def start(self) -> None:
        """Bind the listener and transition to SERVING."""
        if self.state is not ServerState.CREATED:
            raise RuntimeError(f"cannot start from state {self.state}")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self._started_at = time.monotonic()
        self.state = ServerState.SERVING

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, then stop.

        1. transition to DRAINING — ``/healthz`` goes 503 and new ``/solve``
           requests on open connections are rejected with ``draining``;
        2. close the listening socket;
        3. wait up to ``drain_timeout`` for queued + in-flight work;
        4. close idle keep-alive connections and cancel whatever request
           work remains (typed ``cancelled`` envelopes);
        5. stop the executor, transition to STOPPED.
        """
        if self.state in (ServerState.DRAINING, ServerState.STOPPED):
            await self._stopped.wait()
            return
        self.state = ServerState.DRAINING
        self.queue.begin_drain()
        if self._server is not None:
            self._server.close()
            # No ``await wait_closed()`` here: on Python 3.12+ it blocks
            # until every client *transport* closes, which would stall the
            # drain indefinitely while any keep-alive connection is open.
            # ``close()`` alone stops the listener from accepting.

        drained = await self.queue.wait_idle(timeout=self.config.drain_timeout)
        # Sticky sessions: close every live session, waiting out any check
        # still running on the executor (bounded by the drain above — new
        # session work was already rejected as draining).
        await self.sessions.close_all()
        # Idle keep-alive connections sit blocked in ``read_request`` and
        # would pin the shutdown forever if left alone — close them first
        # (they are between requests; cancelling loses nothing).
        for task in list(self._connections):
            if task not in self._active_requests:
                task.cancel()
        if drained and self._active_requests:
            # The queue is empty, so active connections are only flushing
            # their final response bytes: give them a short grace period.
            await asyncio.wait(
                list(self._active_requests),
                timeout=min(1.0, self.config.drain_timeout or 1.0),
            )
        # Whatever survived — stragglers past the drain timeout or slow
        # flushers — is cancelled with typed ``cancelled`` envelopes.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            # ``asyncio.wait`` (bounded) rather than a bare ``gather``: the
            # shutdown path must never hang on a connection that refuses to
            # unwind.
            await asyncio.wait(list(self._connections), timeout=5.0)
        self.pool.shutdown(wait=False)
        self.state = ServerState.STOPPED
        self._stopped.set()

    @property
    def uptime(self) -> float:
        if not self._started_at:
            return 0.0
        return time.monotonic() - self._started_at

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Shutdown after the drain timeout: connection-level cancel.
            pass
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
                self._active_requests.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        while True:
            try:
                request = await asyncio.wait_for(
                    httpio.read_request(reader, self.config.max_request_bytes),
                    timeout=self.config.idle_timeout,
                )
            except asyncio.TimeoutError:
                # A silent client must not pin a connection task (and with
                # it, graceful shutdown) forever: idle keep-alive reads are
                # bounded by ``idle_timeout``.
                return
            except httpio.RequestTooLarge as exc:
                # Counted as a submitted-and-rejected request: the
                # accounting identity must cover every byte the socket saw.
                self.metrics.counter("server.requests").inc()
                self.metrics.counter("server.rejected.too_large").inc()
                envelope = ResponseEnvelope.failure(
                    ErrorInfo(type=ERROR_TOO_LARGE, message=str(exc))
                )
                await self._send_envelope(writer, envelope, close=True)
                # Discard a bounded slice of the unread body so closing the
                # socket does not RST the envelope out of the client's
                # receive buffer (large senders may still see a reset).
                await self._discard(reader)
                return
            except httpio.ProtocolError as exc:
                envelope = ResponseEnvelope.failure(
                    ErrorInfo(type=ERROR_BAD_REQUEST, message=str(exc))
                )
                await self._send_envelope(writer, envelope, close=True)
                return
            if request is None:
                return  # clean EOF
            keep_alive = request.keep_alive
            if task is not None:
                # Mark this connection busy: shutdown only force-cancels
                # connections that are *between* requests; in-request ones
                # get the drain-timeout grace first.
                self._active_requests.add(task)
            try:
                try:
                    body, status, content_type = await self._dispatch(request)
                except asyncio.CancelledError:
                    # Shutdown hit after the drain timeout while this
                    # request was mid-flight: best-effort typed envelope,
                    # then unwind.
                    envelope = ResponseEnvelope.failure(
                        ErrorInfo(
                            type=ERROR_CANCELLED,
                            message="solve cancelled by server shutdown",
                        )
                    )
                    writer.write(
                        httpio.render_response(
                            envelope.http_status,
                            envelope.to_json().encode("utf-8"),
                            close=True,
                        )
                    )
                    raise
                except Exception as exc:  # noqa: BLE001 — last-resort boundary
                    envelope = ResponseEnvelope.failure(
                        ErrorInfo(
                            type=ERROR_INTERNAL,
                            message=f"{type(exc).__name__}: {exc}",
                        )
                    )
                    body = envelope.to_json().encode("utf-8")
                    status = envelope.http_status
                    content_type = "application/json"
                writer.write(
                    httpio.render_response(
                        status, body, content_type=content_type, close=not keep_alive
                    )
                )
                await writer.drain()
            finally:
                if task is not None:
                    self._active_requests.discard(task)
            if not keep_alive:
                return

    @staticmethod
    async def _discard(
        reader: asyncio.StreamReader, limit: int = 1 << 16, budget: float = 0.25
    ) -> None:
        """Best-effort bounded drain of unread request bytes."""
        loop = asyncio.get_running_loop()
        end = loop.time() + budget
        remaining = limit
        try:
            while remaining > 0:
                timeout = end - loop.time()
                if timeout <= 0:
                    return
                chunk = await asyncio.wait_for(
                    reader.read(min(8192, remaining)), timeout=timeout
                )
                if not chunk:
                    return
                remaining -= len(chunk)
        except (asyncio.TimeoutError, ConnectionError):
            return

    async def _send_envelope(
        self,
        writer: asyncio.StreamWriter,
        envelope: ResponseEnvelope,
        close: bool = False,
    ) -> None:
        writer.write(
            httpio.render_response(
                envelope.http_status,
                envelope.to_json().encode("utf-8"),
                close=close,
            )
        )
        await writer.drain()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    async def _dispatch(self, request: httpio.HttpRequest):
        path = request.path
        if path == "/healthz" and request.method == "GET":
            return self._healthz()
        if path == "/metrics" and request.method == "GET":
            return self._metrics_endpoint()
        if path == "/solve":
            if request.method != "POST":
                envelope = ResponseEnvelope.failure(
                    ErrorInfo(
                        type=ERROR_BAD_REQUEST,
                        message=f"/solve requires POST, got {request.method}",
                    )
                )
                return envelope.to_json().encode("utf-8"), 405, "application/json"
            envelope = await self._solve_endpoint(request)
            return (
                envelope.to_json().encode("utf-8"),
                envelope.http_status,
                "application/json",
            )
        if path.startswith("/session/"):
            op = path[len("/session/"):]
            if op in ("open", "assert", "push", "pop", "check", "close"):
                if request.method != "POST":
                    envelope = ResponseEnvelope.failure(
                        ErrorInfo(
                            type=ERROR_BAD_REQUEST,
                            message=f"{path} requires POST, got {request.method}",
                        )
                    )
                    return (
                        envelope.to_json().encode("utf-8"),
                        405,
                        "application/json",
                    )
                envelope = await self._session_endpoint(request, op)
                return (
                    envelope.to_json().encode("utf-8"),
                    envelope.http_status,
                    "application/json",
                )
        body = json.dumps(
            {"error": {"type": "not_found", "message": f"no route for {path}"}},
            sort_keys=True,
        ).encode("utf-8")
        return body, 404, "application/json"

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #

    def _healthz(self):
        healthy = self.state is ServerState.SERVING
        payload = {
            "status": "ok" if healthy else str(self.state),
            "state": str(self.state),
            "uptime_s": round(self.uptime, 3),
            **self.queue.snapshot(),
        }
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return body, (200 if healthy else 503), "application/json"

    def _metrics_endpoint(self):
        # The thread backend reads the shared cache; the process backend
        # aggregates its workers' local caches — one schema either way.
        stats = self.pool.cache_stats()
        payload = {
            "server": {
                "backend": self.config.backend,
                "state": str(self.state),
                "uptime_s": round(self.uptime, 3),
                **self.queue.snapshot(),
            },
            "sessions": self.sessions.snapshot(),
            "cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "size": stats.size,
                "maxsize": stats.maxsize,
                "hit_rate": stats.hit_rate,
            },
            **self.metrics.export(),
        }
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return body, 200, "application/json"

    async def _solve_endpoint(self, request: httpio.HttpRequest) -> ResponseEnvelope:
        self.metrics.counter("server.requests").inc()
        try:
            return await self._solve_inner(request)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — keep the accounting identity
            self.metrics.counter("server.internal").inc()
            return ResponseEnvelope.failure(
                ErrorInfo(
                    type=ERROR_INTERNAL, message=f"{type(exc).__name__}: {exc}"
                )
            )

    async def _solve_inner(self, request: httpio.HttpRequest) -> ResponseEnvelope:
        # 1. request envelope
        try:
            solve_request = SolveRequest.from_body(request.body, request.content_type)
        except ValueError as exc:
            self.metrics.counter("server.rejected.bad_request").inc()
            return ResponseEnvelope.failure(
                ErrorInfo(type=ERROR_BAD_REQUEST, message=str(exc))
            )

        # 2. SMT-LIB parse — malformed scripts get located parse envelopes,
        #    never a crashed connection.
        try:
            script = parse_script(solve_request.script)
        except (ParseError, SExprError) as exc:
            self.metrics.counter("server.rejected.parse").inc()
            return ResponseEnvelope.failure(
                locate_parse_error(solve_request.script, exc),
                request_id=solve_request.request_id,
            )

        deadline_ms = (
            solve_request.deadline_ms
            if solve_request.deadline_ms is not None
            else self.config.deadline_ms
        )
        deadline = time.monotonic() + deadline_ms / 1000.0

        # 3. admission (bounded queue; explicit backpressure)
        try:
            self.queue.try_admit()
        except OverloadedError as exc:
            return ResponseEnvelope.failure(
                ErrorInfo(type=ERROR_OVERLOADED, message=str(exc)),
                request_id=solve_request.request_id,
            )
        except DrainingError as exc:
            return ResponseEnvelope.failure(
                ErrorInfo(type=ERROR_DRAINING, message=str(exc)),
                request_id=solve_request.request_id,
            )

        # 4. wait for a worker slot, spending the deadline budget
        queue_timer = time.monotonic()
        try:
            await self.queue.acquire_slot(deadline - time.monotonic())
        except DeadlineExceededError as exc:
            return ResponseEnvelope.failure(
                ErrorInfo(type=ERROR_TIMEOUT, message=str(exc)),
                status="timeout",
                queue_ms=(time.monotonic() - queue_timer) * 1000.0,
                request_id=solve_request.request_id,
            )
        except asyncio.CancelledError:
            self.metrics.counter("server.cancelled").inc()
            raise
        queue_ms = (time.monotonic() - queue_timer) * 1000.0

        # 5. solve on the worker pool — scripts carrying assert-soft
        #    commands route to the weighted-MaxSMT optimize path instead.
        solve_timer = time.monotonic()
        try:
            if script.soft_assertions:
                outcome = await self.pool.optimize(
                    script.assertions,
                    script.soft_assertions,
                    remaining=deadline - time.monotonic(),
                )
            else:
                outcome = await self.pool.solve(
                    script.assertions, remaining=deadline - time.monotonic()
                )
        except DeadlineExceededError as exc:
            return ResponseEnvelope.failure(
                ErrorInfo(type=ERROR_TIMEOUT, message=str(exc)),
                status="timeout",
                queue_ms=queue_ms,
                solve_ms=(time.monotonic() - solve_timer) * 1000.0,
                request_id=solve_request.request_id,
            )
        except asyncio.CancelledError:
            # Shutdown cancelled us mid-solve: typed envelope, then let the
            # connection unwind.
            self.metrics.counter("server.cancelled").inc()
            raise
        finally:
            self.queue.release_slot()
        solve_ms = (time.monotonic() - solve_timer) * 1000.0

        self.metrics.counter("server.completed").inc()
        self.metrics.counter(f"server.status.{outcome.status}").inc()
        if outcome.opt_status:
            self.metrics.counter(f"server.opt.{outcome.opt_status}").inc()
        self.metrics.observe("server.queue_wait", queue_ms / 1000.0)
        self.metrics.observe("server.solve_wall", solve_ms / 1000.0)
        return ResponseEnvelope.success(
            outcome.status,
            outcome.model,
            reason=outcome.result.reason,
            cache_hit=outcome.cache_hit,
            queue_ms=queue_ms,
            solve_ms=solve_ms,
            request_id=solve_request.request_id,
            opt_status=outcome.opt_status,
            objective=outcome.objective,
            lower_bound=outcome.lower_bound,
            upper_bound=outcome.upper_bound,
        )


    # ------------------------------------------------------------------ #
    # sticky sessions (/session/*)
    # ------------------------------------------------------------------ #

    async def _session_endpoint(
        self, request: httpio.HttpRequest, op: str
    ) -> ResponseEnvelope:
        self.metrics.counter("server.requests").inc()
        try:
            return await self._session_inner(request, op)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — keep the accounting identity
            self.metrics.counter("server.internal").inc()
            return ResponseEnvelope.failure(
                ErrorInfo(
                    type=ERROR_INTERNAL, message=f"{type(exc).__name__}: {exc}"
                )
            )

    def _session_reject(
        self, error_type: str, message: str, *, request_id: Optional[str] = None
    ) -> ResponseEnvelope:
        counter = {
            ERROR_BAD_REQUEST: "server.rejected.bad_request",
            ERROR_DRAINING: "server.rejected.draining",
            ERROR_OVERLOADED: "server.rejected.overloaded",
        }[error_type]
        self.metrics.counter(counter).inc()
        return ResponseEnvelope.failure(
            ErrorInfo(type=error_type, message=message), request_id=request_id
        )

    async def _session_inner(
        self, request: httpio.HttpRequest, op: str
    ) -> ResponseEnvelope:
        try:
            req = SessionRequest.from_body(request.body, request.content_type)
        except ValueError as exc:
            return self._session_reject(ERROR_BAD_REQUEST, str(exc))
        rid = req.request_id or req.session_id

        if op == "open":
            if self.state is not ServerState.SERVING:
                return self._session_reject(
                    ERROR_DRAINING,
                    "server is draining; not opening new sessions",
                    request_id=rid,
                )
            try:
                managed = self.sessions.open(req.session_id)
            except SessionLimitError as exc:
                return self._session_reject(
                    ERROR_OVERLOADED, str(exc), request_id=rid
                )
            except ValueError as exc:
                return self._session_reject(
                    ERROR_BAD_REQUEST, str(exc), request_id=rid
                )
            self.metrics.counter("server.completed").inc()
            return ResponseEnvelope.success(
                "open", request_id=req.request_id or managed.session_id
            )

        # Every other op addresses an existing session.
        if not req.session_id:
            return self._session_reject(
                ERROR_BAD_REQUEST,
                f"/session/{op} needs a 'session' id",
                request_id=rid,
            )
        try:
            managed = self.sessions.get(req.session_id)
        except SessionGoneError as exc:
            return self._session_reject(ERROR_BAD_REQUEST, str(exc), request_id=rid)

        if op == "close":
            # Drain-aware: close is allowed in every state and waits out a
            # check still running on the executor before acknowledging.
            self.sessions.close(req.session_id)
            async with managed.lock:
                pass
            self.metrics.counter("server.completed").inc()
            return ResponseEnvelope.success(
                "closed",
                reason=f"depth={managed.session.depth}",
                request_id=rid,
            )

        if op == "check":
            return await self._session_check(managed, req)

        # Mutations (assert/push/pop): rejected while draining, serialized
        # against any in-flight check by the session lock.
        if self.state is not ServerState.SERVING:
            return self._session_reject(
                ERROR_DRAINING,
                "server is draining; not accepting session mutations",
                request_id=rid,
            )
        async with managed.lock:
            session = managed.session
            if op == "assert":
                try:
                    added = session.assert_text(req.script)
                except (ParseError, SExprError) as exc:
                    self.metrics.counter("server.rejected.parse").inc()
                    return ResponseEnvelope.failure(
                        locate_parse_error(req.script, exc), request_id=rid
                    )
                except SessionError as exc:
                    return self._session_reject(
                        ERROR_BAD_REQUEST, str(exc), request_id=rid
                    )
                reason = f"depth={session.depth} added={added}"
            elif op == "push":
                session.push(req.levels)
                reason = f"depth={session.depth}"
            else:  # pop
                try:
                    session.pop(req.levels)
                except SessionError as exc:
                    return self._session_reject(
                        ERROR_BAD_REQUEST, str(exc), request_id=rid
                    )
                reason = f"depth={session.depth}"
            managed.touch()
        self.metrics.counter("server.completed").inc()
        return ResponseEnvelope.success("ok", reason=reason, request_id=rid)

    async def _session_check(
        self, managed, req: SessionRequest
    ) -> ResponseEnvelope:
        rid = req.request_id or req.session_id
        deadline_ms = (
            req.deadline_ms if req.deadline_ms is not None else self.config.deadline_ms
        )
        deadline = time.monotonic() + deadline_ms / 1000.0

        try:
            self.queue.try_admit()
        except OverloadedError as exc:
            return ResponseEnvelope.failure(
                ErrorInfo(type=ERROR_OVERLOADED, message=str(exc)), request_id=rid
            )
        except DrainingError as exc:
            return ResponseEnvelope.failure(
                ErrorInfo(type=ERROR_DRAINING, message=str(exc)), request_id=rid
            )

        queue_timer = time.monotonic()
        try:
            await self.queue.acquire_slot(deadline - time.monotonic())
        except DeadlineExceededError as exc:
            return ResponseEnvelope.failure(
                ErrorInfo(type=ERROR_TIMEOUT, message=str(exc)),
                status="timeout",
                queue_ms=(time.monotonic() - queue_timer) * 1000.0,
                request_id=rid,
            )
        except asyncio.CancelledError:
            self.metrics.counter("server.cancelled").inc()
            raise

        solve_timer = time.monotonic()
        try:
            # Serialize against mutations and concurrent checks on the same
            # session; bound the lock wait by the remaining deadline.
            try:
                await asyncio.wait_for(
                    managed.lock.acquire(), timeout=deadline - time.monotonic()
                )
            except asyncio.TimeoutError:
                self.metrics.counter("server.timeout").inc()
                self.metrics.counter("server.timeout.queued").inc()
                return ResponseEnvelope.failure(
                    ErrorInfo(
                        type=ERROR_TIMEOUT,
                        message="deadline exceeded waiting on the session lock",
                    ),
                    status="timeout",
                    queue_ms=(time.monotonic() - queue_timer) * 1000.0,
                    request_id=rid,
                )
            queue_ms = (time.monotonic() - queue_timer) * 1000.0
            session = managed.session
            hits_before = session.stats.memo_hits + session.stats.warm_hits
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(None, session.check_sat)
            # The lock is released when the *thread* finishes — even if the
            # await below times out first — so a straggling solve can never
            # race a later mutation, and expiry (which skips locked
            # sessions) can never reap a session mid-solve.
            future.add_done_callback(lambda _f: self._release_session(managed))
            try:
                result = await asyncio.wait_for(
                    asyncio.shield(future), timeout=deadline - time.monotonic()
                )
            except asyncio.TimeoutError:
                self.metrics.counter("server.timeout").inc()
                self.metrics.counter("server.timeout.solving").inc()
                return ResponseEnvelope.failure(
                    ErrorInfo(
                        type=ERROR_TIMEOUT,
                        message=(
                            f"deadline exceeded after {deadline_ms:.0f} ms "
                            "(session check still completing in background)"
                        ),
                    ),
                    status="timeout",
                    queue_ms=queue_ms,
                    solve_ms=(time.monotonic() - solve_timer) * 1000.0,
                    request_id=rid,
                )
            except asyncio.CancelledError:
                self.metrics.counter("server.cancelled").inc()
                raise
        finally:
            self.queue.release_slot()

        solve_ms = (time.monotonic() - solve_timer) * 1000.0
        cache_hit = (
            session.stats.memo_hits + session.stats.warm_hits > hits_before
        )
        self.metrics.counter("server.completed").inc()
        self.metrics.counter(f"server.status.{result.status}").inc()
        self.metrics.observe("server.queue_wait", queue_ms / 1000.0)
        self.metrics.observe("server.solve_wall", solve_ms / 1000.0)
        return ResponseEnvelope.success(
            result.status,
            result.model,
            reason=result.reason or f"depth={session.depth}",
            cache_hit=cache_hit,
            queue_ms=queue_ms,
            solve_ms=solve_ms,
            request_id=rid,
        )

    def _release_session(self, managed) -> None:
        managed.touch()
        if managed.lock.locked():
            managed.lock.release()


# --------------------------------------------------------------------- #
# embedding helper (tests, benchmarks, notebooks)
# --------------------------------------------------------------------- #


class BackgroundServer:
    """Run a :class:`SolverServer` on a daemon thread with its own loop.

    The context-manager form is what the test-suite and the load generator
    use::

        with BackgroundServer(ServerConfig(port=0, seed=7)) as server:
            client = SolverClient(server.host, server.port)
            ...

    ``port=0`` binds an ephemeral port; read it back from ``.port``.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        cache: Optional[CompileCache] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig(port=0)
        self._metrics = metrics
        self._cache = cache
        self.server: Optional[SolverServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._port: Optional[int] = None

    # -------------------------------------------------------------- #

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("server not started")
        return self._port

    @property
    def metrics(self) -> MetricsRegistry:
        if self.server is None:
            raise RuntimeError("server not started")
        return self.server.metrics

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server failed to start within 30 s")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None or self.server is None:
            return
        if not self._loop.is_closed():
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self._loop
            )
            try:
                future.result(timeout=timeout)
            except (asyncio.TimeoutError, TimeoutError):  # pragma: no cover
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -------------------------------------------------------------- #

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - surfaced via start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.server = SolverServer(
            self.config, metrics=self._metrics, cache=self._cache
        )
        self._loop = asyncio.get_running_loop()
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._port = self.server.port
        self._ready.set()
        await self.server.serve_forever()
