"""Minimal asyncio HTTP/1.1 framing for the solving server.

The server speaks just enough HTTP for curl, load balancers and the
bundled clients: request-line + headers + ``Content-Length`` bodies,
keep-alive by default for HTTP/1.1 (``Connection: close`` honoured),
default-close for HTTP/1.0 (``Connection: keep-alive`` honoured). No
external dependencies — everything rides on :mod:`asyncio` streams.

Size enforcement happens **at the socket layer**: the header block is read
through a bounded ``readuntil`` and the body is only read after its
declared ``Content-Length`` has been checked against the configured
maximum, so an oversized payload is rejected with a typed ``too_large``
response *before* its bytes are buffered. Requests without a length
declaration are read through a hard cap and rejected the moment they
exceed it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "HttpRequest",
    "ProtocolError",
    "RequestTooLarge",
    "read_request",
    "read_response",
    "render_request",
    "render_response",
]

#: Upper bound on the request line + header block, independent of the body.
MAX_HEADER_BYTES = 16384

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(ValueError):
    """Malformed HTTP framing (bad request line, bad Content-Length, ...)."""


class RequestTooLarge(ValueError):
    """The request exceeded the configured maximum size."""

    def __init__(self, declared: Optional[int], limit: int) -> None:
        what = (
            f"declared Content-Length {declared}"
            if declared is not None
            else "request body"
        )
        super().__init__(f"{what} exceeds the {limit}-byte request limit")
        self.declared = declared
        self.limit = limit


@dataclass
class HttpRequest:
    """One parsed request: method, target path, lowercased headers, body."""

    method: str
    target: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def path(self) -> str:
        """The target without its query string."""
        return self.target.split("?", 1)[0]

    @property
    def content_type(self) -> str:
        return self.headers.get("content-type", "")

    @property
    def keep_alive(self) -> bool:
        """Connection persistence per the request's HTTP version.

        HTTP/1.1 defaults to keep-alive unless ``Connection: close`` is
        sent; HTTP/1.0 defaults to *close* unless the client explicitly
        opts in with ``Connection: keep-alive``.
        """
        token = self.headers.get("connection", "").lower()
        if self.version.upper() == "HTTP/1.0":
            return token == "keep-alive"
        return token != "close"


async def _read_head(reader: asyncio.StreamReader) -> Optional[bytes]:
    """The request/response head up to the blank line; None on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise ProtocolError("connection closed mid-header") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(
            f"header block exceeds {MAX_HEADER_BYTES} bytes"
        ) from None
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header block exceeds {MAX_HEADER_BYTES} bytes")
    return head


def _parse_headers(lines: list) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for raw in lines:
        if not raw:
            continue
        name, sep, value = raw.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


def _content_length(headers: Mapping[str, str]) -> Optional[int]:
    raw = headers.get("content-length")
    if raw is None:
        return None
    try:
        length = int(raw)
    except ValueError:
        raise ProtocolError(f"bad Content-Length {raw!r}") from None
    if length < 0:
        raise ProtocolError(f"negative Content-Length {length}")
    return length


async def read_request(
    reader: asyncio.StreamReader, max_request_bytes: int
) -> Optional[HttpRequest]:
    """Read one request; ``None`` on clean EOF.

    Raises :class:`RequestTooLarge` before buffering an oversized body and
    :class:`ProtocolError` on malformed framing.
    """
    head = await _read_head(reader)
    if head is None:
        return None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, target, version = parts
    headers = _parse_headers(lines[1:])
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError("chunked transfer encoding is not supported")

    declared = _content_length(headers)
    if declared is not None:
        # Socket-layer gate: check the declaration *before* reading bytes.
        if declared > max_request_bytes:
            raise RequestTooLarge(declared, max_request_bytes)
        body = await reader.readexactly(declared) if declared else b""
    elif method in ("POST", "PUT"):
        # No declared length (HTTP/1.0-style close-delimited body): read up
        # to the cap plus one sentinel byte, rejecting the moment the limit
        # is crossed instead of buffering an unbounded stream.
        chunks = []
        received = 0
        while received <= max_request_bytes:
            chunk = await reader.read(max_request_bytes + 1 - received)
            if not chunk:
                break
            chunks.append(chunk)
            received += len(chunk)
        if received > max_request_bytes:
            raise RequestTooLarge(None, max_request_bytes)
        body = b"".join(chunks)
    else:
        body = b""
    return HttpRequest(
        method=method, target=target, headers=headers, body=body, version=version
    )


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    close: bool = False,
) -> bytes:
    """Serialize one HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def render_request(
    method: str,
    path: str,
    body: bytes = b"",
    *,
    host: str = "localhost",
    content_type: str = "text/plain",
    close: bool = False,
) -> bytes:
    """Serialize one client-side HTTP/1.1 request."""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


async def read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes]:
    """Client side: read one response → ``(status, headers, body)``."""
    head = await _read_head(reader)
    if head is None:
        raise ProtocolError("connection closed before a response arrived")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ProtocolError(f"malformed status line {lines[0]!r}")
    status = int(parts[1])
    headers = _parse_headers(lines[1:])
    length = _content_length(headers)
    if length is None:
        body = await reader.read()
    else:
        body = await reader.readexactly(length) if length else b""
    return status, headers, body
