"""Sticky server-side solving sessions (the ``/session/*`` endpoints).

A :class:`SessionManager` owns the living
:class:`~repro.smt.session.SolverSession` objects behind the server's
``/session/open|assert|push|pop|check|close`` routes: bounded in number,
expired after idling, each protected by an :class:`asyncio.Lock` so a
mutation can never race a check in flight on the executor.

Expiry is **lazy and solve-safe**: :meth:`SessionManager.sweep` runs at
every manager touch-point, and a session whose lock is held (a ``check``
is running on a worker thread) is never expired mid-solve — it becomes
eligible once the solve finishes and the lock is released. Closed and
expired ids are remembered in a bounded tombstone ring so clients get a
precise ``bad_request`` ("session expired" vs "unknown session") instead
of a generic miss.

Sessions are event-loop-process state: session checks always execute on
the loop's thread executor against the server's shared
:class:`~repro.service.cache.CompileCache`, independent of the configured
``/solve`` backend (process workers cannot hold sticky Python sessions).
"""

from __future__ import annotations

import asyncio
import time
import uuid
from collections import OrderedDict
from typing import Callable, Dict, Optional

from repro.service.metrics import MetricsRegistry
from repro.smt.session import SolverSession

__all__ = ["ManagedSession", "SessionGoneError", "SessionLimitError", "SessionManager"]

#: Remembered closed/expired session ids (for precise error messages).
_TOMBSTONE_LIMIT = 256


class SessionGoneError(KeyError):
    """The session id is not live: unknown, expired, or closed."""

    def __init__(self, session_id: str, reason: str) -> None:
        super().__init__(session_id)
        self.session_id = session_id
        self.reason = reason

    def __str__(self) -> str:
        if self.reason == "unknown":
            return f"unknown session {self.session_id!r}"
        return f"session {self.session_id!r} is {self.reason}"


class SessionLimitError(RuntimeError):
    """``max_sessions`` live sessions already exist."""


class ManagedSession:
    """One live session plus its bookkeeping (lock, id, idle clock)."""

    __slots__ = ("session_id", "session", "lock", "last_used", "opened_at")

    def __init__(self, session_id: str, session: SolverSession) -> None:
        self.session_id = session_id
        self.session = session
        self.lock = asyncio.Lock()
        self.opened_at = time.monotonic()
        self.last_used = self.opened_at

    def touch(self) -> None:
        self.last_used = time.monotonic()

    @property
    def idle_for(self) -> float:
        return time.monotonic() - self.last_used


class SessionManager:
    """Bounded registry of live sessions with idle expiry and tombstones."""

    def __init__(
        self,
        *,
        factory: Callable[[], SolverSession],
        idle_timeout: float = 300.0,
        max_sessions: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if idle_timeout <= 0:
            raise ValueError(f"idle_timeout must be positive, got {idle_timeout}")
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.factory = factory
        self.idle_timeout = idle_timeout
        self.max_sessions = max_sessions
        self.metrics = metrics
        self._sessions: Dict[str, ManagedSession] = {}
        self._tombstones: "OrderedDict[str, str]" = OrderedDict()
        self.opened = 0
        self.closed = 0
        self.expired = 0

    # ------------------------------------------------------------------ #

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _bury(self, session_id: str, reason: str) -> None:
        self._tombstones[session_id] = reason
        self._tombstones.move_to_end(session_id)
        while len(self._tombstones) > _TOMBSTONE_LIMIT:
            self._tombstones.popitem(last=False)

    def sweep(self) -> int:
        """Expire idle sessions; returns how many were expired.

        A locked session (check in flight on the executor) is skipped —
        never expire a session mid-solve — and becomes eligible on the
        next sweep after its lock is released.
        """
        expired = [
            ms.session_id
            for ms in self._sessions.values()
            if ms.idle_for > self.idle_timeout and not ms.lock.locked()
        ]
        for session_id in expired:
            del self._sessions[session_id]
            self._bury(session_id, "expired")
            self.expired += 1
            self._count("server.sessions.expired")
        return len(expired)

    # ------------------------------------------------------------------ #

    def open(self, session_id: Optional[str] = None) -> ManagedSession:
        """Create a session; generates an id when none is supplied."""
        self.sweep()
        if session_id is None:
            session_id = uuid.uuid4().hex
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} is already open")
        if len(self._sessions) >= self.max_sessions:
            raise SessionLimitError(
                f"session limit reached ({self.max_sessions} live sessions)"
            )
        managed = ManagedSession(session_id, self.factory())
        self._sessions[session_id] = managed
        self._tombstones.pop(session_id, None)
        self.opened += 1
        self._count("server.sessions.opened")
        return managed

    def get(self, session_id: str) -> ManagedSession:
        """The live session for *session_id*; touches its idle clock."""
        self.sweep()
        managed = self._sessions.get(session_id)
        if managed is None:
            raise SessionGoneError(
                session_id, self._tombstones.get(session_id, "unknown")
            )
        managed.touch()
        return managed

    def close(self, session_id: str) -> ManagedSession:
        """Remove the session from the registry (caller may still hold it)."""
        self.sweep()
        managed = self._sessions.pop(session_id, None)
        if managed is None:
            raise SessionGoneError(
                session_id, self._tombstones.get(session_id, "unknown")
            )
        self._bury(session_id, "closed")
        self.closed += 1
        self._count("server.sessions.closed")
        return managed

    async def close_all(self) -> None:
        """Drain-time teardown: close every session, waiting out live checks."""
        for session_id in list(self._sessions):
            try:
                managed = self.close(session_id)
            except SessionGoneError:
                continue
            async with managed.lock:
                pass

    # ------------------------------------------------------------------ #

    @property
    def active(self) -> int:
        return len(self._sessions)

    def snapshot(self) -> Dict[str, object]:
        """Gauges + counters for the ``/metrics`` sessions section."""
        busy = sum(1 for ms in self._sessions.values() if ms.lock.locked())
        return {
            "active": len(self._sessions),
            "busy": busy,
            "opened": self.opened,
            "closed": self.closed,
            "expired": self.expired,
            "max_sessions": self.max_sessions,
            "idle_timeout_s": self.idle_timeout,
        }
