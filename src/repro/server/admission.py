"""Bounded admission control: explicit backpressure, never unbounded buffering.

The server's concurrency model is two nested bounds:

* at most ``workers`` requests are **in flight** (holding a solver slot);
* at most ``queue_limit`` further requests are **queued** waiting for a
  slot.

Admission checks the *combined* bound (``in_flight + waiting < workers +
queue_limit``), so a request that could immediately take a free worker
slot is never counted against ``queue_limit`` — with ``queue_limit=0`` an
idle server still serves up to ``workers`` concurrent requests.

A request beyond both bounds is rejected *immediately* with a typed
:class:`OverloadedError` — the 429-style backpressure signal — instead of
being buffered. Queued requests carry their deadline into the wait: a
request whose deadline expires before a slot frees is failed with
:class:`DeadlineExceededError` and never starts solving.

Drain support: :meth:`AdmissionQueue.begin_drain` flips the queue into a
rejecting state (new admissions raise :class:`DrainingError`) while
:meth:`AdmissionQueue.wait_idle` lets the shutdown path wait — up to the
drain timeout — for in-flight and queued work to finish.

Everything here runs on the event-loop thread, so plain counters are safe;
the :class:`~repro.service.metrics.MetricsRegistry` (shared with the
worker threads) is internally locked.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

from repro.service.metrics import MetricsRegistry

__all__ = [
    "AdmissionQueue",
    "DeadlineExceededError",
    "DrainingError",
    "OverloadedError",
]


class OverloadedError(RuntimeError):
    """The admission queue is full; the request was rejected, not buffered."""

    def __init__(self, depth: int, limit: int) -> None:
        super().__init__(
            f"admission queue full ({depth}/{limit} waiting); retry later"
        )
        self.depth = depth
        self.limit = limit


class DrainingError(RuntimeError):
    """The server is draining and no longer accepts new work."""

    def __init__(self) -> None:
        super().__init__("server is draining; not accepting new requests")


class DeadlineExceededError(RuntimeError):
    """The request's deadline expired (while queued or mid-solve)."""

    def __init__(self, phase: str, budget: float) -> None:
        super().__init__(
            f"deadline of {budget * 1000.0:.0f} ms exceeded while {phase}"
        )
        self.phase = phase
        self.budget = budget


class AdmissionQueue:
    """Bounded queue + worker-slot gate with metrics accounting.

    Parameters
    ----------
    queue_limit:
        Maximum number of requests allowed to *wait* for a worker slot.
    workers:
        Number of concurrent solver slots.
    metrics:
        Shared registry; admissions / rejections / timeouts / cancellations
        are counted under ``server.*``.
    """

    def __init__(
        self, queue_limit: int, workers: int, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        if queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {queue_limit}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.queue_limit = queue_limit
        self.workers = workers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._slots = asyncio.Semaphore(workers)
        self._waiting = 0
        self._in_flight = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #

    @property
    def depth(self) -> int:
        """Requests admitted and waiting for a worker slot."""
        return self._waiting

    @property
    def in_flight(self) -> int:
        """Requests currently holding a worker slot."""
        return self._in_flight

    @property
    def draining(self) -> bool:
        return self._draining

    def snapshot(self) -> Dict[str, int]:
        return {
            "queue_depth": self._waiting,
            "in_flight": self._in_flight,
            "queue_limit": self.queue_limit,
            "workers": self.workers,
        }

    def _update_idle(self) -> None:
        if self._waiting == 0 and self._in_flight == 0:
            self._idle.set()
        else:
            self._idle.clear()

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def try_admit(self) -> None:
        """Admit one request into the wait queue or reject it right now.

        The admission bound is the *combined* capacity ``workers +
        queue_limit``: a request that can immediately take a free worker
        slot is always admitted, and ``queue_limit`` only bounds requests
        that would genuinely wait. (With ``queue_limit=0`` an idle server
        still serves up to ``workers`` concurrent requests; the overflow is
        rejected instead of queued.)
        """
        if self._draining:
            self.metrics.counter("server.rejected.draining").inc()
            raise DrainingError()
        if self._waiting + self._in_flight >= self.workers + self.queue_limit:
            self.metrics.counter("server.rejected.overloaded").inc()
            raise OverloadedError(self._waiting, self.queue_limit)
        self._waiting += 1
        self._update_idle()
        self.metrics.counter("server.admitted").inc()

    async def acquire_slot(self, remaining: float) -> None:
        """Wait (≤ *remaining* seconds) for a worker slot.

        Transitions the request from *waiting* to *in flight*. Raises
        :class:`DeadlineExceededError` when the deadline expires first —
        the request is then removed from the queue without ever solving.
        """
        try:
            if remaining <= 0:
                raise asyncio.TimeoutError
            await asyncio.wait_for(self._slots.acquire(), timeout=remaining)
        except asyncio.TimeoutError:
            self._waiting -= 1
            self._update_idle()
            self.metrics.counter("server.timeout").inc()
            self.metrics.counter("server.timeout.queued").inc()
            raise DeadlineExceededError("queued", max(remaining, 0.0)) from None
        except asyncio.CancelledError:
            self._waiting -= 1
            self._update_idle()
            raise
        self._waiting -= 1
        self._in_flight += 1
        self._update_idle()

    def release_slot(self) -> None:
        """Return a worker slot (always called exactly once per acquire)."""
        self._in_flight -= 1
        self._slots.release()
        self._update_idle()

    # ------------------------------------------------------------------ #
    # drain
    # ------------------------------------------------------------------ #

    def begin_drain(self) -> None:
        """Stop admitting; queued and in-flight work continues."""
        self._draining = True

    async def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Wait until no request is queued or in flight; False on timeout."""
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            return False
        return True
