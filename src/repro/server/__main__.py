"""CLI entry point: ``python -m repro.server``.

Starts the asyncio solving server and blocks until SIGTERM/SIGINT, which
triggers the graceful drain (stop accepting, finish in-flight up to
``--drain-timeout``, cancel the rest).

Examples
--------
Serve on the default port with 4 workers and a bounded queue::

    python -m repro.server --port 8037 --workers 4 --queue-limit 32

Solve over the wire::

    curl -s -X POST --data-binary \
      '(declare-const x String)(assert (= x "hi"))(check-sat)' \
      http://127.0.0.1:8037/solve
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional

from repro.server.app import ServerConfig, SolverServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Asyncio SMT-solving server (strings fragment → QUBO "
        "→ simulated annealing) with admission control and deadlines.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8037, help="TCP port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="concurrent solver slots"
    )
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="solve backend: executor threads (one GIL) or long-lived "
        "worker processes (one solver process per slot)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="max requests waiting for a slot; beyond it requests are "
        "rejected with a typed 'overloaded' envelope (HTTP 429)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=30000.0,
        help="default per-request deadline (overridable per request)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to let in-flight solves finish on shutdown",
    )
    parser.add_argument(
        "--max-request-bytes",
        type=int,
        default=1 << 20,
        help="socket-layer request size cap (typed 'too_large' beyond it)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=60.0,
        help="seconds a keep-alive connection may sit idle between "
        "requests before the server closes it",
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=0.0,
        help="micro-batching window in ms (thread backend only): collect "
        "concurrent requests for up to this long and solve each group as "
        "one block-diagonally fused kernel call; 0 disables",
    )
    parser.add_argument(
        "--batch-max",
        type=int,
        default=8,
        help="max requests fused per micro-batch (with --batch-window-ms)",
    )
    parser.add_argument(
        "--strategy",
        choices=("direct", "refine"),
        default="direct",
        help="solve strategy: the unrefined pipeline, or the CEGAR "
        "refinement loop (classical propagation clamps implied bits, the "
        "annealer samples the reduced QUBO, blocking lemmas refine "
        "counterexamples, guaranteed fallback to the direct solve)",
    )
    parser.add_argument(
        "--refine-max-rounds",
        type=int,
        default=4,
        help="refinement round budget per check (with --strategy refine); "
        "0 always takes the fallback, bit-identical to --strategy direct",
    )
    parser.add_argument(
        "--opt-max-restarts",
        type=int,
        default=4,
        help="anytime restart budget for weighted (assert-soft) requests",
    )
    parser.add_argument(
        "--opt-exhaustive-bits",
        type=int,
        default=16,
        help="exhaustive-finish threshold in string bits for weighted "
        "requests (variables at or under it are enumerated exactly, "
        "proving optimality)",
    )
    parser.add_argument("--num-reads", type=int, default=64, help="annealer reads")
    parser.add_argument(
        "--num-sweeps", type=int, default=None, help="annealer sweeps per read"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="base seed (reproducible answers)"
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3, help="solve retries per variable"
    )
    parser.add_argument(
        "--penalty", type=float, default=1.0, help="QUBO penalty strength A"
    )
    parser.add_argument(
        "--cache-size", type=int, default=256, help="compile-cache entries"
    )
    parser.add_argument(
        "--session-idle-timeout",
        type=float,
        default=300.0,
        help="seconds a sticky /session/* session may idle before expiry",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="live sticky sessions allowed at once (typed 'overloaded' beyond)",
    )
    parser.add_argument(
        "--session-warm",
        action="store_true",
        help="enable session warm starts (previous-model re-verification + "
        "annealer initial_states seeding; trades bit-identity with a fresh "
        "solver for repeat-solve speed)",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServerConfig:
    sampler_params = {}
    if args.num_sweeps is not None:
        sampler_params["num_sweeps"] = args.num_sweeps
    return ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        backend=args.backend,
        batch_window_ms=args.batch_window_ms,
        batch_max=args.batch_max,
        queue_limit=args.queue_limit,
        deadline_ms=args.deadline_ms,
        drain_timeout=args.drain_timeout,
        max_request_bytes=args.max_request_bytes,
        idle_timeout=args.idle_timeout,
        num_reads=args.num_reads,
        seed=args.seed,
        sampler_params=sampler_params,
        max_attempts=args.max_attempts,
        penalty_strength=args.penalty,
        cache_size=args.cache_size,
        session_idle_timeout=args.session_idle_timeout,
        max_sessions=args.max_sessions,
        session_warm_start=args.session_warm,
        strategy=args.strategy,
        refine_max_rounds=args.refine_max_rounds,
        opt_max_restarts=args.opt_max_restarts,
        opt_exhaustive_bits=args.opt_exhaustive_bits,
    )


async def _run(config: ServerConfig) -> None:
    server = SolverServer(config)
    await server.start()
    loop = asyncio.get_running_loop()

    def _request_shutdown(signame: str) -> None:
        print(f"[repro.server] {signame} received — draining...", flush=True)
        asyncio.ensure_future(server.shutdown())

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, _request_shutdown, sig.name)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass

    print(
        f"[repro.server] serving on {server.host}:{server.port} "
        f"(workers={config.workers}, backend={config.backend}, "
        f"queue_limit={config.queue_limit}, "
        f"deadline_ms={config.deadline_ms:g})",
        flush=True,
    )
    await server.serve_forever()
    print("[repro.server] drained and stopped", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = config_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        asyncio.run(_run(config))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
